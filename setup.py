"""Setup shim for offline editable installs.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs fail; this file lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
