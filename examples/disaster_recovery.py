#!/usr/bin/env python3
"""Disaster recovery: vendor termination and share repair.

The paper's introduction motivates multi-cloud storage with the single
point of failure and vendor lock-in of one-cloud deployments — Nirvanix
telling customers to stop sending data being the canonical example.  This
scenario walks that failure end-to-end:

1. an organisation backs up across four clouds;
2. one vendor terminates: its data is gone for good;
3. restores keep working from the surviving k = 3 clouds;
4. a replacement cloud is provisioned and repaired: every lost share is
   rebuilt from the survivors, Reed-Solomon style (§3.1);
5. a *different* cloud then fails, proving the repaired cloud carries
   real, usable shares;
6. a corrupted container on yet another cloud is routed around by the
   brute-force decoding fallback of §3.2.

Run:  python examples/disaster_recovery.py
"""

from __future__ import annotations

import os

from repro.chunking import RabinChunker
from repro.config import ReproConfig
from repro.system import CDStoreSystem


def main() -> None:
    config = ReproConfig(n=4, k=3, salt="acme-corp")
    system = CDStoreSystem.from_config(config)
    chunker = RabinChunker(avg_size=4096, min_size=1024, max_size=16384)
    client = system.client("ops-team", chunker=chunker)

    files = {
        f"/backups/week{i}/system.tar": os.urandom(120_000 + 7 * i)
        for i in range(3)
    }
    for path, data in files.items():
        client.upload(path, data)
    client.flush()
    print(f"backed up {len(files)} archives across {system.n} clouds")

    # --- vendor termination: cloud 2's data is irrecoverable -------------
    system.fail_cloud(2)
    print("cloud 2 terminated service (offline, data unreachable)")
    for path, data in files.items():
        assert client.download(path) == data
    print("all archives restored from the 3 surviving clouds")

    # --- provision a replacement and repair ------------------------------
    system.recover_cloud(2)
    system.wipe_cloud(2)  # the replacement starts empty
    rebuilt = system.repair_cloud(2)
    print(f"repair rebuilt {rebuilt} shares onto the replacement cloud")

    # --- prove the repaired cloud carries its weight ----------------------
    system.fail_cloud(0)
    for path, data in files.items():
        assert client.download(path) == data
    system.recover_cloud(0)
    print("a different cloud failed; restores used the repaired cloud")

    # --- corruption: brute-force decode (§3.2) ---------------------------
    backend = system.clouds[1].backend
    for key in backend.list_keys("container-"):
        backend.corrupt(key, offset=128, flips=32)
    print("injected bit flips into every container on cloud 1")
    for path, data in files.items():
        assert client.download(path) == data
    print("restores detected the corruption (embedded hash) and decoded "
          "from other share subsets")
    print("disaster recovery complete.")


if __name__ == "__main__":
    main()
