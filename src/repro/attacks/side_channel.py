"""The two §3.3 side-channel attacks, as runnable procedures.

Both attacks are parameterised by the target so the same code exercises
the vulnerable strawman and CDStore:

* **confirmation attack** [28] — the attacker suspects a victim stores a
  specific file, generates its fingerprints, and asks the dedup oracle
  whether an upload is needed.  "No upload needed" for data the attacker
  never uploaded confirms someone else has it.
* **ownership attack** [27] — the attacker has only the *fingerprint* of
  a victim's share (e.g. leaked from a client log) and tries to register
  ownership and download the bytes.

CDStore defeats the first by answering dedup queries from the attacker's
*own* history only, and the second by recomputing fingerprints server-
side in an independent domain, so a client fingerprint is useless for
claiming data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.naive import NaiveGlobalDedupServer
from repro.crypto.hashing import fingerprint
from repro.errors import NotFoundError, ProtocolError
from repro.server.messages import ShareMeta, ShareUpload
from repro.server.server import CDStoreServer

__all__ = ["AttackResult", "run_confirmation_attack", "run_ownership_attack"]


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one attack run."""

    succeeded: bool
    detail: str


# ---------------------------------------------------------------------------
# attack 1: confirming the existence of other users' data
# ---------------------------------------------------------------------------


def run_confirmation_attack(
    target: CDStoreServer | NaiveGlobalDedupServer,
    victim_data: bytes,
    victim_id: str = "victim",
    attacker_id: str = "attacker",
) -> AttackResult:
    """The victim stores ``victim_data``; the attacker probes for it.

    Returns ``succeeded=True`` when the dedup oracle reveals the data
    already exists even though the attacker never uploaded it.
    """
    victim_fp = fingerprint(victim_data, domain="client")
    # Victim stores the data first.
    if isinstance(target, NaiveGlobalDedupServer):
        target.upload(victim_id, victim_fp, victim_data)
    else:
        meta = ShareMeta(victim_fp, len(victim_data), 0, len(victim_data))
        target.upload_shares(victim_id, [ShareUpload(meta=meta, data=victim_data)])
    # Attacker computes the same fingerprint (deterministic in the data —
    # that is the whole point of convergent storage) and probes.
    answer = target.query_duplicates(attacker_id, [victim_fp])[0]
    if answer:
        return AttackResult(
            succeeded=True,
            detail="dedup oracle confirmed another user stores the data",
        )
    return AttackResult(
        succeeded=False,
        detail="oracle only reflects the attacker's own uploads; no leak",
    )


# ---------------------------------------------------------------------------
# attack 2: claiming ownership with a stolen fingerprint
# ---------------------------------------------------------------------------


def run_ownership_attack(
    target: CDStoreServer | NaiveGlobalDedupServer,
    victim_data: bytes,
    victim_id: str = "victim",
    attacker_id: str = "attacker",
) -> AttackResult:
    """The attacker holds only the victim share's *client fingerprint*.

    Returns ``succeeded=True`` when the attacker obtains the share bytes.
    """
    victim_fp = fingerprint(victim_data, domain="client")
    if isinstance(target, NaiveGlobalDedupServer):
        target.upload(victim_id, victim_fp, victim_data)
        try:
            # Register ownership by fingerprint, then download.
            target.upload(attacker_id, victim_fp, None)
            stolen = target.download(attacker_id, victim_fp)
        except NotFoundError:
            return AttackResult(False, "naive server unexpectedly refused")
        return AttackResult(
            succeeded=stolen == victim_data,
            detail="fingerprint alone granted ownership and the bytes",
        )

    # CDStore: store the victim's share properly (upload + recipe).
    meta = ShareMeta(victim_fp, len(victim_data), 0, len(victim_data))
    target.upload_shares(victim_id, [ShareUpload(meta=meta, data=victim_data)])
    from repro.server.messages import FileManifest

    target.finalize_file(
        victim_id,
        FileManifest(b"victim-file", b"", len(victim_data), 1),
        [meta],
    )
    # The attacker tries to reference the stolen client fingerprint in its
    # own file without uploading the bytes.  finalize_file resolves
    # fingerprints through the *attacker's* intra-user index, which has no
    # such entry — the claim is rejected.
    try:
        target.finalize_file(
            attacker_id,
            FileManifest(b"stolen-file", b"", len(victim_data), 1),
            [meta],
        )
    except ProtocolError:
        return AttackResult(
            succeeded=False,
            detail="server rejected a fingerprint the attacker never uploaded",
        )
    # If finalize somehow passed, check whether the bytes are reachable.
    try:
        recipe = target.get_recipe(attacker_id, b"stolen-file")
        shares = target.fetch_shares([recipe[0].fingerprint])
        return AttackResult(
            succeeded=recipe[0].fingerprint in shares,
            detail="attacker reached the victim's bytes",
        )
    except (NotFoundError, ProtocolError):
        return AttackResult(False, "share unreachable for the attacker")
