"""Synthetic VM-image backup workload (§5.2 dataset (ii)).

Calibrated to the paper's description and Figure 6:

* every student's image is cloned from one 10 GB master image, so the very
  first weekly backup deduplicates ≈ 93 % across users;
* fixed-size 4 KB chunks, zero-filled chunks already removed;
* weekly edits are *correlated* across users — "students make similar
  changes to the VM images when doing programming assignments" — modelled
  by drawing part of each week's new chunks from a week-specific shared
  pool, keeping subsequent inter-user savings inside the paper's
  11.8-47 % band, while intra-user savings stay ≥ 98 %.
"""

from __future__ import annotations

from repro.crypto.drbg import DRBG
from repro.errors import WorkloadError
from repro.workloads.base import BackupSnapshot, ChunkRecord, Workload

__all__ = ["VMWorkload"]


class VMWorkload(Workload):
    """Generator of VM-image weekly snapshot chunk traces.

    Parameters
    ----------
    users:
        Student count (paper: 156).
    weeks:
        Weekly snapshots (paper: 16).
    master_chunks:
        Non-zero chunks of the master image (scales logical size).
    unique_frac:
        Per-user unique fraction added on top of the master at clone time
        (≈ 6-7 % reproduces the paper's 93.4 % week-1 inter-user saving).
    modify_rate:
        Fraction of the image rewritten each week (small: ≥ 98 % intra).
    correlated_lo / correlated_hi:
        Week-varying bounds on how much of each week's new data comes from
        the shared "assignment" pool — this drives the 11.8-47 % band.
    """

    def __init__(
        self,
        users: int = 156,
        weeks: int = 16,
        master_chunks: int = 2000,
        chunk_size: int = 4096,
        unique_frac: float = 0.045,
        modify_rate: float = 0.015,
        correlated_lo: float = 0.22,
        correlated_hi: float = 0.55,
        seed: bytes | str = "vm-workload",
    ) -> None:
        if users <= 0 or weeks <= 0 or master_chunks <= 0:
            raise WorkloadError("users, weeks and master_chunks must be positive")
        self.users = [f"vm{i:03d}" for i in range(users)]
        self.weeks = weeks
        self.master_chunks = master_chunks
        self.chunk_size = chunk_size
        self.unique_frac = unique_frac
        self.modify_rate = modify_rate
        self.correlated_lo = correlated_lo
        self.correlated_hi = correlated_hi
        self._root = DRBG(seed)
        self._master = self._make_master()
        # Week-specific shared pools ("assignment" edits common to users).
        self._week_pools: dict[int, list[ChunkRecord]] = {}
        self._history: dict[str, list[list[ChunkRecord]]] = {}

    # ------------------------------------------------------------------
    def _make_master(self) -> list[ChunkRecord]:
        rng = self._root.fork("master-image")
        return [
            ChunkRecord(fingerprint=rng.random_bytes(32), size=self.chunk_size)
            for _ in range(self.master_chunks)
        ]

    def _week_pool(self, week: int) -> list[ChunkRecord]:
        pool = self._week_pools.get(week)
        if pool is None:
            rng = self._root.fork(f"assignment/w{week}")
            pool_size = max(8, int(self.master_chunks * self.modify_rate))
            pool = [
                ChunkRecord(fingerprint=rng.random_bytes(32), size=self.chunk_size)
                for _ in range(pool_size)
            ]
            self._week_pools[week] = pool
        return pool

    def _correlation(self, week: int) -> float:
        """How shared this week's edits are (varies week to week)."""
        rng = self._root.fork(f"correlation/w{week}")
        return self.correlated_lo + rng.random() * (
            self.correlated_hi - self.correlated_lo
        )

    # ------------------------------------------------------------------
    def _initial(self, user: str) -> list[ChunkRecord]:
        rng = self._root.fork(f"{user}/clone")
        image = list(self._master)
        n_unique = int(len(image) * self.unique_frac)
        for _ in range(n_unique):
            pos = rng.randint(0, len(image) - 1)
            image[pos] = ChunkRecord(
                fingerprint=rng.random_bytes(32), size=self.chunk_size
            )
        return image

    def _evolve(self, user: str, week: int, prev: list[ChunkRecord]) -> list[ChunkRecord]:
        rng = self._root.fork(f"{user}/w{week}")
        image = list(prev)
        pool = self._week_pool(week)
        correlated = self._correlation(week)
        n_modify = max(1, int(len(image) * self.modify_rate))
        for _ in range(n_modify):
            pos = rng.randint(0, len(image) - 1)
            if rng.random() < correlated:
                image[pos] = pool[rng.randint(0, len(pool) - 1)]
            else:
                image[pos] = ChunkRecord(
                    fingerprint=rng.random_bytes(32), size=self.chunk_size
                )
        return image

    def _user_history(self, user: str, upto_week: int) -> list[list[ChunkRecord]]:
        if user not in self.users:
            raise WorkloadError(f"unknown user {user!r}")
        history = self._history.setdefault(user, [])
        if not history:
            history.append(self._initial(user))
        while len(history) < upto_week:
            week = len(history) + 1
            history.append(self._evolve(user, week, history[-1]))
        return history

    # ------------------------------------------------------------------
    def snapshot(self, user: str, week: int) -> BackupSnapshot:
        if not 1 <= week <= self.weeks:
            raise WorkloadError(f"week {week} outside [1, {self.weeks}]")
        history = self._user_history(user, week)
        return BackupSnapshot(user=user, week=week, chunks=tuple(history[week - 1]))
