"""Parallel comm engine + refcount/restore correctness regressions.

Covers the multi-cloud transfer engine (§4.6): concurrent per-cloud
uploads/downloads, simulated wall-clock accounting (makespan vs sum),
mid-restore failover to spare clouds, and the refcount / file-entry /
brute-force fixes that shipped with it.
"""

from __future__ import annotations

import struct
import threading

import pytest

from repro.chunking.fixed import FixedChunker
from repro.cloud.network import Link, SimClock
from repro.cloud.provider import CloudProvider
from repro.crypto.drbg import DRBG
from repro.errors import (
    CloudUnavailableError,
    IntegrityError,
    NotFoundError,
)
from repro.server.index import FileEntry
from repro.system.cdstore import CDStoreSystem


def data_of(size: int, seed: str = "payload") -> bytes:
    return DRBG(seed).random_bytes(size)


@pytest.fixture
def system() -> CDStoreSystem:
    return CDStoreSystem(n=4, k=3, salt=b"org")


# ---------------------------------------------------------------------------
# refcount leak on re-upload (finalize_file overwrite)
# ---------------------------------------------------------------------------


class TestRefcountOnOverwrite:
    def test_reupload_then_delete_reclaims_everything(self, system):
        """upload; upload; delete; collect_garbage frees all share bytes."""
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(40_000)
        client.upload("/f", payload)
        client.upload("/f", payload)  # overwrite same path, same content
        client.delete("/f")
        freed = sum(server.collect_garbage() for server in system.servers)
        assert freed > 0
        stats = system.global_stats()
        assert stats.physical_shares == 0
        assert stats.shares_stored == 0

    def test_reupload_different_content_orphans_old_shares(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        old = data_of(40_000, "old")
        new = data_of(40_000, "new")
        client.upload("/f", old)
        client.upload("/f", new)  # overwrite with different content
        assert client.download("/f") == new
        # The old version's shares lost their only reference; GC reclaims
        # them while the new version stays restorable.
        freed = sum(server.collect_garbage() for server in system.servers)
        assert freed > 0
        assert client.download("/f") == new
        client.delete("/f")
        sum(server.collect_garbage() for server in system.servers)
        assert system.global_stats().physical_shares == 0

    def test_failed_refinalize_leaves_refcounts_intact(self, system):
        """A finalize that dies mid-overwrite must not release old refs.

        Otherwise a later delete double-decrements and GC reaps shares
        that the user's other files still reference.
        """
        from repro.errors import ProtocolError
        from repro.server.messages import FileManifest, ShareMeta

        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(20_000)
        client.upload("/f", payload)
        client.upload("/g", payload)  # same content: shares referenced twice
        bogus = ShareMeta(
            fingerprint=b"\x00" * 32, share_size=1, secret_seq=0, secret_size=1
        )
        lookup = client._lookup_key("/f")
        for server in system.servers:
            manifest = FileManifest(
                lookup_key=lookup, path_share=b"x", file_size=1, secret_count=1
            )
            with pytest.raises(ProtocolError):
                server.finalize_file("alice", manifest, [bogus])
        # /f survived the failed overwrite; deleting it must release
        # exactly one reference, leaving /g restorable after GC.
        client.delete("/f")
        sum(server.collect_garbage() for server in system.servers)
        assert client.download("/g") == payload

    def test_reupload_keeps_other_owners_refs(self, system):
        """Bob's reference to shared data survives alice's re-upload."""
        alice = system.client("alice", chunker=FixedChunker(4096))
        bob = system.client("bob", chunker=FixedChunker(4096))
        payload = data_of(40_000)
        alice.upload("/a", payload)
        bob.upload("/b", payload)
        alice.upload("/a", payload)  # overwrite
        alice.delete("/a")
        sum(server.collect_garbage() for server in system.servers)
        assert bob.download("/b") == payload


# ---------------------------------------------------------------------------
# cross-server file-entry disagreement
# ---------------------------------------------------------------------------


class TestFileEntryCrossCheck:
    @staticmethod
    def _tamper_entry(system, user: str, path: str, server_idx: int, **changes):
        client = system.client(user)
        server = system.servers[server_idx]
        key = server._file_key(user, client._lookup_key(path))
        entry = FileEntry.unpack(server.index.get(key))
        for attr, delta in changes.items():
            setattr(entry, attr, getattr(entry, attr) + delta)
        server.index.put(key, entry.pack())

    def test_file_size_disagreement_raises(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        client.upload("/f", data_of(20_000))
        self._tamper_entry(system, "alice", "/f", server_idx=2, file_size=1)
        with pytest.raises(IntegrityError):
            client.download("/f")

    def test_secret_count_disagreement_raises(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        client.upload("/f", data_of(20_000))
        self._tamper_entry(system, "alice", "/f", server_idx=0, secret_count=1)
        with pytest.raises(IntegrityError):
            client.download("/f")


# ---------------------------------------------------------------------------
# mid-restore failover to spare clouds
# ---------------------------------------------------------------------------


class TestRestoreFailover:
    @pytest.mark.parametrize("threads", [1, 3])
    def test_cloud_failing_mid_restore_fails_over_to_spare(self, threads):
        system = CDStoreSystem(n=4, k=3, salt=b"org", threads=threads)
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(30_000)
        client.upload("/f", payload)
        # Server 1 is in the chosen quorum; make its share fetch throw once
        # mid-restore (after the availability pre-check passed).
        victim = system.servers[1]
        original = victim.fetch_shares
        outages = {"count": 0}

        def flaky(fingerprints):
            outages["count"] += 1
            raise CloudUnavailableError("mid-restore outage")

        victim.fetch_shares = flaky
        try:
            assert client.download("/f") == payload
        finally:
            victim.fetch_shares = original
        assert outages["count"] == 1  # the spare answered instead
        system.close()

    @pytest.mark.parametrize("threads", [1, 3])
    def test_missing_share_entry_fails_over_to_spare(self, threads):
        system = CDStoreSystem(n=4, k=3, salt=b"org", threads=threads)
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(30_000)
        client.upload("/f", payload)
        # Drop one share-index entry on a chosen server: its fetch raises
        # NotFoundError and the restore must fail over, not abort.
        server = system.servers[0]
        from repro.server.index import PREFIX_SHARE

        key = next(key for key, _ in server.index.items(PREFIX_SHARE))
        server.index.delete(key)
        assert client.download("/f") == payload
        system.close()

    @pytest.mark.parametrize("threads", [1, 3])
    def test_corrupt_recipe_on_chosen_server_fails_over(self, threads):
        """A chosen server with an unreadable recipe is replaced by a
        spare instead of aborting the restore."""
        from repro.errors import ProtocolError

        system = CDStoreSystem(n=4, k=3, salt=b"org", threads=threads)
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(30_000)
        client.upload("/f", payload)

        def corrupt_recipe(user_id, lookup_key, bypass_cache=False):
            raise ProtocolError("recipe blob corrupt (bad length)")

        system.servers[1].get_recipe = corrupt_recipe
        assert client.download("/f") == payload
        system.close()

    def test_corrupt_spare_recipe_is_skipped_in_fallback(self, system):
        """A spare whose recipe is unreadable must be skipped by the §3.2
        widening loop, not abort the restore."""
        from repro.errors import ProtocolError

        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(20_000)
        client.upload("/f", payload)
        client.flush()
        backend = system.clouds[0].backend
        container_id = next(
            cid
            for cid in backend.list_keys("container-")
            if backend.get_object(cid)[4] == 1  # kind byte == KIND_SHARE
        )
        TestBruteForceSpareRecipeCache._corrupt_payloads(
            backend, container_id, count=2
        )
        system.servers[0].containers._cache.clear()

        def corrupt_recipe(user_id, lookup_key, bypass_cache=False):
            raise ProtocolError("recipe blob corrupt (bad length)")

        system.servers[3].get_recipe = corrupt_recipe
        # The only spare is unusable, and so is server 0's data for two
        # secrets — but shares from servers 1/2 plus the k-subset retry
        # cannot help here, so widen expectations: with the spare skipped,
        # decode falls back to the intact subsets that do exist.
        with pytest.raises(IntegrityError):
            client.download("/f")
        # Restore the spare: the same download now succeeds via widening.
        del system.servers[3].get_recipe
        assert client.download("/f") == payload

    def test_unknown_file_still_raises_not_found(self):
        system = CDStoreSystem(n=4, k=3, salt=b"org", threads=3)
        client = system.client("alice", chunker=FixedChunker(4096))
        with pytest.raises(NotFoundError):
            client.download("/never-uploaded")
        system.close()

    def test_mid_upload_failure_propagates_and_engine_survives(self):
        """An upload error surfaces after all cloud workers finish, and
        the engine stays usable for the retry."""
        system = CDStoreSystem(n=4, k=3, salt=b"org", threads=3)
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(30_000)
        victim = system.servers[2]
        original = victim.upload_shares

        def boom(user_id, uploads):
            raise CloudUnavailableError("mid-upload outage")

        victim.upload_shares = boom
        with pytest.raises(CloudUnavailableError):
            client.upload("/f", payload)
        victim.upload_shares = original
        client.upload("/f", payload)  # retry on the same engine
        assert client.download("/f") == payload
        system.close()

    def test_failover_exhausted_propagates(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        client.upload("/f", data_of(10_000))
        # Two chosen servers fail mid-restore but only one spare exists.
        for idx in (0, 1):
            def flaky(fingerprints, _idx=idx):
                raise CloudUnavailableError("mid-restore outage")

            system.servers[idx].fetch_shares = flaky
        with pytest.raises(CloudUnavailableError):
            client.download("/f")


# ---------------------------------------------------------------------------
# §3.2 brute-force fallback: spare recipes fetched once per restore
# ---------------------------------------------------------------------------


class TestBruteForceSpareRecipeCache:
    @staticmethod
    def _corrupt_payloads(backend, container_id: str, count: int) -> None:
        """Flip one byte inside the first ``count`` entry payloads."""
        blob = bytearray(backend.get_object(container_id))
        pos = 9  # container header: u32 magic | u8 kind | u32 count
        for _ in range(count):
            keylen, paylen = struct.unpack_from(">II", blob, pos)
            pos += 8 + keylen
            blob[pos] ^= 0xFF
            pos += paylen
        backend.put_object(container_id, bytes(blob))

    def test_dead_spare_is_skipped_not_fatal(self):
        """A failing spare must not abort a restore the healthy spares
        can still satisfy (n=6, k=3: two spares, one of them broken)."""
        system = CDStoreSystem(n=6, k=3, salt=b"org")
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(20_000)
        client.upload("/f", payload)
        client.flush()
        # Corrupt a chosen server's stored shares to force the §3.2
        # fallback, and break the first spare (server 3) so the widening
        # loop must skip it and use the healthy spares 4/5.
        backend = system.clouds[0].backend
        container_id = next(
            cid
            for cid in backend.list_keys("container-")
            if backend.get_object(cid)[4] == 1  # kind byte == KIND_SHARE
        )
        self._corrupt_payloads(backend, container_id, count=3)
        system.servers[0].containers._cache.clear()

        def boom(fingerprints):
            raise NotFoundError("spare lost its shares")

        system.servers[3].fetch_shares = boom
        assert client.download("/f") == payload

    def test_spare_recipe_fetched_once(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(20_000)  # 5 secrets
        client.upload("/f", payload)
        client.flush()
        # Corrupt three of server 0's stored shares: three secrets fail
        # integrity and each needs the spare's (server 3's) share.
        backend = system.clouds[0].backend
        container_id = next(
            cid
            for cid in backend.list_keys("container-")
            if backend.get_object(cid)[4] == 1  # kind byte == KIND_SHARE
        )
        self._corrupt_payloads(backend, container_id, count=3)
        # Drop the server's container cache so the restore reads the
        # corrupted backend bytes (a cold server after the tampering).
        system.servers[0].containers._cache.clear()

        spare = system.servers[3]
        calls = {"get_recipe": 0}
        original = spare.get_recipe

        def counting(*args, **kwargs):
            calls["get_recipe"] += 1
            return original(*args, **kwargs)

        spare.get_recipe = counting
        try:
            assert client.download("/f") == payload
        finally:
            spare.get_recipe = original
        assert calls["get_recipe"] == 1  # cached across the 3 failing secrets


# ---------------------------------------------------------------------------
# simulated wall-clock: makespan (threads > 1) vs sum (threads == 1)
# ---------------------------------------------------------------------------


def _asymmetric_system(threads: int, clock: SimClock) -> CDStoreSystem:
    clouds = [
        CloudProvider(name=f"cloud-{i}", uplink=Link(bw), downlink=Link(bw))
        for i, bw in enumerate([10.0, 20.0, 40.0, 80.0])
    ]
    return CDStoreSystem(
        n=4, k=3, salt=b"org", clouds=clouds, threads=threads, clock=clock
    )


class TestSimulatedWallClock:
    def test_parallel_upload_is_per_cloud_maximum(self):
        clock = SimClock()
        system = _asymmetric_system(threads=4, clock=clock)
        client = system.client("alice", chunker=FixedChunker(4096))
        receipt = client.upload("/f", data_of(100_000))
        assert receipt.sim_seconds == pytest.approx(
            max(receipt.seconds_per_cloud)
        )
        assert clock.now == pytest.approx(receipt.sim_seconds)
        # Sanity: the slowest cloud (10 MB/s) dominates the makespan.
        wire = receipt.wire_bytes_per_cloud[0]
        assert receipt.sim_seconds == pytest.approx(wire / 10e6)
        system.close()

    def test_serial_upload_is_per_cloud_sum(self):
        clock = SimClock()
        system = _asymmetric_system(threads=1, clock=clock)
        client = system.client("alice", chunker=FixedChunker(4096))
        receipt = client.upload("/f", data_of(100_000))
        assert receipt.sim_seconds == pytest.approx(
            sum(receipt.seconds_per_cloud)
        )
        assert receipt.sim_seconds > max(receipt.seconds_per_cloud) * 1.5
        system.close()

    def test_parallel_beats_serial(self):
        parallel, serial = SimClock(), SimClock()
        payload = data_of(100_000)
        sys_p = _asymmetric_system(threads=4, clock=parallel)
        sys_s = _asymmetric_system(threads=1, clock=serial)
        sys_p.client("alice", chunker=FixedChunker(4096)).upload("/f", payload)
        sys_s.client("alice", chunker=FixedChunker(4096)).upload("/f", payload)
        # Bandwidths 10/20/40/80 MB/s: sum of per-cloud times is 1.875x
        # the slowest cloud's time, and the makespan equals the latter.
        assert parallel.now < serial.now / 1.5
        sys_p.close()
        sys_s.close()

    def test_wire_bytes_identical_across_thread_counts(self):
        payload = data_of(60_000)
        receipts = []
        for threads in (1, 4):
            system = CDStoreSystem(n=4, k=3, salt=b"org", threads=threads)
            receipts.append(
                system.client("alice", chunker=FixedChunker(4096)).upload(
                    "/f", payload
                )
            )
            system.close()
        assert (
            receipts[0].wire_bytes_per_cloud == receipts[1].wire_bytes_per_cloud
        )
        assert (
            receipts[0].transferred_share_bytes
            == receipts[1].transferred_share_bytes
        )


# ---------------------------------------------------------------------------
# threads > 1 concurrent-upload stress (two clients, shared servers)
# ---------------------------------------------------------------------------


class TestConcurrentClients:
    def test_two_threaded_clients_share_servers(self):
        system = CDStoreSystem(n=4, k=3, salt=b"org", threads=3)
        alice = system.client("alice", chunker=FixedChunker(2048))
        bob = system.client("bob", chunker=FixedChunker(2048))
        shared = data_of(60_000, "shared")
        only_a = data_of(30_000, "a")
        only_b = data_of(30_000, "b")

        errors: list[BaseException] = []

        def run(client, jobs):
            try:
                for path, payload in jobs:
                    client.upload(path, payload)
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        workers = [
            threading.Thread(
                target=run, args=(alice, [("/shared", shared), ("/a", only_a)])
            ),
            threading.Thread(
                target=run, args=(bob, [("/shared", shared), ("/b", only_b)])
            ),
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors

        assert alice.download("/shared") == shared
        assert bob.download("/shared") == shared
        assert alice.download("/a") == only_a
        assert bob.download("/b") == only_b

        # Dedup accounting must match a sequential reference run: the
        # shared payload is stored once (inter-user dedup), everything is
        # transferred in full (side-channel safety).
        reference = CDStoreSystem(n=4, k=3, salt=b"org")
        ref_alice = reference.client("alice", chunker=FixedChunker(2048))
        ref_bob = reference.client("bob", chunker=FixedChunker(2048))
        ref_alice.upload("/shared", shared)
        ref_alice.upload("/a", only_a)
        ref_bob.upload("/shared", shared)
        ref_bob.upload("/b", only_b)

        got, want = system.global_stats(), reference.global_stats()
        assert got.physical_shares == want.physical_shares
        assert got.shares_stored == want.shares_stored
        assert got.transferred_shares == want.transferred_shares
        assert got.logical_shares == want.logical_shares
        system.close()


# ---------------------------------------------------------------------------
# process-parallel encode pool (workers="process")
# ---------------------------------------------------------------------------


class TestProcessEncodePool:
    @pytest.mark.slow
    def test_upload_restore_roundtrip(self):
        """Process workers produce byte-identical wire state to threads."""
        payload = data_of(300_000, "proc")
        systems = {
            mode: CDStoreSystem(n=4, k=3, salt=b"org", threads=3, workers=mode)
            for mode in ("thread", "process")
        }
        stored = {}
        for mode, system in systems.items():
            client = system.client("alice", chunker=FixedChunker(4096))
            client.upload("/f", payload)
            assert client.download("/f") == payload
            system.flush()
            stored[mode] = system.stored_bytes()
            system.close()
        # Convergent encoding: identical bytes stored either way.
        assert stored["thread"] == stored["process"]

    @pytest.mark.slow
    def test_dedup_unaffected_by_worker_mode(self):
        """Second upload of the same payload transfers ~nothing."""
        system = CDStoreSystem(n=4, k=3, salt=b"org", threads=2, workers="process")
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(200_000, "dedup-proc")
        client.upload("/one", payload)
        receipt = client.upload("/two", payload)
        assert receipt.transferred_share_bytes == 0
        system.close()

    def test_invalid_workers_mode_rejected(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            CDStoreSystem(n=2, k=2, workers="fork").client("alice")

    def test_slab_spans_cover_in_order(self):
        from repro.client.workers import slab_spans

        sizes = [8192] * 100
        spans = slab_spans(sizes, 4, slab_bytes=64 << 10)
        assert spans[0][0] == 0
        assert spans[-1][1] == len(sizes)
        for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
            assert a_end == b_start  # contiguous, ordered, gap-free
        assert len(spans) >= 8  # at least 2 slabs per worker

    def test_slabbed_share_sets_resolve_in_any_order(self):
        from concurrent.futures import Future

        from repro.client.workers import SlabbedShareSets

        futures = [Future(), Future()]
        futures[0].set_result(["a", "b"])
        futures[1].set_result(["c"])
        view = SlabbedShareSets(futures, [(0, 2), (2, 3)])
        assert len(view) == 3
        assert [view[2], view[0], view[1]] == ["c", "a", "b"]
        with pytest.raises(IndexError):
            view[3]

    def test_spec_less_codec_falls_back_to_threads(self):
        """A dispersal without a picklable spec still uploads correctly."""
        from repro.core.caont_rs import CAONTRS
        from repro.core.convergent import ConvergentDispersal

        system = CDStoreSystem(n=4, k=3, salt=b"org", threads=3, workers="process")
        client = system.client("alice", chunker=FixedChunker(4096))
        client.dispersal = ConvergentDispersal(4, 3, codec=CAONTRS(4, 3, salt=b"org"))
        assert client.dispersal.spec() is None
        payload = data_of(150_000, "fallback")
        client.upload("/f", payload)
        assert client.download("/f") == payload
        system.close()
