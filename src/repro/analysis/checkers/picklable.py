"""PICKLE-001: worker-shipped spec dataclasses stay on a picklable diet.

``ChunkerSpec`` (and any future ``*Spec`` dataclass) crosses the process
boundary into the encode pool, so every field must be a type the stdlib
pickles without custom machinery *and* without dragging surprise state
along.  The checker enforces an allowlist over the field annotations of
any ``@dataclass``-decorated class whose name ends in ``Spec``:

scalars (``str``/``int``/``float``/``bool``/``bytes``/``None``),
containers of allowed types (``tuple``/``list``/``dict``/``set``/
``frozenset`` and their ``typing`` spellings), ``Optional``/``Union``
unions of allowed types, ``Literal``, and other ``*Spec`` classes
(allowed by induction — their own fields are checked too, so a spec of
specs bottoms out in checked scalars).

Anything else — a lock, a socket, a callable, an open handle, a numpy
array — fails analysis at the field's line.  The allowlist is
deliberately tighter than "what pickle can technically serialise":
specs are re-hydrated in worker processes on every pool warm-up, so
fields must also be cheap and unambiguous to copy.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import FileContext, Finding

__all__ = ["check_picklable"]

_ALLOWED_NAMES = frozenset(
    {
        "str",
        "int",
        "float",
        "bool",
        "bytes",
        "bytearray",
        "complex",
        "None",
        "tuple",
        "Tuple",
        "list",
        "List",
        "dict",
        "Dict",
        "set",
        "Set",
        "frozenset",
        "FrozenSet",
        "Optional",
        "Union",
        "Literal",
        "Sequence",
        "Mapping",
    }
)


def _annotation_ok(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        # None in `int | None`, Ellipsis in `tuple[int, ...]`, and Literal
        # members (which are constants by construction) are all fine; a
        # string annotation would need evaluation, so reject it.
        return not isinstance(node.value, str)
    if isinstance(node, ast.Name):
        # Nested specs (GatewaySpec.endpoint: CloudSpec) are allowed by
        # induction: every *Spec dataclass is itself checked field by
        # field, so a spec of specs bottoms out in checked scalars.
        return node.id in _ALLOWED_NAMES or node.id.endswith("Spec")
    if isinstance(node, ast.Attribute):
        # typing.Optional et al., plus dotted nested specs.
        return node.attr in _ALLOWED_NAMES or node.attr.endswith("Spec")
    if isinstance(node, ast.Subscript):
        return _annotation_ok(node.value) and _annotation_ok(node.slice)
    if isinstance(node, ast.Tuple):
        return all(_annotation_ok(elt) for elt in node.elts)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_ok(node.left) and _annotation_ok(node.right)
    return False


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = (
            target.attr
            if isinstance(target, ast.Attribute)
            else target.id
            if isinstance(target, ast.Name)
            else ""
        )
        if name == "dataclass":
            return True
    return False


def check_picklable(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.ClassDef)
            and node.name.endswith("Spec")
            and _is_dataclass(node)
        ):
            continue
        for stmt in node.body:
            if not (
                isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
            ):
                continue
            if stmt.target.id.startswith("_"):
                continue  # ClassVar-style internals are not shipped fields
            if not _annotation_ok(stmt.annotation):
                findings.append(
                    ctx.finding(
                        stmt,
                        "PICKLE-001",
                        (
                            f"{node.name}.{stmt.target.id} is annotated "
                            f"'{ast.unparse(stmt.annotation)}', which is not "
                            f"on the known-picklable allowlist for specs "
                            f"shipped to process workers"
                        ),
                    )
                )
    return findings
