"""Convergent-dispersal facade and codec factory.

:class:`ConvergentDispersal` is the high-level entry point matching
Figure 2 of the paper: a secret goes in, ``n`` deterministic shares come
out, with the share-to-cloud pinning and brute-force decode fallback of
§3.2 handled here so the client code stays simple.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import CodingError, IntegrityError, ParameterError
from repro.sharing.base import SecretSharingScheme, ShareSet
from repro.sharing.registry import create_scheme

__all__ = ["ConvergentDispersal", "create_codec"]

_CONVERGENT_SCHEMES = ("caont-rs", "caont-rs-rivest", "crsss")


def create_codec(name: str, n: int, k: int, **kwargs) -> SecretSharingScheme:
    """Instantiate an AONT-RS-family codec by name.

    Accepts ``"caont-rs"`` (the paper's contribution, default choice),
    ``"caont-rs-rivest"`` and ``"aont-rs"``; delegates to the scheme
    registry so custom registrations work too.
    """
    return create_scheme(name, n, k, **kwargs)


class ConvergentDispersal:
    """Encode secrets into per-cloud shares; decode from any ``k`` clouds.

    Wraps a convergent codec and adds:

    * share labelling — share ``i`` always belongs to cloud ``i`` (§3.2:
      "the same cloud always receives the same share"), so deduplication
      works per cloud and restores know where to look;
    * integrity-driven brute force — if a decode fails verification, every
      other ``k``-subset of the available shares is tried before giving up
      (§3.2: "try a different subset of k shares until the secret is
      correctly decoded").
    """

    def __init__(
        self,
        n: int,
        k: int,
        scheme: str = "caont-rs",
        salt: bytes = b"",
        codec: SecretSharingScheme | None = None,
        **kwargs,
    ) -> None:
        if codec is not None:
            # A pre-built deterministic codec (e.g. the server-aided
            # CAONT-RS bound to a key server) bypasses the registry.
            if not codec.deterministic:
                raise ParameterError(
                    f"codec {codec.name!r} is not convergent (non-deterministic)"
                )
            if (codec.n, codec.k) != (n, k):
                raise ParameterError(
                    f"codec is ({codec.n}, {codec.k}), expected ({n}, {k})"
                )
            self.n = n
            self.k = k
            self.scheme = codec.name
            self.codec = codec
            return
        if scheme not in _CONVERGENT_SCHEMES:
            raise ParameterError(
                f"{scheme!r} is not convergent; choose from {_CONVERGENT_SCHEMES}"
            )
        self.n = n
        self.k = k
        self.scheme = scheme
        self.codec = create_codec(scheme, n, k, salt=salt, **kwargs)

    # ------------------------------------------------------------------
    def encode(self, secret: bytes) -> ShareSet:
        """Disperse ``secret`` into ``n`` shares (share i → cloud i)."""
        return self.codec.split(secret)

    def decode(self, shares: dict[int, bytes], secret_size: int) -> bytes:
        """Reconstruct a secret from any ``k`` of its shares.

        On integrity failure, retries every other ``k``-subset of the
        provided shares (brute-force fallback of §3.2) and raises
        :class:`IntegrityError` only when all subsets fail.
        """
        if len(shares) < self.k:
            raise CodingError(
                f"need at least k={self.k} shares, got {len(shares)}"
            )
        indices = sorted(shares)
        first_error: Exception | None = None
        for subset in combinations(indices, self.k):
            try:
                return self.codec.recover(
                    {i: shares[i] for i in subset}, secret_size
                )
            except (IntegrityError, CodingError) as exc:
                first_error = first_error or exc
        raise IntegrityError(
            f"no {self.k}-subset of {len(indices)} shares decoded cleanly"
        ) from first_error

    def share_size(self, secret_size: int) -> int:
        """Per-share size for a secret of ``secret_size`` bytes."""
        return self.codec.share_size(secret_size)
