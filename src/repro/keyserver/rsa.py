"""RSA primitives and blind signatures, from scratch.

Implements exactly what the DupLESS-style key server needs:

* probabilistic prime generation (Miller-Rabin with 40 rounds);
* RSA key generation with ``e = 65537``;
* raw ("textbook") RSA signing of *already-hashed, blinded* values — safe
  here because the only thing ever signed is a full-domain-hashed chunk
  digest, and blinding randomises the server's view;
* the blind/unblind algebra: ``blind(x) = x·r^e mod N``,
  ``unblind(s') = s'·r⁻¹ mod N``, giving ``s = x^d mod N`` without the
  server learning ``x``.

Keys default to 1024 bits: the goal of this module is protocol fidelity
inside a simulation, not production cryptography, and pure-Python keygen
cost grows steeply with size (2048-bit keys work, just slower).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.drbg import DRBG, system_random_bytes
from repro.errors import CryptoError, ParameterError

__all__ = ["RSAKeyPair", "generate_keypair", "full_domain_hash"]

_MR_ROUNDS = 40
_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]


def _is_probable_prime(n: int, rng) -> bool:
    """Miller-Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(_MR_ROUNDS):
        a = 2 + rng.randint(0, n - 4)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng) -> int:
    """Random prime with the top two bits set (ensures full modulus size)."""
    while True:
        candidate = int.from_bytes(rng.random_bytes(bits // 8), "big")
        candidate |= 1 << (bits - 1) | 1 << (bits - 2) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


class _SystemRng:
    """Adapter exposing the DRBG interface over OS randomness."""

    @staticmethod
    def random_bytes(length: int) -> bytes:
        return system_random_bytes(length)

    @staticmethod
    def randint(low: int, high: int) -> int:
        span = high - low + 1
        nbytes = (span - 1).bit_length() // 8 + 1
        while True:
            value = int.from_bytes(system_random_bytes(nbytes), "big")
            if value < (256**nbytes // span) * span:
                return low + value % span


@dataclass(frozen=True)
class RSAKeyPair:
    """An RSA key: public (n, e) and private exponent d."""

    n: int
    e: int
    d: int
    bits: int

    @property
    def public(self) -> tuple[int, int]:
        return self.n, self.e

    # ------------------------------------------------------------------
    def sign_raw(self, value: int) -> int:
        """Raw RSA signature ``value^d mod n`` (only for blinded FDH values)."""
        if not 0 < value < self.n:
            raise CryptoError("value outside RSA modulus range")
        return pow(value, self.d, self.n)

    def verify_raw(self, value: int, signature: int) -> bool:
        """Check ``signature^e == value mod n``."""
        return pow(signature, self.e, self.n) == value % self.n


def generate_keypair(bits: int = 1024, rng: DRBG | None = None) -> RSAKeyPair:
    """Generate an RSA keypair with ``e = 65537``."""
    if bits < 512 or bits % 2:
        raise ParameterError(f"RSA size must be an even number >= 512, got {bits}")
    source = rng if rng is not None else _SystemRng()
    e = 65537
    while True:
        p = _random_prime(bits // 2, source)
        q = _random_prime(bits // 2, source)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        lam = (p - 1) * (q - 1)
        if lam % e == 0:
            continue
        d = pow(e, -1, lam)
        return RSAKeyPair(n=n, e=e, d=d, bits=bits)


def full_domain_hash(data: bytes, n: int) -> int:
    """Hash ``data`` to an integer in [1, n) (counter-mode FDH)."""
    nbytes = (n.bit_length() + 7) // 8 + 8
    stream = b"".join(
        hashlib.sha256(b"FDH" + i.to_bytes(4, "big") + data).digest()
        for i in range(-(-nbytes // 32))
    )
    return int.from_bytes(stream[:nbytes], "big") % (n - 1) + 1
