"""Analysis tools: restore fragmentation metrics + the invariant checkers.

§5.5 observes that "deduplication now introduces chunk fragmentation [38]
for subsequent backups" and that download speed "will gradually degrade
due to fragmentation as we store more backups", while declining to address
it.  :mod:`repro.analysis.fragmentation` provides the measurement side:
per-restore container-access metrics that quantify the effect on real
deployments (and feed the fragmentation derating of the transfer model).

The rest of the package is the ``repro analyze`` invariant checker suite
(:mod:`repro.analysis.engine` + :mod:`repro.analysis.checkers`): AST
checkers that enforce this codebase's concurrency and durability
discipline — lock guards (LOCK-001), fsync ordering (DUR-00x), wire-frame
exhaustiveness (WIRE-00x), resource lifecycle (LIFE-001), worker-spec
picklability (PICKLE-001) — plus the opt-in runtime lock-order witness
(:mod:`repro.analysis.witness`, ``REPRO_LOCK_WITNESS=1``).
"""

from repro.analysis.annotations import EXTERNAL, guarded_by, requires_lock
from repro.analysis.engine import (
    AnalysisError,
    Finding,
    RULE_DOCS,
    run_analysis,
)
from repro.analysis.fragmentation import FragmentationReport, analyze_fragmentation

__all__ = [
    "AnalysisError",
    "EXTERNAL",
    "Finding",
    "FragmentationReport",
    "RULE_DOCS",
    "analyze_fragmentation",
    "guarded_by",
    "requires_lock",
    "run_analysis",
]
