"""In-memory sorted write buffer of the LSM tree.

Inserts go to the memtable first (after the WAL); when it exceeds its size
budget the store flushes it to an immutable SSTable.  Deletions are stored
as tombstones so they mask older SSTable entries until compaction.

A plain dict plus sort-on-flush is used rather than a skiplist: point
lookups are O(1), and sorting once at flush time is both simpler and faster
in Python than maintaining sorted order per insert.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["MemTable", "TOMBSTONE"]

#: Sentinel marking a deleted key (never confused with a value: real values
#: are bytes, the sentinel is a unique object).
TOMBSTONE = object()


class MemTable:
    """Mutable key-value buffer with tombstone support."""

    def __init__(self) -> None:
        self._data: dict[bytes, bytes | object] = {}
        self._bytes = 0

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        self._account(key, self._data.get(key))
        self._data[key] = value
        self._bytes += len(key) + len(value)

    def delete(self, key: bytes) -> None:
        """Record a tombstone for ``key``."""
        self._account(key, self._data.get(key))
        self._data[key] = TOMBSTONE
        self._bytes += len(key)

    def _account(self, key: bytes, old: bytes | object | None) -> None:
        if old is None:
            return
        self._bytes -= len(key) + (len(old) if isinstance(old, bytes) else 0)

    def get(self, key: bytes):
        """Return value bytes, TOMBSTONE, or None if absent."""
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    @property
    def approximate_bytes(self) -> int:
        """Rough memory footprint used for the flush threshold."""
        return self._bytes

    def sorted_items(self) -> Iterator[tuple[bytes, bytes | object]]:
        """Items in key order (for flushing to an SSTable)."""
        for key in sorted(self._data):
            yield key, self._data[key]
