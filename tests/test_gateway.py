"""The sharded read gateway: ring, hot cache, service and wire surface.

Covers the `repro.gateway` stack bottom-up — consistent-hash stability,
byte-bounded cache eviction and per-backup invalidation, resolution +
window serving against real in-process servers — then end-to-end: a
client restoring through a gateway front-end over real loopback sockets,
tenancy scoping on the gateway frames, and the degraded mode the design
leans on (gateway path provably dead, restore still byte-identical via
the direct-quorum fallback).
"""

from __future__ import annotations

import pytest

from repro.chunking.fixed import FixedChunker
from repro.client.client import CDStoreClient
from repro.cloud.network import Link
from repro.cloud.provider import CloudProvider
from repro.errors import (
    AuthError,
    CloudUnavailableError,
    IntegrityError,
    NotFoundError,
    ParameterError,
    ProtocolError,
)
from repro.gateway import GatewayService, HashRing, HotContainerCache
from repro.net import AsyncCDStoreTCPServer, CDStoreTCPServer, RemoteServerProxy, wire
from repro.server.server import CDStoreServer
from repro.tenants import Credentials, TenantRecord, TenantRegistry


def make_servers(n: int = 4) -> list[CDStoreServer]:
    return [
        CDStoreServer(
            server_id=i,
            cloud=CloudProvider(f"cloud-{i}", Link(100.0), Link(100.0)),
        )
        for i in range(n)
    ]


def make_client(servers, user="alice", **kwargs) -> CDStoreClient:
    kwargs.setdefault("chunker", FixedChunker(4096))
    return CDStoreClient(user_id=user, servers=list(servers), k=3,
                         salt=b"org", **kwargs)


def payload(size: int, seed: int = 7) -> bytes:
    import random

    return random.Random(seed).randbytes(size)


def store(servers, name: str, data: bytes, user="alice") -> None:
    writer = make_client(servers, user=user)
    writer.upload(name, data)
    writer.flush()


# ---------------------------------------------------------------------------
# consistent-hash ring
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_validation(self):
        with pytest.raises(ParameterError):
            HashRing([])
        with pytest.raises(ParameterError):
            HashRing([1, 1])
        with pytest.raises(ParameterError):
            HashRing([1], vnodes=0)

    def test_preferred_is_a_permutation_of_all_nodes(self):
        ring = HashRing([0, 1, 2, 3])
        order = ring.preferred(b"some-window-key")
        assert sorted(order) == [0, 1, 2, 3]

    def test_deterministic_across_instances(self):
        """Two processes building the same ring must agree (the cache
        only converges if every gateway shards identically)."""
        keys = [b"key-%d" % i for i in range(64)]
        a = HashRing([0, 1, 2, 3], vnodes=16)
        b = HashRing([3, 2, 1, 0], vnodes=16)  # order must not matter
        assert [a.preferred(k) for k in keys] == [b.preferred(k) for k in keys]

    def test_adding_a_node_only_moves_keys_to_it(self):
        """The consistent-hashing contract: growing the ring reassigns
        a ~1/n slice to the new node and nothing else — a modulo scheme
        would reshuffle (and cold-start the cache for) almost every key."""
        keys = [b"window-%d" % i for i in range(512)]
        before = HashRing([0, 1, 2, 3], vnodes=32)
        after = HashRing([0, 1, 2, 3, 4], vnodes=32)
        moved = 0
        for key in keys:
            old = before.preferred(key)[0]
            new = after.preferred(key)[0]
            if new != old:
                assert new == 4  # keys only ever move to the new node
                moved += 1
        assert 0 < moved < len(keys) // 2


# ---------------------------------------------------------------------------
# hot-container cache
# ---------------------------------------------------------------------------


ALICE = ("alice", b"file-a")
BOB = ("bob", b"file-b")


def _key(backup, window, server_id=0, digest=b"d"):
    return (*backup, window, server_id, digest)


class TestHotContainerCache:
    def test_byte_bounded_eviction(self):
        cache = HotContainerCache(100)
        cache.put(_key(ALICE, 0), [b"x" * 60])
        cache.put(_key(ALICE, 1), [b"y" * 60])  # evicts window 0
        assert cache.get(_key(ALICE, 0)) is None
        assert cache.get(_key(ALICE, 1)) == [b"y" * 60]
        assert cache.size_bytes <= cache.capacity_bytes

    def test_eviction_keeps_backup_index_in_step(self):
        """A capacity-evicted key must vanish from the per-backup index
        too, or invalidate() would count (and retain bookkeeping for)
        entries that no longer exist."""
        cache = HotContainerCache(100)
        cache.put(_key(ALICE, 0), [b"x" * 60])
        cache.put(_key(ALICE, 1), [b"y" * 60])  # evicts window 0
        assert cache.invalidate(ALICE) == 1  # only window 1 remains

    def test_invalidate_drops_only_that_backup(self):
        cache = HotContainerCache(1 << 20)
        cache.put(_key(ALICE, 0), [b"a"])
        cache.put(_key(ALICE, 1), [b"b"])
        cache.put(_key(BOB, 0), [b"c"])
        assert cache.invalidate(ALICE) == 2
        assert cache.invalidate(ALICE) == 0  # idempotent
        assert cache.get(_key(ALICE, 0)) is None
        assert cache.get(_key(BOB, 0)) == [b"c"]

    def test_hit_stats(self):
        cache = HotContainerCache(1 << 20)
        cache.put(_key(ALICE, 0), [b"a"])
        assert cache.get(_key(ALICE, 0)) is not None
        assert cache.get(_key(ALICE, 1)) is None
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_empty_share_lists_still_occupy_a_slot(self):
        cache = HotContainerCache(10)
        cache.put(_key(ALICE, 0), [])
        assert cache.entries == 1
        assert cache.size_bytes == 1  # floored, so it stays evictable


# ---------------------------------------------------------------------------
# gateway service over in-process replicas
# ---------------------------------------------------------------------------


class TestGatewayService:
    def test_parameter_validation(self):
        servers = make_servers(4)
        with pytest.raises(ParameterError):
            GatewayService(servers, k=0)
        with pytest.raises(ParameterError):
            GatewayService(servers[:2], k=3)
        with pytest.raises(ParameterError):
            GatewayService([servers[0], servers[0]], k=1)
        with pytest.raises(ParameterError):
            GatewayService(servers, k=3, recipe_ttl=-1)

    def test_resolve_matches_direct_plan(self):
        servers = make_servers(4)
        data = payload(50_000)
        store(servers, "f", data)
        client = make_client(servers)
        with GatewayService(servers, k=3) as service:
            file_size, secret_sizes, windows = service.resolve_backup(
                "alice", client._lookup_key("f")
            )
        assert file_size == len(data)
        assert sum(secret_sizes) == len(data)
        assert windows[0][0] == 0
        assert windows[-1][1] == len(secret_sizes)

    def test_resolve_unknown_backup_raises_not_found(self):
        servers = make_servers(4)
        client = make_client(servers)
        with GatewayService(servers, k=3) as service:
            with pytest.raises(NotFoundError):
                service.resolve_backup("alice", client._lookup_key("nope"))

    def test_window_index_out_of_range(self):
        servers = make_servers(4)
        store(servers, "f", payload(10_000))
        client = make_client(servers)
        with GatewayService(servers, k=3) as service:
            key = client._lookup_key("f")
            service.resolve_backup("alice", key)
            with pytest.raises(ParameterError):
                list(service.iter_window_shards("alice", key, 99))

    def test_restore_through_gateway_and_cache_hits(self):
        servers = make_servers(4)
        data = payload(100_000)
        store(servers, "f", data)
        with GatewayService(servers, k=3, window_bytes=16_384) as service:
            client = make_client(servers, gateway=service)
            with client.open_read("f") as session:
                assert session.plan.via == "gateway"
                assert len(session.plan.windows) > 1
                assert session.read() == data
            cold = service.stats()
            assert cold["cache_misses"] > 0 and cold["cache_hits"] == 0
            assert client.download("f") == data  # warm pass
            warm = service.stats()
            assert warm["cache_hits"] >= cold["cache_misses"]
            assert warm["cache_misses"] == cold["cache_misses"]
            assert warm["cache_hit_ratio"] > 0

    def test_overwrite_invalidates_and_serves_new_bytes(self):
        """recipe_ttl=0 revalidates every resolve: after an overwrite the
        next restore must return the new bytes and reclaim the old
        version's cache entries (content addressing already makes stale
        hits impossible; the invalidation frees the dead weight)."""
        servers = make_servers(4)
        old = payload(60_000, seed=1)
        new = payload(60_000, seed=2)
        store(servers, "f", old)
        with GatewayService(
            servers, k=3, window_bytes=16_384, recipe_ttl=0.0
        ) as service:
            client = make_client(servers, gateway=service)
            assert client.download("f") == old
            populated = service.stats()["cache_entries"]
            assert populated > 0
            store(servers, "f", new)
            assert client.download("f") == new
            # Old version's entries were invalidated on re-resolution:
            # the cache holds at most the new version's working set.
            assert service.stats()["cache_entries"] <= populated

    def test_invalidate_backup_counts_dropped_entries(self):
        servers = make_servers(4)
        store(servers, "f", payload(40_000))
        with GatewayService(servers, k=3, window_bytes=16_384) as service:
            client = make_client(servers, gateway=service)
            client.download("f")
            dropped = service.invalidate_backup(
                "alice", client._lookup_key("f")
            )
            assert dropped > 0
            assert service.stats()["cache_entries"] == 0

    def test_per_user_cache_isolation(self):
        """Two tenants storing the same pathname get their own bytes —
        cache keys carry the user id, so a shared gateway can never leak
        one tenant's hot windows into another's restore."""
        servers = make_servers(4)
        data_a = payload(30_000, seed=1)
        data_b = payload(30_000, seed=2)
        store(servers, "same-name", data_a, user="alice")
        store(servers, "same-name", data_b, user="bob")
        with GatewayService(servers, k=3) as service:
            alice = make_client(servers, user="alice", gateway=service)
            bob = make_client(servers, user="bob", gateway=service)
            assert alice.download("same-name") == data_a
            assert bob.download("same-name") == data_b
            assert alice.download("same-name") == data_a  # bob warmed nothing


# ---------------------------------------------------------------------------
# degraded mode: dead replicas fall back to the direct quorum
# ---------------------------------------------------------------------------


class _FlakyReplica:
    """Delegate that serves ``budget`` fetch_shares calls, then dies."""

    def __init__(self, inner, budget: list):
        self._inner = inner
        self._budget = budget  # shared across replicas: [calls_left]

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def fetch_shares(self, fingerprints):
        if self._budget[0] <= 0:
            raise CloudUnavailableError("replica killed mid-restore")
        self._budget[0] -= 1
        return self._inner.fetch_shares(fingerprints)


class TestGatewayFallback:
    def test_replica_dying_mid_restore_falls_back_byte_identically(self):
        """Window 0 streams fine, then every replica goes dark: the
        gateway path fails mid-restore and ``download`` restarts on the
        direct quorum, returning the exact original bytes."""
        servers = make_servers(4)
        data = payload(120_000)
        store(servers, "f", data)
        budget = [3]  # exactly one window's worth of fetches (k=3)
        flaky = [_FlakyReplica(s, budget) for s in servers]
        with GatewayService(flaky, k=3, window_bytes=16_384) as service:
            client = make_client(servers, gateway=service)
            with pytest.raises(CloudUnavailableError):
                with client.open_read("f", via="gateway") as session:
                    session.read()
            assert client.download("f") == data  # direct-quorum fallback

    def test_gateway_down_entirely_still_restores(self):
        servers = make_servers(4)
        data = payload(40_000)
        store(servers, "f", data)
        budget = [0]  # every gateway fetch fails immediately
        flaky = [_FlakyReplica(s, budget) for s in servers]
        with GatewayService(flaky, k=3) as service:
            client = make_client(servers, gateway=service)
            assert client.download("f") == data


# ---------------------------------------------------------------------------
# end-to-end over real sockets
# ---------------------------------------------------------------------------


@pytest.fixture
def gateway_deployment():
    """Four TCP-served replicas behind one async gateway front-end."""
    servers = make_servers(4)
    tcps = [CDStoreTCPServer(server).start() for server in servers]
    replicas = [
        RemoteServerProxy(f"tcp://{t.address[0]}:{t.address[1]}", server_id=i)
        for i, t in enumerate(tcps)
    ]
    service = GatewayService(
        replicas, k=3, window_bytes=16_384, own_replicas=True
    )
    front = AsyncCDStoreTCPServer(None, gateway=service).start()
    host, port = front.address
    gw_proxy = RemoteServerProxy(
        f"tcp://{host}:{port}", server_id=wire.GATEWAY_SERVER_ID
    )
    try:
        yield servers, tcps, service, front, gw_proxy
    finally:
        gw_proxy.close()
        front.shutdown()
        service.close()  # closes the replica proxies (own_replicas)
        for tcp in tcps:
            tcp.shutdown()


class TestGatewayWireE2E:
    def test_restore_through_gateway_frames(self, gateway_deployment):
        servers, _tcps, service, _front, gw_proxy = gateway_deployment
        data = payload(100_000)
        store(servers, "f", data)
        client = make_client(servers, gateway=gw_proxy)
        assert client.download("f") == data
        assert service.stats()["resolutions"] == 1
        assert client.download("f") == data
        assert service.stats()["cache_hits"] > 0

    def test_gateway_front_end_rejects_api_frames(self, gateway_deployment):
        """A pure gateway front-end answers ping/auth/gateway frames only;
        server-API frames get a typed protocol error, not a hang."""
        servers, _tcps, _service, _front, gw_proxy = gateway_deployment
        store(servers, "f", payload(10_000))
        client = make_client(servers)
        assert gw_proxy.ping()
        with pytest.raises(ProtocolError, match="gateway front-end"):
            gw_proxy.get_file_entry("alice", client._lookup_key("f"))

    def test_replicas_killed_behind_cache_miss_falls_back(
        self, gateway_deployment
    ):
        """The ISSUE's degraded mode, over real sockets: warm file A,
        kill enough replicas that any k-subset contains a dead one, and
        restore file B (a cache miss) — the gateway path raises, the
        direct quorum (still reachable in-process) restores
        byte-identically."""
        servers, tcps, _service, _front, gw_proxy = gateway_deployment
        data_a = payload(40_000, seed=1)
        data_b = payload(40_000, seed=2)
        store(servers, "a", data_a)
        store(servers, "b", data_b)
        client = make_client(servers, gateway=gw_proxy)
        assert client.download("a") == data_a  # warm the gateway
        tcps[1].shutdown()  # two dead replicas: every k=3 choice
        tcps[2].shutdown()  # now includes at least one of them
        assert client.download("b") == data_b  # fallback, byte-identical
        with pytest.raises((CloudUnavailableError, ProtocolError)):
            with client.open_read("b", via="gateway") as session:
                session.read()


class TestGatewayTenancy:
    def test_gateway_frames_are_tenant_scoped(self):
        """An authenticated connection is pinned to its tenant for the
        gateway frames exactly like the server-API frames: alice cannot
        resolve (or warm the cache for) bob's backups."""
        registry = TenantRegistry([
            TenantRecord("alice", b"alice-secret"),
            TenantRecord("bob", b"bob-secret"),
        ])
        servers = make_servers(4)
        data_a = payload(20_000, seed=1)
        data_b = payload(20_000, seed=2)
        store(servers, "f", data_a, user="alice")
        store(servers, "f", data_b, user="bob")
        service = GatewayService(servers, k=3)
        front = AsyncCDStoreTCPServer(
            None, gateway=service, tenants=registry
        ).start()
        host, port = front.address
        alice_gw = RemoteServerProxy(
            f"tcp://{host}:{port}",
            server_id=wire.GATEWAY_SERVER_ID,
            credentials=Credentials("alice", b"alice-secret"),
        )
        try:
            alice = make_client(servers, user="alice", gateway=alice_gw)
            assert alice.download("f") == data_a
            bob_key = make_client(servers, user="bob")._lookup_key("f")
            with pytest.raises(AuthError):
                alice_gw.resolve_backup("bob", bob_key)
            with pytest.raises(AuthError):
                list(alice_gw.iter_window_shards("bob", bob_key, 0))
        finally:
            alice_gw.close()
            front.shutdown()
            service.close()

    def test_unauthenticated_gateway_frames_rejected(self):
        registry = TenantRegistry([TenantRecord("alice", b"alice-secret")])
        servers = make_servers(4)
        service = GatewayService(servers, k=3)
        front = AsyncCDStoreTCPServer(
            None, gateway=service, tenants=registry
        ).start()
        host, port = front.address
        anon = RemoteServerProxy(
            f"tcp://{host}:{port}", server_id=wire.GATEWAY_SERVER_ID
        )
        try:
            with pytest.raises(AuthError):
                anon.resolve_backup("alice", b"\0" * 32)
        finally:
            anon.close()
            front.shutdown()
            service.close()


# ---------------------------------------------------------------------------
# dispatcher wiring
# ---------------------------------------------------------------------------


class TestFrontEndWiring:
    def test_front_end_requires_server_or_gateway(self):
        from repro.net.dispatch import FrameDispatcher

        with pytest.raises(ValueError):
            FrameDispatcher(None)

    def test_api_front_end_without_gateway_rejects_gateway_frames(self):
        servers = make_servers(1)
        tcp = AsyncCDStoreTCPServer(servers[0]).start()
        host, port = tcp.address
        proxy = RemoteServerProxy(f"tcp://{host}:{port}", server_id=0)
        try:
            with pytest.raises(ProtocolError, match="no read gateway"):
                proxy.resolve_backup("alice", b"\0" * 32)
        finally:
            proxy.close()
            tcp.shutdown()
