"""Cloud simulation: links, providers, clock, testbed models."""

import pytest

from repro.cloud.network import Link, SimClock
from repro.cloud.provider import CloudProvider
from repro.cloud.testbed import (
    CLOUD_LINKS,
    LOCAL_I5,
    LOCAL_XEON,
    cloud_testbed,
    lan_testbed,
)
from repro.errors import CloudUnavailableError, NotFoundError, ParameterError


class TestLink:
    def test_transfer_time(self):
        link = Link(bandwidth_mbps=100.0)
        assert link.transfer_time(100_000_000) == pytest.approx(1.0)

    def test_latency_charged_per_batch(self):
        link = Link(bandwidth_mbps=100.0, latency_s=0.1)
        base = link.transfer_time(1_000_000, batches=1)
        assert link.transfer_time(1_000_000, batches=5) == pytest.approx(base + 0.4)

    def test_validation(self):
        with pytest.raises(ParameterError):
            Link(0)
        with pytest.raises(ParameterError):
            Link(10, latency_s=-1)
        with pytest.raises(ParameterError):
            Link(10).transfer_time(-5)


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        assert clock.now == 1.5
        with pytest.raises(ParameterError):
            clock.advance(-1)

    def test_parallel_takes_makespan(self):
        clock = SimClock()
        span = clock.advance_parallel([1.0, 3.0, 2.0])
        assert span == 3.0
        assert clock.now == 3.0

    def test_shared_floor(self):
        clock = SimClock()
        assert clock.advance_parallel([1.0], shared_floor=5.0) == 5.0


class TestProvider:
    def test_failure_injection(self):
        cloud = CloudProvider("c", Link(10), Link(10))
        cloud.put_object("k", b"v")
        cloud.fail()
        with pytest.raises(CloudUnavailableError):
            cloud.get_object("k")
        with pytest.raises(CloudUnavailableError):
            cloud.put_object("k2", b"v")
        cloud.recover()
        assert cloud.get_object("k") == b"v"

    def test_stored_bytes_visible_during_outage(self):
        cloud = CloudProvider("c", Link(10), Link(10))
        cloud.put_object("k", b"12345")
        cloud.fail()
        assert cloud.stored_bytes == 5  # billing continues through outages

    def test_wipe(self):
        cloud = CloudProvider("c", Link(10), Link(10))
        cloud.put_object("k", b"v")
        cloud.wipe()
        with pytest.raises(NotFoundError):
            cloud.get_object("k")


class TestPerformanceModel:
    def test_thread_scaling(self):
        doubled = LOCAL_I5.scaled_threads(4)
        assert doubled.encode_mbps == pytest.approx(2 * LOCAL_I5.encode_mbps)
        assert doubled.server_disk_write_mbps == LOCAL_I5.server_disk_write_mbps
        with pytest.raises(ParameterError):
            LOCAL_I5.scaled_threads(0)

    def test_machine_presets(self):
        assert LOCAL_XEON.encode_mbps < LOCAL_I5.encode_mbps


class TestTestbeds:
    def test_lan_testbed_shape(self):
        tb = lan_testbed()
        assert tb.n == 4
        assert all(c.uplink.bandwidth_mbps == 110.0 for c in tb.clouds)

    def test_cloud_testbed_links_match_table2(self):
        tb = cloud_testbed()
        names = {c.name for c in tb.clouds}
        assert names == set(CLOUD_LINKS)
        for cloud in tb.clouds:
            up, down = CLOUD_LINKS[cloud.name]
            assert cloud.uplink.bandwidth_mbps == up
            assert cloud.downlink.bandwidth_mbps == down

    def test_upload_time_argument_validation(self):
        tb = lan_testbed()
        with pytest.raises(ParameterError):
            tb.upload_time(100, [1.0, 2.0])  # wrong cloud count

    def test_download_fragmentation_validation(self):
        tb = lan_testbed()
        with pytest.raises(ParameterError):
            tb.download_time(100, {0: 10.0}, fragmentation=1.5)

    def test_upload_unique_bounded_by_uplink(self):
        """LAN unique upload ≈ (k/n) x link speed (§5.5)."""
        tb = lan_testbed()
        data = 2 << 30
        t = tb.upload_time(data, [data / 3] * 4, k=3)
        speed = data / 1e6 / t
        assert speed == pytest.approx(110 * 3 / 4, rel=0.05)

    def test_duplicate_upload_is_compute_bound_on_lan(self):
        tb = lan_testbed()
        data = 2 << 30
        t = tb.upload_time(data, [0.0] * 4, k=3)
        speed = data / 1e6 / t
        assert speed == pytest.approx(tb.model.chunk_encode_mbps, rel=0.05)

    def test_duplicate_faster_than_unique_everywhere(self):
        data = 1 << 30
        for tb in (lan_testbed(), cloud_testbed()):
            t_uniq = tb.upload_time(data, [data / 3] * 4, k=3)
            t_dup = tb.upload_time(data, [0.0] * 4, k=3)
            assert t_dup < t_uniq

    def test_cloud_dup_gap_larger_than_lan(self):
        """Figure 7a: the dup/uniq ratio is bigger on the cloud testbed."""
        data = 1 << 30

        def ratio(tb):
            t_uniq = tb.upload_time(data, [data / 3] * 4, k=3)
            t_dup = tb.upload_time(data, [0.0] * 4, k=3)
            return t_uniq / t_dup

        assert ratio(cloud_testbed()) > ratio(lan_testbed())

    def test_download_under_link_speed(self):
        tb = lan_testbed()
        data = 2 << 30
        t = tb.download_time(data, {1: data / 3, 2: data / 3, 3: data / 3})
        speed = data / 1e6 / t
        assert speed < 110.0
        assert speed > 90.0
