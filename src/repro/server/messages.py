"""Client ⇄ server message types (the "comm module" payloads, §4.1).

The reproduction keeps transport as direct method calls, but the payloads
are explicit value objects so the protocol is inspectable and the simulated
network can charge their sizes.  All messages are byte-serialisable.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ProtocolError

__all__ = ["ShareMeta", "ShareUpload", "RecipeEntry", "FileManifest"]

_FP_SIZE = 32


@dataclass(frozen=True)
class ShareMeta:
    """Share metadata collected by the client after encoding (§4.3).

    Attributes mirror the paper's list: share size, fingerprint (client
    domain, for intra-user dedup), sequence number of the input secret, and
    the secret size (to strip padding when decoding).
    """

    fingerprint: bytes
    share_size: int
    secret_seq: int
    secret_size: int

    def pack(self) -> bytes:
        if len(self.fingerprint) != _FP_SIZE:
            raise ProtocolError(f"fingerprint must be {_FP_SIZE} bytes")
        return self.fingerprint + struct.pack(
            ">IQI", self.share_size, self.secret_seq, self.secret_size
        )

    @classmethod
    def unpack(cls, blob: bytes) -> "ShareMeta":
        if len(blob) != cls.packed_size():
            raise ProtocolError(f"bad ShareMeta size {len(blob)}")
        share_size, seq, secret_size = struct.unpack(">IQI", blob[_FP_SIZE:])
        return cls(blob[:_FP_SIZE], share_size, seq, secret_size)

    @staticmethod
    def packed_size() -> int:
        return _FP_SIZE + 16


@dataclass(frozen=True)
class ShareUpload:
    """One unique share travelling client → server."""

    meta: ShareMeta
    data: bytes

    @property
    def wire_size(self) -> int:
        return ShareMeta.packed_size() + len(self.data)


@dataclass(frozen=True)
class RecipeEntry:
    """One secret's entry in a file recipe (§4.4).

    The server-side recipe stores, per secret, the *server-domain*
    fingerprint used to locate the share, plus the secret size needed to
    decode it.
    """

    fingerprint: bytes
    secret_size: int

    def pack(self) -> bytes:
        return self.fingerprint + struct.pack(">I", self.secret_size)

    @classmethod
    def unpack(cls, blob: bytes) -> "RecipeEntry":
        if len(blob) != _FP_SIZE + 4:
            raise ProtocolError(f"bad RecipeEntry size {len(blob)}")
        return cls(blob[:_FP_SIZE], struct.unpack(">I", blob[_FP_SIZE:])[0])

    @staticmethod
    def packed_size() -> int:
        return _FP_SIZE + 4


@dataclass(frozen=True)
class FileManifest:
    """File metadata sent at the end of an upload (§4.3).

    ``path_share`` is this server's secret-sharing share of the full
    pathname (sensitive metadata is dispersed, not replicated); ``lookup_key``
    is the hash of (user, pathname) that keys the file index; ``file_size``
    and ``secret_count`` are non-sensitive and replicated.
    """

    lookup_key: bytes
    path_share: bytes
    file_size: int
    secret_count: int

    def pack(self) -> bytes:
        return (
            struct.pack(">I", len(self.lookup_key))
            + self.lookup_key
            + struct.pack(">I", len(self.path_share))
            + self.path_share
            + struct.pack(">QQ", self.file_size, self.secret_count)
        )

    @classmethod
    def unpack(cls, blob: bytes) -> "FileManifest":
        try:
            (key_len,) = struct.unpack_from(">I", blob, 0)
            key = blob[4 : 4 + key_len]
            pos = 4 + key_len
            (share_len,) = struct.unpack_from(">I", blob, pos)
            pos += 4
            share = blob[pos : pos + share_len]
            pos += share_len
            file_size, count = struct.unpack_from(">QQ", blob, pos)
        except struct.error as exc:
            raise ProtocolError(f"bad FileManifest: {exc}") from exc
        return cls(key, share, file_size, count)
