"""Container format and the ContainerManager (§4.5)."""

import pytest

from repro.errors import NotFoundError, ParameterError, StorageError
from repro.storage.backend import MemoryBackend
from repro.storage.container import (
    CONTAINER_CAP,
    Container,
    ContainerManager,
    ContainerRef,
)
from repro.storage.container import KIND_RECIPE, KIND_SHARE


class TestContainerFormat:
    def test_serialise_roundtrip(self):
        container = Container(KIND_SHARE)
        container.add(b"fp1", b"payload-one")
        container.add(b"fp2", b"payload-two" * 100)
        restored = Container.deserialize(container.serialize())
        assert restored.kind == KIND_SHARE
        assert restored.entries == container.entries

    def test_empty_container(self):
        container = Container(KIND_RECIPE)
        restored = Container.deserialize(container.serialize())
        assert restored.entries == []

    def test_bad_kind_raises(self):
        with pytest.raises(ParameterError):
            Container(99)

    def test_truncated_blob_raises(self):
        container = Container(KIND_SHARE)
        container.add(b"k", b"v" * 50)
        blob = container.serialize()
        with pytest.raises(StorageError):
            Container.deserialize(blob[:-10])
        with pytest.raises(StorageError):
            Container.deserialize(b"xx")

    def test_bad_magic_raises(self):
        with pytest.raises(StorageError):
            Container.deserialize(b"\x00" * 64)

    def test_full_flag(self):
        container = Container(KIND_SHARE)
        container.add(b"k", b"x" * CONTAINER_CAP)
        assert container.full


class TestContainerRef:
    def test_pack_roundtrip(self):
        ref = ContainerRef(container_id="container-0000000042", entry_index=7)
        assert ContainerRef.unpack(ref.pack()) == ref


class TestContainerManager:
    @pytest.fixture
    def manager(self):
        return ContainerManager(MemoryBackend())

    def test_append_and_read(self, manager):
        ref = manager.append("alice", KIND_SHARE, b"fp", b"share-bytes")
        manager.flush()
        key, payload = manager.read_entry(ref)
        assert key == b"fp"
        assert payload == b"share-bytes"

    def test_unflushed_entries_readable(self, manager):
        """Entries still in write buffers must be readable (restore can
        race a backup session)."""
        ref = manager.append("alice", KIND_SHARE, b"fp", b"pending")
        _, payload = manager.read_entry(ref)
        assert payload == b"pending"

    def test_container_seals_at_cap(self, manager):
        chunk = b"x" * (1 << 20)
        refs = [manager.append("u", KIND_SHARE, f"fp{i}".encode(), chunk) for i in range(5)]
        # 5 MB of payload must have sealed at least one 4 MB container.
        assert manager.backend.list_keys("container-")
        manager.flush()
        for ref in refs:
            _, payload = manager.read_entry(ref)
            assert payload == chunk

    def test_per_user_isolation(self, manager):
        """Containers contain data of a single user (§4.5 locality)."""
        ra = manager.append("alice", KIND_SHARE, b"a", b"1")
        rb = manager.append("bob", KIND_SHARE, b"b", b"2")
        assert ra.container_id != rb.container_id

    def test_share_and_recipe_buffers_separate(self, manager):
        rs = manager.append("u", KIND_SHARE, b"s", b"1")
        rr = manager.append("u", KIND_RECIPE, b"r", b"2")
        assert rs.container_id != rr.container_id

    def test_oversized_recipe_gets_own_container(self, manager):
        big = b"r" * (CONTAINER_CAP + 100)
        ref = manager.append("u", KIND_RECIPE, b"big", big)
        assert ref.entry_index == 0
        _, payload = manager.read_entry(ref)
        assert payload == big

    def test_bad_kind_raises(self, manager):
        with pytest.raises(ParameterError):
            manager.append("u", 42, b"k", b"v")

    def test_missing_container_raises(self, manager):
        with pytest.raises(NotFoundError):
            manager.read_entry(ContainerRef("container-9999999999", 0))

    def test_missing_entry_raises(self, manager):
        ref = manager.append("u", KIND_SHARE, b"k", b"v")
        manager.flush()
        with pytest.raises(NotFoundError):
            manager.read_entry(ContainerRef(ref.container_id, 99))

    def test_cache_hits_on_reread(self, manager):
        ref = manager.append("u", KIND_SHARE, b"k", b"v")
        manager.flush()
        manager.read_entry(ref)
        hits_before, _ = manager.cache_stats
        manager.read_entry(ref)
        hits_after, _ = manager.cache_stats
        assert hits_after > hits_before

    def test_ids_restored_after_reopen(self):
        backend = MemoryBackend()
        m1 = ContainerManager(backend)
        m1.append("u", KIND_SHARE, b"k", b"v")
        m1.flush()
        m2 = ContainerManager(backend)
        ref2 = m2.append("u", KIND_SHARE, b"k2", b"v2")
        m2.flush()
        ids = backend.list_keys("container-")
        assert len(ids) == len(set(ids)) == 2
        assert ref2.container_id in ids


class TestRangedReads:
    """The offset footer and the ranged entry-read path."""

    def _sealed(self, entries):
        backend = MemoryBackend()
        manager = ContainerManager(backend)
        refs = [manager.append("u", KIND_SHARE, k, v) for k, v in entries]
        manager.flush()
        return backend, refs

    def test_ranged_read_matches_whole_read_cold(self):
        entries = [(f"k{i}".encode(), bytes([i]) * (50 + i)) for i in range(12)]
        backend, refs = self._sealed(entries)
        cold = ContainerManager(backend)  # empty cache: ranged backend reads
        for ref, (key, payload) in zip(refs, entries):
            assert cold.read_entry_ranged(ref) == (key, payload)
            assert cold.read_entry_ranged(ref) == cold.read_entry(ref)

    def test_ranged_read_never_fetches_whole_object_cold(self):
        entries = [(f"k{i}".encode(), b"x" * 5000) for i in range(8)]
        backend, refs = self._sealed(entries)
        cold = ContainerManager(backend)
        before = backend.bytes_read
        cold.read_entry_ranged(refs[3])
        # Trailer + offset table + one entry — far below the full blob.
        assert backend.bytes_read - before < 6000
        assert backend.object_size(refs[3].container_id) > 40_000

    def test_legacy_footerless_container_still_readable(self):
        """Containers written before the footer existed fall back to the
        whole-container path instead of failing the restore."""
        legacy = Container(KIND_SHARE)
        legacy.add(b"old-key", b"old-payload" * 10)
        blob = legacy.serialize()
        stripped = blob[: 9 + 8 + len(b"old-key") + len(b"old-payload" * 10)]
        assert Container.deserialize(stripped).entries == legacy.entries
        backend = MemoryBackend()
        backend.put_object("container-0000000000", stripped)
        manager = ContainerManager(backend)
        ref = ContainerRef("container-0000000000", 0)
        assert manager.read_entry_ranged(ref) == (b"old-key", b"old-payload" * 10)
        # Warm path (blob now cached) agrees.
        assert manager.read_entry_ranged(ref) == (b"old-key", b"old-payload" * 10)

    def test_corrupt_footer_raises_not_misreads(self):
        entries = [(b"kk", b"v" * 100)]
        backend, refs = self._sealed(entries)
        cid = refs[0].container_id
        blob = bytearray(backend.get_object(cid))
        blob[-6] ^= 0xFF  # flip inside the trailer's count field
        backend.put_object(cid, bytes(blob))
        cold = ContainerManager(backend)
        with pytest.raises(StorageError):
            cold.read_entry_ranged(refs[0])

    def test_truncated_footer_rejected_by_deserialize(self):
        container = Container(KIND_SHARE)
        container.add(b"k", b"v" * 50)
        blob = container.serialize()
        with pytest.raises(StorageError):
            Container.deserialize(blob[:-3])
