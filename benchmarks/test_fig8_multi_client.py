"""Figure 8 — aggregate upload speed of multiple concurrent clients (LAN).

Paper: unique-data aggregate reaches 282 MB/s at 8 clients (limited by
server NIC + disk writes; 310 MB/s without disk I/O ≈ the aggregate
Ethernet of k = 3 servers); duplicate-data aggregate reaches 572 MB/s with
a knee at 4 clients where server CPU saturates.

The **socket leg** exercises the deployment shape the paper actually
measures: a real wall-clock backup through :class:`RemoteServerProxy` over
loopback TCP (frames, serialisation, kernel round-trips) against the same
backup via in-process calls.  The socket/in-process throughput *ratio* is
machine-relative, so it travels to CI as a tracked baseline while raw
MB/s does not.
"""

import time

from conftest import BENCH_CHUNKER, emit, emit_metrics, scaled

from repro.bench.reporting import format_table
from repro.bench.transfer import aggregate_upload_speeds
from repro.chunking import create_chunker
from repro.client.client import CDStoreClient
from repro.cloud.network import MB, Link
from repro.cloud.provider import CloudProvider
from repro.cloud.testbed import lan_testbed
from repro.crypto.drbg import DRBG
from repro.net import CDStoreTCPServer, RemoteServerProxy
from repro.server.server import CDStoreServer


def test_fig8(benchmark):
    rows = benchmark(aggregate_upload_speeds, lan_testbed())

    table = format_table(
        ["clients", "aggregate uniq MB/s", "aggregate dup MB/s"],
        [[r.clients, r.unique_mbps, r.duplicate_mbps] for r in rows],
        title="Figure 8: aggregate upload speeds vs #clients, LAN, (n, k)=(4, 3)",
    )
    emit("fig8", table)

    uniq = {r.clients: r.unique_mbps for r in rows}
    dup = {r.clients: r.duplicate_mbps for r in rows}
    # Paper magnitudes at 8 clients (±20%).
    assert abs(uniq[8] - 282) / 282 < 0.20
    assert abs(dup[8] - 572) / 572 < 0.20
    # Knee: duplicate curve saturates at ~4 clients.
    assert dup[4] > 0.95 * dup[8]
    assert dup[2] < 0.7 * dup[8]
    # Unique curve saturates on server NIC/disk well below linear scaling.
    assert uniq[8] < 0.5 * 8 * uniq[1]


def _fresh_servers(n: int = 4) -> list[CDStoreServer]:
    return [
        CDStoreServer(
            server_id=i,
            cloud=CloudProvider(f"cloud-{i}", Link(1000.0), Link(1000.0)),
        )
        for i in range(n)
    ]


def _timed_upload(servers, data: bytes) -> float:
    """Wall-clock MB/s of one unique-data backup against ``servers``."""
    client = CDStoreClient(
        user_id="bench",
        servers=list(servers),
        k=3,
        salt=b"fig8",
        chunker=create_chunker(BENCH_CHUNKER),
        pipeline_depth=4,
    )
    try:
        started = time.perf_counter()
        client.upload("/fig8", data)
        client.flush()
        elapsed = time.perf_counter() - started
    finally:
        client.close()
    return len(data) / MB / elapsed


def test_fig8_socket_leg():
    """Real-socket serving layer: loopback TCP vs in-process throughput.

    Both legs run the identical backup (same chunker leg, same streaming
    pipeline, fresh servers each) — the only difference is whether the
    comm engine's per-cloud workers call server methods or drive
    :class:`RemoteServerProxy` frames over loopback TCP.  Two rounds each,
    best-of taken, to damp scheduler noise at smoke scale.
    """
    data = DRBG("fig8-socket").random_bytes(scaled(8 << 20, floor=1 << 20))

    inproc_mbps = max(
        _timed_upload(_fresh_servers(), data) for _ in range(2)
    )

    socket_runs = []
    for _ in range(2):
        servers = _fresh_servers()
        tcps = [CDStoreTCPServer(server).start() for server in servers]
        proxies = [
            RemoteServerProxy(
                f"tcp://{t.address[0]}:{t.address[1]}", server_id=i
            )
            for i, t in enumerate(tcps)
        ]
        try:
            socket_runs.append(_timed_upload(proxies, data))
        finally:
            for proxy in proxies:
                proxy.close()
            for tcp in tcps:
                tcp.shutdown()
    socket_mbps = max(socket_runs)

    ratio = socket_mbps / inproc_mbps
    table = format_table(
        ["transport", "upload MB/s", "vs in-process"],
        [
            ["in-process", inproc_mbps, 1.0],
            ["loopback TCP", socket_mbps, ratio],
        ],
        title="Figure 8 (socket leg): one client, unique data, "
              f"{len(data) / MB:.0f} MB, (n, k)=(4, 3)",
    )
    emit("fig8_socket", table)
    emit_metrics({"fig8.socket_over_inproc_upload": ratio})

    # Frames + loopback round-trips tax throughput but must stay within
    # the same order of magnitude: the serving layer is a transport, not a
    # bottleneck.
    assert ratio > 0.2
    # Sanity: the socket leg actually moved the data.
    assert socket_mbps > 0
