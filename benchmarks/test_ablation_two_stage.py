"""Ablation — two-stage deduplication vs client-side global deduplication.

CDStore gives up some upload bandwidth relative to the naive client-side
*global* dedup (§3.3): a user whose data duplicates *another* user's must
still transfer it.  This ablation quantifies the bandwidth premium on the
VM workload (where cross-user duplication is huge) and pairs it with the
security outcome: the naive design leaks existence and ownership, the
two-stage design does not.  Storage is identical — inter-user dedup still
happens, just server-side.
"""

from conftest import emit

from repro.attacks import (
    NaiveGlobalDedupServer,
    run_confirmation_attack,
    run_ownership_attack,
)
from repro.bench.reporting import format_table
from repro.cloud.network import Link
from repro.cloud.provider import CloudProvider
from repro.server.server import CDStoreServer
from repro.workloads import VMWorkload


def _simulate(two_stage: bool, workload) -> tuple[int, int]:
    """Replay the trace; returns (transferred_bytes, stored_bytes).

    ``two_stage=False`` models client-side global dedup: a chunk is
    transferred only if *nobody* stored it yet.
    """
    user_seen: dict[str, set[bytes]] = {}
    global_seen: set[bytes] = set()
    transferred = stored = 0
    for snapshot in workload.all_snapshots():
        seen = user_seen.setdefault(snapshot.user, set())
        for chunk in snapshot.chunks:
            known_to_user = chunk.fingerprint in seen
            known_globally = chunk.fingerprint in global_seen
            seen.add(chunk.fingerprint)
            skip_transfer = known_to_user if two_stage else known_globally
            if skip_transfer:
                continue
            transferred += chunk.size
            if not known_globally:
                global_seen.add(chunk.fingerprint)
                stored += chunk.size
    return transferred, stored


def test_ablation_two_stage(benchmark):
    workload = VMWorkload(users=30, weeks=8, master_chunks=800)

    def run():
        return _simulate(True, workload), _simulate(False, workload)

    (ts_xfer, ts_store), (gl_xfer, gl_store) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    conf_naive = run_confirmation_attack(NaiveGlobalDedupServer(), b"victim" * 50)
    conf_cd = run_confirmation_attack(
        CDStoreServer(0, CloudProvider("c", Link(10), Link(10))), b"victim" * 50
    )
    own_naive = run_ownership_attack(NaiveGlobalDedupServer(), b"victim" * 50)
    own_cd = run_ownership_attack(
        CDStoreServer(0, CloudProvider("c", Link(10), Link(10))), b"victim" * 50
    )

    table = format_table(
        ["design", "transferred MB", "stored MB", "existence leak", "ownership leak"],
        [
            ["two-stage (CDStore)", ts_xfer / 1e6, ts_store / 1e6,
             conf_cd.succeeded, own_cd.succeeded],
            ["client-side global", gl_xfer / 1e6, gl_store / 1e6,
             conf_naive.succeeded, own_naive.succeeded],
        ],
        title="Ablation: two-stage vs global dedup (VM workload, 30 users x 8 weeks)",
    )
    emit("ablation_two_stage", table)

    # Identical storage; bandwidth premium is the price of side-channel
    # safety and is bounded (cross-user dups transfer once per user).
    assert ts_store == gl_store
    assert ts_xfer > gl_xfer
    # Security: both attacks succeed against the strawman, fail vs CDStore.
    assert conf_naive.succeeded and own_naive.succeeded
    assert not conf_cd.succeeded and not own_cd.succeeded
