"""Protocol message and index-entry codecs."""

import pytest

from repro.errors import ProtocolError
from repro.server.index import FileEntry, ShareEntry
from repro.server.messages import FileManifest, RecipeEntry, ShareMeta, ShareUpload
from repro.storage.container import ContainerRef

FP = bytes(range(32))


class TestShareMeta:
    def test_pack_roundtrip(self):
        meta = ShareMeta(fingerprint=FP, share_size=2731, secret_seq=42, secret_size=8192)
        assert ShareMeta.unpack(meta.pack()) == meta

    def test_packed_size(self):
        meta = ShareMeta(FP, 1, 2, 3)
        assert len(meta.pack()) == ShareMeta.packed_size()

    def test_bad_fingerprint_size(self):
        with pytest.raises(ProtocolError):
            ShareMeta(b"short", 1, 2, 3).pack()

    def test_bad_blob_size(self):
        with pytest.raises(ProtocolError):
            ShareMeta.unpack(b"x" * 3)


class TestShareUpload:
    def test_wire_size(self):
        upload = ShareUpload(meta=ShareMeta(FP, 4, 0, 4), data=b"abcd")
        assert upload.wire_size == ShareMeta.packed_size() + 4


class TestRecipeEntry:
    def test_pack_roundtrip(self):
        entry = RecipeEntry(fingerprint=FP, secret_size=12345)
        assert RecipeEntry.unpack(entry.pack()) == entry

    def test_bad_size(self):
        with pytest.raises(ProtocolError):
            RecipeEntry.unpack(b"short")


class TestFileManifest:
    def test_pack_roundtrip(self):
        manifest = FileManifest(
            lookup_key=b"k" * 32, path_share=b"encoded-path", file_size=10**9, secret_count=12
        )
        restored = FileManifest.unpack(manifest.pack())
        assert restored == manifest

    def test_empty_path_share(self):
        manifest = FileManifest(b"key", b"", 0, 0)
        assert FileManifest.unpack(manifest.pack()) == manifest

    def test_garbage_raises(self):
        with pytest.raises(ProtocolError):
            FileManifest.unpack(b"\x00")


class TestShareEntry:
    def test_pack_roundtrip_with_owners(self):
        entry = ShareEntry(
            ref=ContainerRef("container-0000000001", 5),
            share_size=2731,
            owners={"alice": 3, "bob": 1},
        )
        restored = ShareEntry.unpack(entry.pack())
        assert restored.ref == entry.ref
        assert restored.share_size == 2731
        assert restored.owners == {"alice": 3, "bob": 1}

    def test_owner_refcounting(self):
        entry = ShareEntry(ContainerRef("c", 0), 100)
        entry.add_owner("alice")
        entry.add_owner("alice")
        entry.add_owner("bob")
        assert entry.owners == {"alice": 2, "bob": 1}
        entry.drop_owner("alice")
        assert entry.owners == {"alice": 1, "bob": 1}
        entry.drop_owner("alice")
        entry.drop_owner("bob")
        assert entry.orphaned

    def test_drop_unknown_owner_is_noop(self):
        entry = ShareEntry(ContainerRef("c", 0), 100)
        entry.drop_owner("ghost")
        assert entry.orphaned

    def test_bad_blob_raises(self):
        with pytest.raises(ProtocolError):
            ShareEntry.unpack(b"xx")


class TestFileEntry:
    def test_pack_roundtrip(self):
        entry = FileEntry(
            recipe_ref=ContainerRef("container-0000000009", 2),
            path_share=b"\x01\x02\x03",
            file_size=5555,
            secret_count=17,
        )
        restored = FileEntry.unpack(entry.pack())
        assert restored.recipe_ref == entry.recipe_ref
        assert restored.path_share == entry.path_share
        assert restored.file_size == 5555
        assert restored.secret_count == 17

    def test_bad_blob_raises(self):
        with pytest.raises(ProtocolError):
            FileEntry.unpack(b"")
