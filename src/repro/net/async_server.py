"""Asyncio front-end serving one :class:`CDStoreServer` to thousands of clients.

:class:`AsyncCDStoreTCPServer` is the high-fan-in counterpart of the
thread-per-connection :class:`~repro.net.server.CDStoreTCPServer`.  One
event-loop thread owns every socket: it reads frames, answers control
frames (PING/AUTH) inline, and dispatches API frames onto the existing
blocking, lock-disciplined storage stack through a **bounded**
``ThreadPoolExecutor``.  Connection count no longer buys a thread each —
ten thousand idle connections cost ten thousand socket objects, not ten
thousand stacks — while the storage stack keeps being driven by plain
threads exactly like in-process callers, so its locking discipline is
preserved, not re-implemented behind the loop.

Both front-ends answer frames through the same
:class:`~repro.net.dispatch.FrameDispatcher`; protocol behaviour (auth,
tenancy, rate limits, streamed fetches, typed errors) is identical.

Concurrency & fairness
----------------------

A v2 (mux) connection may have many requests in flight; v1 connections
are served strictly serially (the read loop awaits each job) because v1
correlation is by arrival order.  Admission control is two-tier:

* **per source** — at most ``source_inflight_cap`` requests in flight per
  authenticated tenant (or per connection in open mode), so one greedy
  client cannot occupy the whole executor;
* **global** — at most ``max_backlog`` requests queued-or-running across
  the server.

A request over either bound is *shed*, not queued: the client gets an
immediate typed :data:`~repro.net.wire.R_ERROR` frame carrying
:class:`~repro.errors.ServerOverloadedError` (which the comm engine
treats as a transient cloud outage — fail over or retry), and the
connection stays healthy.

Backpressure & slow readers
---------------------------

Worker replies enter a per-connection outbound queue capped at
``write_queue_cap`` bytes; a writer coroutine drains it through
``await drain()`` so socket backpressure propagates into the queue.  A
worker that finds the queue full blocks (bounding the server-side working
set of a streamed fetch, exactly like TCP backpressure does on the
threaded server) — but only for ``slow_reader_grace`` seconds.  A client
that stops reading past that grace is **evicted**: its connection is
aborted, releasing the worker, rather than letting one dead peer pin an
executor slot forever.

Error discipline matches the threaded server: a :class:`~repro.errors.
ReproError` is a typed in-band answer; any other exception is a server
bug and aborts the connection so the client runs its failover path.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ProtocolError, ReproError, ServerOverloadedError
from repro.net import wire
from repro.net.dispatch import ConnState, FrameDispatcher
from repro.obs.registry import REGISTRY
from repro.server.server import CDStoreServer, FETCH_BATCH_BYTES
from repro.tenants import TenantRegistry

__all__ = ["AsyncCDStoreTCPServer"]

logger = logging.getLogger(__name__)

# Front-end hot-path metrics (docs/OBSERVABILITY.md).  All carry a
# ``server`` label so co-located front-ends (a gateway plus its replicas
# in one process) stay distinguishable in one registry snapshot; the
# snapshot served by T_OBS_STATS is process-wide either way.
_CONNECTIONS = REGISTRY.gauge(
    "net_async_connections", "Open connections per async front-end"
)
_INFLIGHT = REGISTRY.gauge(
    "net_async_inflight", "API requests admitted and not yet finished"
)
_SHEDS = REGISTRY.counter(
    "net_async_sheds_total",
    "Work refused by admission control, by reason "
    "(connection_cap | backlog | source_inflight)",
)
_SLOW_READER_EVICTIONS = REGISTRY.counter(
    "net_async_slow_reader_evictions_total",
    "Connections aborted because the peer stopped draining replies",
)
_WRITE_QUEUE_BYTES = REGISTRY.gauge(
    "net_async_write_queue_bytes",
    "Bytes parked in per-connection outbound reply queues",
)


class AsyncCDStoreTCPServer:
    """Serve one CDStore server over TCP via an event loop + bounded executor.

    Parameters
    ----------
    server:
        The :class:`~repro.server.server.CDStoreServer` (or any object
        with its surface) answering the requests.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    frame_budget:
        Cap on one ``fetch_shares`` reply frame (see the threaded server).
    max_frame:
        Hard cap on *incoming* frame payloads (request flood guard).
    tenants:
        Optional :class:`~repro.tenants.TenantRegistry` (same semantics
        as the threaded server).
    executor_size:
        Worker threads actually driving the storage stack.  This — not
        the connection count — bounds storage-layer concurrency.
    max_connections:
        Accepted-connection cap; further connects are answered with one
        typed overload frame and closed.
    write_queue_cap:
        Per-connection outbound-queue byte cap (slow-reader bound).
    source_inflight_cap:
        Max in-flight requests per tenant (or per connection when open).
    max_backlog:
        Global in-flight request cap; defaults to ``8 * executor_size``.
    slow_reader_grace:
        Seconds a worker may wait on a full outbound queue before the
        connection is evicted.
    trace, span_ring, slow_threshold:
        Observability plumbing forwarded to the
        :class:`~repro.net.dispatch.FrameDispatcher`: whether to offer
        the v2 trace extension in PONG, the span ring capacity, and the
        slow-request log threshold in seconds (``None`` disables).
    """

    def __init__(
        self,
        server: CDStoreServer | None,
        host: str = "127.0.0.1",
        port: int = 0,
        frame_budget: int = FETCH_BATCH_BYTES,
        max_frame: int = wire.MAX_FRAME_BYTES,
        tenants: TenantRegistry | None = None,
        executor_size: int = 8,
        max_connections: int = 1000,
        write_queue_cap: int = 16 << 20,
        source_inflight_cap: int = 64,
        max_backlog: int | None = None,
        slow_reader_grace: float = 20.0,
        gateway=None,
        trace: bool = True,
        span_ring: int = 256,
        slow_threshold: float | None = 1.0,
    ) -> None:
        if executor_size < 1:
            raise ValueError(f"executor_size must be >= 1, got {executor_size}")
        if max_connections < 1:
            raise ValueError(f"max_connections must be >= 1, got {max_connections}")
        if write_queue_cap < 1:
            raise ValueError(f"write_queue_cap must be >= 1, got {write_queue_cap}")
        self._dispatcher = FrameDispatcher(
            server,
            frame_budget=frame_budget,
            tenants=tenants,
            gateway=gateway,
            trace=trace,
            span_ring=span_ring,
            slow_threshold=slow_threshold,
        )
        self.server = server
        self.gateway = gateway
        self.max_frame = max_frame
        self.executor_size = executor_size
        self.max_connections = max_connections
        self.write_queue_cap = write_queue_cap
        self.source_inflight_cap = source_inflight_cap
        self.max_backlog = max_backlog if max_backlog is not None else 8 * executor_size
        self.slow_reader_grace = slow_reader_grace
        self._host = host
        self._port = port
        self._address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._aserver: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._boot_error: BaseException | None = None
        self._stopped = threading.Event()
        # Loop-affine state (touched only on the event-loop thread, so no
        # lock): the live-connection set and the admission counters.
        self._connections: set[_AsyncConnection] = set()
        self._total_inflight = 0
        self._source_inflight: dict[object, int] = {}

    @property
    def server_id(self) -> int:
        """The backing server's id, or the gateway sentinel when this
        front-end terminates gateway traffic only (``server=None``)."""
        if self.server is not None:
            return self.server.server_id
        return wire.GATEWAY_SERVER_ID

    @property
    def frame_budget(self) -> int:
        return self._dispatcher.frame_budget

    @property
    def spans(self):
        """This front-end's span ring (the dispatcher's recorder)."""
        return self._dispatcher.spans

    @property
    def tenants(self) -> TenantRegistry | None:
        return self._dispatcher.tenants

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` after start)."""
        if self._address is not None:
            return self._address
        return (self._host, self._port)

    def start(self) -> "AsyncCDStoreTCPServer":
        """Spawn the event-loop thread, bind and listen (idempotent)."""
        if self._thread is not None:
            return self
        self._stopped.clear()
        self._boot_error = None
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop,
            args=(ready,),
            name=f"cdstore-async-{self.server_id}",
            daemon=True,
        )
        self._thread.start()
        ready.wait()
        if self._boot_error is not None:
            error, self._boot_error = self._boot_error, None
            self._thread.join(timeout=5)
            self._thread = None
            self._loop = None
            raise error
        return self

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`shutdown`."""
        self.start()
        self._stopped.wait()

    def shutdown(self) -> None:
        """Abort every connection, stop the loop, release the port."""
        self._stopped.set()
        thread, self._thread = self._thread, None
        if thread is None:
            return
        loop = self._loop
        if loop is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._loop = None
        self._aserver = None
        self._address = None

    def close(self) -> None:
        """Alias for :meth:`shutdown` — the uniform lifecycle verb."""
        self.shutdown()

    def __enter__(self) -> "AsyncCDStoreTCPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def _run_loop(self, ready: threading.Event) -> None:
        loop = self._loop
        assert loop is not None
        asyncio.set_event_loop(loop)
        try:
            self._aserver = loop.run_until_complete(
                asyncio.start_server(self._on_connect, self._host, self._port)
            )
        except OSError as exc:
            self._boot_error = exc
            loop.close()
            ready.set()
            return
        self._address = self._aserver.sockets[0].getsockname()[:2]
        self._executor = ThreadPoolExecutor(
            max_workers=self.executor_size,
            thread_name_prefix=f"cdstore-async-{self.server_id}",
        )
        ready.set()
        try:
            loop.run_forever()
        finally:
            self._aserver.close()
            for conn in list(self._connections):
                conn.abort()
            with contextlib.suppress(Exception):
                loop.run_until_complete(self._aserver.wait_closed())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                with contextlib.suppress(Exception):
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            loop.close()

    # ------------------------------------------------------------------
    # connection handling (event-loop thread)
    # ------------------------------------------------------------------
    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if len(self._connections) >= self.max_connections:
            _SHEDS.inc(reason="connection_cap", server=self.server_id)
            # Shed with a typed answer: the peer has not negotiated yet, so
            # v1 framing is the one framing it is guaranteed to understand.
            with contextlib.suppress(ConnectionError, OSError):
                writer.write(
                    wire.encode_frame(
                        wire.R_ERROR,
                        wire.encode_error(
                            ServerOverloadedError("connection limit reached")
                        ),
                    )
                )
                writer.close()
            return
        sock = writer.get_extra_info("socket")
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = _AsyncConnection(self, reader, writer)
        self._connections.add(conn)
        _CONNECTIONS.inc(server=self.server_id)
        try:
            await conn.run()
        finally:
            self._connections.discard(conn)
            _CONNECTIONS.dec(server=self.server_id)
            conn.abort()

    def _admit(self, conn: "_AsyncConnection", state: ConnState) -> object | None:
        """Admission control for one API request; returns the charge key.

        ``None`` means *shed*: either the global backlog or this source's
        in-flight budget is exhausted.  The key is the authenticated
        tenant when there is one, else the connection itself — so in open
        mode fairness is per connection.
        """
        key: object = state.tenant if state.tenant is not None else conn
        if self._total_inflight >= self.max_backlog:
            _SHEDS.inc(reason="backlog", server=self.server_id)
            return None
        if self._source_inflight.get(key, 0) >= self.source_inflight_cap:
            _SHEDS.inc(reason="source_inflight", server=self.server_id)
            return None
        self._total_inflight += 1
        self._source_inflight[key] = self._source_inflight.get(key, 0) + 1
        _INFLIGHT.inc(server=self.server_id)
        return key

    def _release(self, key: object) -> None:
        _INFLIGHT.dec(server=self.server_id)
        self._total_inflight -= 1
        left = self._source_inflight.get(key, 0) - 1
        if left <= 0:
            self._source_inflight.pop(key, None)
        else:
            self._source_inflight[key] = left

    # ------------------------------------------------------------------
    # request execution (executor worker threads)
    # ------------------------------------------------------------------
    def _run_job(
        self,
        conn: "_AsyncConnection",
        state: ConnState,
        frame_type: int,
        request_id: int,
        payload: bytes,
    ) -> None:
        try:
            for reply_type, reply in self._dispatcher.dispatch(
                state, frame_type, payload
            ):
                conn.send_from_worker(
                    wire.encode_frame_v(state.version, reply_type, request_id, reply)
                )
        except ReproError as exc:
            with contextlib.suppress(ConnectionError, OSError):
                conn.send_from_worker(
                    wire.encode_frame_v(
                        state.version,
                        wire.R_ERROR,
                        request_id,
                        wire.encode_error(exc),
                    )
                )
        except (ConnectionError, OSError):
            pass  # peer went away or was evicted mid-stream
        except Exception:  # noqa: BLE001 - server bug: drop the connection
            logger.exception(
                "request handler crashed on server %s; aborting connection",
                self.server_id,
            )
            conn.abort_threadsafe()


class _AsyncConnection:
    """One multiplexed client connection (owned by the event-loop thread).

    The outbound queue (``_out``/``_out_bytes``/``dead``) is the only
    state shared with executor workers and lives under ``_qlock`` — a
    plain mutex held for appends/pops only, never across I/O.  Everything
    else is loop-affine.
    """

    def __init__(
        self,
        srv: AsyncCDStoreTCPServer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.srv = srv
        self.reader = reader
        self.writer = writer
        self.state = ConnState()
        self._qlock = threading.Lock()
        self._out: deque[bytes] = deque()
        self._out_bytes = 0
        self.dead = False
        #: Worker-side flow control: set while the queue has room.
        self._space = threading.Event()
        self._space.set()
        #: Loop-side writer wakeup: set while the queue has frames.
        self._wake = asyncio.Event()
        #: v2 request ids currently in flight (loop-affine; reuse guard).
        self._inflight_ids: set[int] = set()
        self._jobs = 0

    # -------------------------- read / dispatch side ------------------
    async def run(self) -> None:
        loop = asyncio.get_running_loop()
        writer_task = loop.create_task(self._write_loop())
        state = self.state
        try:
            while True:
                try:
                    frame_type, request_id, payload = await self._read_frame(
                        state.version
                    )
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    return  # client went away between frames
                except ReproError as exc:
                    # Bad magic / oversized length: unrecoverable desync —
                    # answer typed, then hang up.
                    self._write_inline_error(state.version, 0, exc)
                    return
                try:
                    await self._handle_frame(state, frame_type, request_id, payload)
                except ReproError as exc:
                    # Framing-layer violation (e.g. request-id reuse):
                    # answer typed, then hang up — in-flight ids cannot be
                    # disambiguated any more.
                    self._write_inline_error(state.version, request_id, exc)
                    return
        finally:
            await self._finish(writer_task)

    async def _read_frame(self, version: int) -> tuple[int, int, bytes]:
        if version >= 2:
            header = wire.MUX_FRAME_HEADER
            raw = await self.reader.readexactly(header.size)
            magic, frame_type, request_id, length = header.unpack(raw)
        else:
            header = wire.FRAME_HEADER
            raw = await self.reader.readexactly(header.size)
            magic, frame_type, length = header.unpack(raw)
            request_id = 0
        if magic != wire._FRAME_MAGIC:
            raise ProtocolError(f"bad frame magic 0x{magic:04x} (desynchronised?)")
        if length > self.srv.max_frame:
            raise ProtocolError(
                f"incoming frame of {length} bytes exceeds the "
                f"{self.srv.max_frame}-byte cap"
            )
        payload = await self.reader.readexactly(length) if length else b""
        return frame_type, request_id, payload

    async def _handle_frame(
        self, state: ConnState, frame_type: int, request_id: int, payload: bytes
    ) -> None:
        srv = self.srv
        if frame_type in wire.CONTROL_FRAMES:
            # Control frames (version handshake, auth exchange) are cheap —
            # one HMAC at most — and mutate per-connection state, so they
            # run inline on the loop, serial with the read loop.
            try:
                for reply_type, reply in srv._dispatcher.dispatch(
                    state, frame_type, payload
                ):
                    self._write_inline(
                        wire.encode_frame_v(state.version, reply_type, request_id, reply)
                    )
            except ReproError as exc:
                self._write_inline_error(state.version, request_id, exc)
                return
            state.apply_negotiation()
            return
        if state.version >= 2:
            if request_id in self._inflight_ids:
                raise ProtocolError(
                    f"request id {request_id} reused while still in flight"
                )
            self._inflight_ids.add(request_id)
        key = srv._admit(self, state)
        if key is None:
            self._inflight_ids.discard(request_id)
            self._write_inline_error(
                state.version,
                request_id,
                ServerOverloadedError(
                    f"server {srv.server_id} shed request under load"
                ),
            )
            return
        self._jobs += 1
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            srv._executor, srv._run_job, self, state, frame_type, request_id, payload
        )
        future.add_done_callback(
            lambda f, key=key, rid=request_id: self._job_done(key, rid, f)
        )
        if state.version < 2:
            # v1 correlation is by order: strictly one request in flight.
            await asyncio.shield(future)

    def _job_done(self, key: object, request_id: int, future) -> None:
        self.srv._release(key)
        self._jobs -= 1
        self._inflight_ids.discard(request_id)
        if future.cancelled():
            return
        exc = future.exception()
        if exc is not None:  # _run_job catches everything; belt-and-braces
            logger.error(
                "request job failed on server %s",
                self.srv.server_id,
                exc_info=exc,
            )
            self.abort()

    # -------------------------- write side ----------------------------
    def _write_inline(self, buf: bytes) -> None:
        """Loop-thread write of one whole frame (control/error replies)."""
        if self.dead:
            return
        with contextlib.suppress(ConnectionError, OSError):
            self.writer.write(buf)

    def _write_inline_error(
        self, version: int, request_id: int, exc: ReproError
    ) -> None:
        self._write_inline(
            wire.encode_frame_v(version, wire.R_ERROR, request_id, wire.encode_error(exc))
        )

    async def _write_loop(self) -> None:
        """Drain the worker-reply queue through real socket backpressure."""
        while True:
            await self._wake.wait()
            while True:
                with self._qlock:
                    if self.dead:
                        return
                    if not self._out:
                        self._wake.clear()
                        break
                    buf = self._out.popleft()
                    self._out_bytes -= len(buf)
                    if self._out_bytes <= self.srv.write_queue_cap:
                        self._space.set()
                _WRITE_QUEUE_BYTES.add(-len(buf), server=self.srv.server_id)
                self.writer.write(buf)
                try:
                    await self.writer.drain()
                except (ConnectionError, OSError):
                    self.abort()
                    return

    def send_from_worker(self, buf: bytes) -> None:
        """Enqueue one whole frame from an executor worker (may block).

        Blocks while the queue is over ``write_queue_cap`` — that bound is
        what keeps a streamed fetch's server-side working set finite — and
        evicts the connection if the client gives no room for
        ``slow_reader_grace`` seconds.
        """
        srv = self.srv
        deadline = time.monotonic() + srv.slow_reader_grace
        while True:
            with self._qlock:
                if self.dead:
                    raise ConnectionResetError("connection closed")
                if self._out_bytes <= srv.write_queue_cap:
                    self._out.append(buf)
                    self._out_bytes += len(buf)
                    if self._out_bytes > srv.write_queue_cap:
                        self._space.clear()
                    queued = True
                else:
                    self._space.clear()
                    queued = False
            if queued:
                _WRITE_QUEUE_BYTES.add(len(buf), server=srv.server_id)
                self._call_soon(self._wake_writer)
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # Slow reader: evict rather than pin this worker forever.
                _SLOW_READER_EVICTIONS.inc(server=srv.server_id)
                self.abort_threadsafe()
                raise ConnectionResetError("slow reader evicted")
            self._space.wait(timeout=min(remaining, 0.1))

    def _wake_writer(self) -> None:
        if not self.dead:
            self._wake.set()

    def _call_soon(self, fn) -> None:
        loop = self.srv._loop
        if loop is None:
            return
        with contextlib.suppress(RuntimeError):
            loop.call_soon_threadsafe(fn)

    # -------------------------- teardown -------------------------------
    def abort(self) -> None:
        """Kill the connection now (loop thread): drop queue, reset socket."""
        with self._qlock:
            if self.dead:
                return
            self.dead = True
            cleared = self._out_bytes
            self._out.clear()
            self._out_bytes = 0
        if cleared:
            _WRITE_QUEUE_BYTES.add(-cleared, server=self.srv.server_id)
        self._space.set()  # release blocked workers (they observe dead)
        self._wake.set()  # release the writer coroutine
        transport = self.writer.transport
        if transport is not None:
            with contextlib.suppress(Exception):
                transport.abort()

    def abort_threadsafe(self) -> None:
        """Worker-thread-safe abort: mark dead now, reset on the loop."""
        with self._qlock:
            already = self.dead
            self.dead = True
            cleared = self._out_bytes
            self._out.clear()
            self._out_bytes = 0
        if cleared:
            _WRITE_QUEUE_BYTES.add(-cleared, server=self.srv.server_id)
        self._space.set()
        if not already:
            self._call_soon(self._finish_abort)

    def _finish_abort(self) -> None:
        self._wake.set()
        transport = self.writer.transport
        if transport is not None:
            with contextlib.suppress(Exception):
                transport.abort()

    async def _finish(self, writer_task: asyncio.Task) -> None:
        """Read loop is done: flush what in-flight jobs produced, then die."""
        try:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 1.0
            while loop.time() < deadline:
                with self._qlock:
                    drained = not self._out and self._jobs == 0
                    if self.dead:
                        break
                if drained:
                    break
                await asyncio.sleep(0.01)
            if not self.dead:
                with contextlib.suppress(
                    ConnectionError, OSError, asyncio.TimeoutError
                ):
                    await asyncio.wait_for(self.writer.drain(), timeout=0.5)
        finally:
            # Runs even when the connection task itself is cancelled at
            # shutdown mid-drain — the writer task must always be reaped
            # or the loop reports it as destroyed-while-pending.
            self.abort()
            writer_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await writer_task
