"""The networked serving layer (§4's real deployment shape).

These pieces turn the in-process client↔server calls into a distributed
system without changing a byte of what travels:

* :mod:`repro.net.wire` — the length-prefixed binary frame protocol
  covering the full :class:`~repro.server.server.CDStoreServer` surface,
  with typed error frames, hard frame-size caps and a version-negotiated
  request-id-tagged (mux) framing (see ``docs/PROTOCOL.md`` for the
  normative spec);
* :mod:`repro.net.dispatch` — the transport-agnostic frame dispatcher
  both front-ends share: auth handshake, tenancy scoping, rate limits
  and the request→reply-frame mapping live here exactly once;
* :mod:`repro.net.server` — the thread-per-connection TCP front-end,
  the right trade at tens of connections;
* :mod:`repro.net.async_server` — the event-loop front-end multiplexing
  thousands of connections into a bounded executor, with per-tenant
  admission control and slow-reader eviction;
* :mod:`repro.net.client` — :class:`~repro.net.client.RemoteServerProxy`,
  a reconnecting stand-in that duck-types the server surface so the comm
  engine, client and system treat ``tcp://host:port`` like any other
  cloud; in mux mode it shares one socket between concurrent requests
  and pipelines upload acks.
"""

from repro.net.async_server import AsyncCDStoreTCPServer
from repro.net.client import RemoteCloud, RemoteServerProxy
from repro.net.server import CDStoreTCPServer

__all__ = [
    "AsyncCDStoreTCPServer",
    "CDStoreTCPServer",
    "RemoteCloud",
    "RemoteServerProxy",
]
