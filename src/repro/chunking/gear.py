"""FastCDC-style content-defined chunking with a gear rolling hash.

Gear hashing (Xia et al., USENIX ATC'16) replaces the Rabin fingerprint's
table-per-window-offset polynomial arithmetic with one table lookup and one
shift per byte:

    h' = (h << 1) ^ GEAR[b]        (carry-less gear; GEAR is a fixed
                                    256-entry table of random words)

Shifting ages a byte out of the hash after ``word width`` steps, so the
recurrence *is* the rolling window — no explicit "pop" term.  On top of the
hash this module implements the two FastCDC ingredients that matter for
throughput and chunk-size shape:

* **cut-point skipping** — no boundary is evaluated within ``min_size`` of
  the previous cut, so ~``min_size/avg_size`` of all positions are never
  inspected; and
* **normalized chunking** — positions before ``avg_size`` are judged with a
  *harder* mask (``log2(avg) + norm`` bits) and positions after it with an
  *easier* one (``log2(avg) - norm`` bits), concentrating the chunk-size
  distribution around the average instead of the open-ended exponential a
  single mask produces.

Vectorised two-level scan kernel
--------------------------------

The deviation from the C-oriented original: scanning byte-at-a-time is
exactly what pure Python cannot afford, so the kernel evaluates all
positions with numpy gathers, like the vectorised Rabin path — but much
cheaper.  Because the gear recurrence is carry-less (XOR, not the
original's addition), bit ``p`` of the hash only sees bytes at distances
``<= p``: the mask bits live in the low 16 bits of the word, so the masked
decision depends on just the trailing :data:`GEAR_WINDOW` = 16 bytes, and
AND distributes over XOR, so pair tables can be pre-masked to single
bytes.  The scan then runs in two levels:

1. **dense prescreen** — the low hash byte (a function of the trailing 8
   bytes only) is computed for every position with 4 byte-pair-table
   gathers of ``uint8`` entries — an order of magnitude less table traffic
   than Rabin's 24 ``uint64`` gathers; positions whose low byte misses the
   easy mask (all but ~2^-min(8, mask bits)) are discarded;
2. **sparse confirm** — only surviving candidates (well under 1 %) gather
   the high hash byte from all 8 pair tables and test the full masks.

A byte-at-a-time rolling implementation (:meth:`GearChunker.rolling_hashes`)
is kept as the reference; property tests pin the kernel to it.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Iterator

import numpy as np

from repro.chunking.base import Chunk, Chunker
from repro.crypto.drbg import DRBG
from repro.errors import ParameterError

__all__ = ["GEAR_WINDOW", "GearChunker"]

#: Bytes of context behind every masked boundary decision.  Fixed by the
#: kernel layout: mask bits occupy the low 16 hash bits, and a byte at
#: distance ``d`` (shifted left ``d`` times) cannot reach bit ``p < d``.
GEAR_WINDOW = 16

_U64_MASK = (1 << 64) - 1


@lru_cache(maxsize=1)
def _gear_table() -> np.ndarray:
    """The fixed 256-entry random gear table (deterministic seed).

    Every chunker instance shares it; determinism across processes and
    versions is what lets two clients deduplicate against each other.
    """
    raw = DRBG("repro/gear-table-v1").random_bytes(256 * 8)
    return np.frombuffer(raw, dtype=np.uint64).copy()


@lru_cache(maxsize=1)
def _pair_tables() -> tuple[tuple[np.ndarray, ...], tuple[np.ndarray, ...]]:
    """Pre-masked byte-pair gather tables ``(low, high)``.

    ``high[j][b1*256 + b2]`` holds bits 8-15 of
    ``(GEAR[b1] << d1) ^ (GEAR[b2] << d0)`` for the pair of window offsets
    with shifts ``(d1, d0)``; ``low`` holds bits 0-7 and exists only for
    the trailing 8 bytes (larger shifts cannot reach the low byte).  All
    entries are ``uint8``: 12 tables x 64 Ki = 768 KB, L2-resident.
    """
    gear = _gear_table()
    low: list[np.ndarray] = []
    high: list[np.ndarray] = []
    for j in range(0, GEAR_WINDOW, 2):
        d1 = np.uint64(GEAR_WINDOW - 1 - j)
        d0 = np.uint64(GEAR_WINDOW - 2 - j)
        pair = ((gear << d1)[:, None] ^ (gear << d0)[None, :]).reshape(-1)
        high.append(((pair >> np.uint64(8)) & np.uint64(0xFF)).astype(np.uint8))
        if int(d1) < 8:
            low.append((pair & np.uint64(0xFF)).astype(np.uint8))
    return tuple(low), tuple(high)


class GearChunker(Chunker):
    """FastCDC-style chunker: gear hash + normalized masks + min-size skip.

    Parameters
    ----------
    avg_size:
        Target average chunk size; must be a power of two between 2^5 and
        2^14 (its log2 sets the mask widths; the 16-bit kernel caps the
        hard mask at 16 bits).  Default 8 KB (§4.2).
    min_size, max_size:
        Hard bounds on chunk sizes.  Defaults 2 KB / 16 KB (§4.2).
    norm:
        Normalization level: the hard/easy masks use ``log2(avg) ± norm``
        bits.  ``0`` degenerates to single-mask gear CDC; the FastCDC
        paper's NC2 (default) is ``2``.
    """

    def __init__(
        self,
        avg_size: int = 8192,
        min_size: int = 2048,
        max_size: int = 16384,
        norm: int = 2,
    ) -> None:
        if avg_size & (avg_size - 1) or avg_size <= 0:
            raise ParameterError(f"avg_size must be a power of two, got {avg_size}")
        if not 0 < min_size <= avg_size <= max_size:
            raise ParameterError(
                f"require 0 < min <= avg <= max, got ({min_size}, {avg_size}, {max_size})"
            )
        if min_size < GEAR_WINDOW:
            raise ParameterError(
                f"min_size {min_size} must cover the gear window {GEAR_WINDOW}"
            )
        if norm < 0:
            raise ParameterError(f"norm must be >= 0, got {norm}")
        bits = avg_size.bit_length() - 1
        if bits - norm < 1 or bits + norm > 16:
            raise ParameterError(
                f"avg_size 2^{bits} with norm {norm} needs mask widths "
                f"{bits - norm}..{bits + norm}; the 16-bit kernel supports 1..16"
            )
        self.avg_size = avg_size
        self.min_size = min_size
        self.max_size = max_size
        self.norm = norm
        #: Hard mask (more bits, harder to match) judges positions before
        #: ``avg_size``; easy mask judges the rest.  Nested low-bit masks:
        #: a hard-mask match is always an easy-mask match too.
        self.mask_hard = np.uint16((1 << (bits + norm)) - 1)
        self.mask_easy = np.uint16((1 << (bits - norm)) - 1)
        #: Prescreen mask: the easy mask's low byte.  Both full masks imply
        #: it, so the dense pass can discard on the low hash byte alone.
        self._pre_mask = np.uint8(int(self.mask_easy) & 0xFF)

    # ------------------------------------------------------------------
    # hash computation
    # ------------------------------------------------------------------
    def rolling_hashes(self, data: bytes) -> np.ndarray:
        """Reference gear recurrence: the hash after each consumed byte.

        Entry ``i`` is the full 64-bit gear hash of ``data[: i + 1]``
        (``h = 0`` before the first byte).  Kept as executable
        documentation and as the anchor for the property tests that
        certify the vectorised kernel: for ``i >= GEAR_WINDOW - 1`` the
        low 16 bits equal :meth:`window_hashes` entry ``i - GEAR_WINDOW + 1``.
        """
        gear = _gear_table()
        out = np.zeros(len(data), dtype=np.uint64)
        h = 0
        for i, byte in enumerate(data):
            h = ((h << 1) ^ int(gear[byte])) & _U64_MASK
            out[i] = h
        return out

    def window_hashes(self, data: bytes) -> np.ndarray:
        """Dense low-16-bit gear hashes of every complete window.

        Entry ``i`` covers ``data[i : i + GEAR_WINDOW]``; the result has
        ``len(data) - GEAR_WINDOW + 1`` entries.  This is the slow-but-
        simple rendering of the kernel (every table gathered densely),
        used by tests to pin the two-level fast path.
        """
        low_tabs, high_tabs = _pair_tables()
        buf = np.frombuffer(data, dtype=np.uint8)
        count = buf.size - GEAR_WINDOW + 1
        if count <= 0:
            return np.zeros(0, dtype=np.uint16)
        low = np.zeros(count, dtype=np.uint8)
        high = np.zeros(count, dtype=np.uint8)
        idx = np.empty(count, dtype=np.uint16)
        for pair, table in enumerate(high_tabs):
            j = 2 * pair
            np.left_shift(buf[j : j + count].astype(np.uint16), 8, out=idx)
            np.bitwise_or(idx, buf[j + 1 : j + 1 + count], out=idx)
            np.bitwise_xor(high, table[idx], out=high)
            if j >= 8:
                np.bitwise_xor(low, low_tabs[(j - 8) // 2][idx], out=low)
        return (high.astype(np.uint16) << np.uint16(8)) | low

    def _scan(self, data: bytes) -> tuple[np.ndarray, np.ndarray]:
        """Candidate cut positions ``(hard_cuts, easy_cuts)`` of ``data``.

        The two-level kernel: a dense uint8 prescreen over the trailing-8-
        byte low hash, then the full 16-bit hash only at prescreen
        survivors.  Cut position ``c`` means a boundary after byte
        ``c - 1`` (window ``[c - GEAR_WINDOW, c)`` matched).
        """
        low_tabs, high_tabs = _pair_tables()
        buf = np.frombuffer(data, dtype=np.uint8)
        count = buf.size - GEAR_WINDOW + 1
        empty = np.zeros(0, dtype=np.int64)
        if count <= 0:
            return empty, empty
        low = np.zeros(count, dtype=np.uint8)
        idx = np.empty(count, dtype=np.uint16)
        for pair, table in enumerate(low_tabs):
            j = 8 + 2 * pair
            np.left_shift(buf[j : j + count].astype(np.uint16), 8, out=idx)
            np.bitwise_or(idx, buf[j + 1 : j + 1 + count], out=idx)
            np.bitwise_xor(low, table[idx], out=low)
        cand = np.nonzero((low & self._pre_mask) == 0)[0]
        if cand.size == 0:
            return empty, empty
        high = np.zeros(cand.size, dtype=np.uint8)
        for pair, table in enumerate(high_tabs):
            j = 2 * pair
            sparse = (buf[j + cand].astype(np.uint16) << np.uint16(8)) | buf[
                j + 1 + cand
            ]
            high ^= table[sparse]
        full = (high.astype(np.uint16) << np.uint16(8)) | low[cand]
        cuts = cand + GEAR_WINDOW
        hard = cuts[(full & self.mask_hard) == 0]
        easy = cuts[(full & self.mask_easy) == 0]
        return hard.astype(np.int64), easy.astype(np.int64)

    # ------------------------------------------------------------------
    # chunking
    # ------------------------------------------------------------------
    def _next_cut(
        self, hard: np.ndarray, easy: np.ndarray, start: int, size: int
    ) -> int:
        """The cut ending the chunk that starts at ``start``.

        FastCDC schedule: skip ``min_size`` outright; judge positions up
        to ``start + avg_size`` (the normalization point, inclusive) with
        the hard mask, later ones with the easy mask; give up at
        ``start + max_size`` (or EOF).
        """
        if size - start <= self.min_size:
            return size
        hi = min(start + self.max_size, size)
        hi_hard = min(start + self.avg_size, hi)
        i = int(np.searchsorted(hard, start + self.min_size, side="left"))
        if i < hard.size and int(hard[i]) <= hi_hard:
            return int(hard[i])
        j = int(np.searchsorted(easy, max(start + self.min_size, hi_hard), side="left"))
        if j < easy.size and int(easy[j]) <= hi:
            return int(easy[j])
        return hi

    def chunk_bytes(self, data: bytes) -> Iterator[Chunk]:
        if not data:
            return
        hard, easy = self._scan(data)
        start = 0
        seq = 0
        size = len(data)
        while start < size:
            cut = self._next_cut(hard, easy, start, size)
            yield Chunk(data=data[start:cut], offset=start, seq=seq)
            start = cut
            seq += 1

    def chunk_stream(self, blocks: Iterable[bytes]) -> Iterator[Chunk]:
        """True streaming: buffer at most a few ``max_size`` of carry.

        A chunk starting at ``s`` is fully determined once ``max_size``
        bytes beyond ``s`` are buffered (every boundary decision looks at
        most ``max_size`` ahead and ``GEAR_WINDOW`` behind, and
        ``min_size >= GEAR_WINDOW`` keeps the look-behind inside the
        chunk), so boundaries are bit-identical to :meth:`chunk_bytes` of
        the concatenated stream regardless of how it is sliced into
        blocks.
        """
        buf = bytearray()
        offset = 0
        seq = 0
        for block in blocks:
            if not block:
                continue
            buf += block
            # Scan in batches so the rescanned carry (< max_size) is
            # amortised over several emitted chunks.
            if len(buf) < 4 * self.max_size:
                continue
            data = bytes(buf)
            hard, easy = self._scan(data)
            start = 0
            while len(data) - start >= self.max_size:
                cut = self._next_cut(hard, easy, start, len(data))
                yield Chunk(data=data[start:cut], offset=offset, seq=seq)
                offset += cut - start
                seq += 1
                start = cut
            del buf[:start]
        data = bytes(buf)
        hard, easy = self._scan(data)
        start = 0
        while start < len(data):
            cut = self._next_cut(hard, easy, start, len(data))
            yield Chunk(data=data[start:cut], offset=offset, seq=seq)
            offset += cut - start
            seq += 1
            start = cut
