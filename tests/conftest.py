"""Shared fixtures for the CDStore reproduction test suite."""

from __future__ import annotations

import pytest

from repro.chunking.fixed import FixedChunker
from repro.crypto.drbg import DRBG
from repro.system.cdstore import CDStoreSystem


@pytest.fixture
def drbg() -> DRBG:
    """A deterministic RNG; each test gets the same stream."""
    return DRBG("test-fixture")


@pytest.fixture
def small_system() -> CDStoreSystem:
    """A (4, 3) in-memory CDStore deployment with fast fixed chunking."""
    return CDStoreSystem(n=4, k=3, salt=b"test-org")


@pytest.fixture
def fixed_chunker() -> FixedChunker:
    return FixedChunker(4096)


def make_data(size: int, seed: str = "data") -> bytes:
    """Deterministic pseudo-random payload for tests."""
    return DRBG(seed).random_bytes(size)
