"""Convergent-dispersal facade and codec factory.

:class:`ConvergentDispersal` is the high-level entry point matching
Figure 2 of the paper: a secret goes in, ``n`` deterministic shares come
out, with the share-to-cloud pinning and brute-force decode fallback of
§3.2 handled here so the client code stays simple.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import CodingError, IntegrityError, ParameterError
from repro.sharing.base import SecretSharingScheme, ShareSet
from repro.sharing.registry import create_scheme

__all__ = ["ConvergentDispersal", "create_codec"]

_CONVERGENT_SCHEMES = ("caont-rs", "caont-rs-rivest", "crsss")


def create_codec(name: str, n: int, k: int, **kwargs) -> SecretSharingScheme:
    """Instantiate an AONT-RS-family codec by name.

    Accepts ``"caont-rs"`` (the paper's contribution, default choice),
    ``"caont-rs-rivest"`` and ``"aont-rs"``; delegates to the scheme
    registry so custom registrations work too.
    """
    return create_scheme(name, n, k, **kwargs)


class ConvergentDispersal:
    """Encode secrets into per-cloud shares; decode from any ``k`` clouds.

    Wraps a convergent codec and adds:

    * share labelling — share ``i`` always belongs to cloud ``i`` (§3.2:
      "the same cloud always receives the same share"), so deduplication
      works per cloud and restores know where to look;
    * integrity-driven brute force — if a decode fails verification, every
      other ``k``-subset of the available shares is tried before giving up
      (§3.2: "try a different subset of k shares until the secret is
      correctly decoded").
    """

    def __init__(
        self,
        n: int,
        k: int,
        scheme: str = "caont-rs",
        salt: bytes = b"",
        codec: SecretSharingScheme | None = None,
        **kwargs,
    ) -> None:
        if codec is not None:
            # A pre-built deterministic codec (e.g. the server-aided
            # CAONT-RS bound to a key server) bypasses the registry.
            if not codec.deterministic:
                raise ParameterError(
                    f"codec {codec.name!r} is not convergent (non-deterministic)"
                )
            if (codec.n, codec.k) != (n, k):
                raise ParameterError(
                    f"codec is ({codec.n}, {codec.k}), expected ({n}, {k})"
                )
            self.n = n
            self.k = k
            self.scheme = codec.name
            self.codec = codec
            #: Pre-built codecs (e.g. bound to a live key-server client)
            #: cannot be shipped to worker processes; spec() returns None
            #: and the comm engine falls back to in-process encoding.
            self._spec = None
            return
        if scheme not in _CONVERGENT_SCHEMES:
            raise ParameterError(
                f"{scheme!r} is not convergent; choose from {_CONVERGENT_SCHEMES}"
            )
        self.n = n
        self.k = k
        self.scheme = scheme
        self.codec = create_codec(scheme, n, k, salt=salt, **kwargs)
        # Registry-built codecs can be reconstructed in another process
        # from this picklable description (process-pool encoding).
        self._spec = (scheme, n, k, bytes(salt), tuple(sorted(kwargs.items())))

    # ------------------------------------------------------------------
    def spec(self) -> tuple | None:
        """Picklable ``(scheme, n, k, salt, kwargs)`` description, or None.

        A non-None spec reconstructs an equivalent dispersal in another
        process via :meth:`from_spec` — how the process-pool encode workers
        build (and cache) their own codec without pickling live objects.
        """
        return self._spec

    @classmethod
    def from_spec(cls, spec: tuple) -> "ConvergentDispersal":
        """Rebuild a dispersal from a :meth:`spec` tuple."""
        scheme, n, k, salt, kwargs = spec
        return cls(n, k, scheme=scheme, salt=salt, **dict(kwargs))

    # ------------------------------------------------------------------
    def encode(self, secret: bytes) -> ShareSet:
        """Disperse ``secret`` into ``n`` shares (share i → cloud i)."""
        return self.codec.split(secret)

    def encode_batch(self, secrets: list[bytes]) -> list[ShareSet]:
        """Disperse a slab of secrets; element ``i`` equals ``encode(secrets[i])``.

        Delegates to the codec's vectorised batch path (one generator-matrix
        multiply and one bulk AONT XOR per group of same-length secrets).
        """
        return self.codec.encode_batch(secrets)

    def decode(self, shares: dict[int, bytes], secret_size: int) -> bytes:
        """Reconstruct a secret from any ``k`` of its shares.

        On integrity failure, retries every other ``k``-subset of the
        provided shares (brute-force fallback of §3.2) and raises
        :class:`IntegrityError` only when all subsets fail.
        """
        if len(shares) < self.k:
            raise CodingError(
                f"need at least k={self.k} shares, got {len(shares)}"
            )
        indices = sorted(shares)
        first_error: Exception | None = None
        for subset in combinations(indices, self.k):
            try:
                return self.codec.recover(
                    {i: shares[i] for i in subset}, secret_size
                )
            except (IntegrityError, CodingError) as exc:
                first_error = first_error or exc
        raise IntegrityError(
            f"no {self.k}-subset of {len(indices)} shares decoded cleanly"
        ) from first_error

    def decode_batch(
        self,
        requests: list[tuple[dict[int, bytes], int]],
        fallback=None,
    ) -> list[bytes]:
        """Reconstruct a slab of secrets; falls back per-secret on failure.

        The happy path runs the codec's batched decode (one inverse-matrix
        multiply per shared ``k``-subset).  If *any* secret in the slab
        fails integrity/coding checks, each request is retried through
        :meth:`decode` (the §3.2 brute-force subset retry) — and a request
        that *still* fails is handed to ``fallback(index, shares,
        secret_size)`` when one is given, so callers widen the share pool
        only for the secrets that actually need it (the client's
        spare-cloud path) instead of re-decoding the whole slab again.
        """
        try:
            return self.codec.decode_batch(requests)
        except (IntegrityError, CodingError):
            pass
        parts: list[bytes] = []
        for index, (shares, size) in enumerate(requests):
            try:
                parts.append(self.decode(shares, size))
            except IntegrityError:
                if fallback is None:
                    raise
                parts.append(fallback(index, shares, size))
        return parts

    def share_size(self, secret_size: int) -> int:
        """Per-share size for a secret of ``secret_size`` bytes."""
        return self.codec.share_size(secret_size)
