"""Erasure-coding substrate: systematic Reed-Solomon codes and Rabin's IDA.

These are the fault-tolerance building blocks of every secret-sharing scheme
in the paper (§2): AONT-RS / CAONT-RS append Reed-Solomon parity to an AONT
package; IDA, RSSS and SSMS disperse data with the same codes.
"""

from repro.erasure.ida import InformationDispersal
from repro.erasure.reed_solomon import ReedSolomon

__all__ = ["ReedSolomon", "InformationDispersal"]
