"""Observability overhead — instrumented vs uninstrumented backup/restore.

Not a paper figure: CDStore (LiQL15) reports no telemetry costs.  This
experiment gates the design constraint the ``repro.obs`` registry was
built around — metrics are incremented inside the WAL append loop, the
dispatcher and the per-window restore path, so the per-thread-cell fast
path must keep a fully instrumented ingest + restore within a few
percent of the same run with the kill switch off:

* ``micro.obs_enabled_over_disabled`` — **gated** throughput ratio of a
  whole backup+restore cycle with ``REGISTRY.enabled = True`` (and
  client tracing on) over the identical cycle with observability off.
  Both legs run on one machine back to back, so the ratio travels to CI
  while absolute MB/s does not.  1.0 means free; the committed baseline
  allows the usual few percent.
* instrument micro-costs (ns per counter ``inc`` / histogram
  ``observe``, enabled vs disabled) print as context so a future
  regression is attributable at a glance.
"""

from __future__ import annotations

import time

from conftest import emit, emit_metrics, scaled

from repro.bench.reporting import format_table
from repro.chunking.fixed import FixedChunker
from repro.client.client import CDStoreClient
from repro.cloud.network import Link
from repro.cloud.provider import CloudProvider
from repro.crypto.drbg import DRBG
from repro.obs.registry import REGISTRY, MetricsRegistry
from repro.server.server import CDStoreServer

N, K = 4, 3


def _cycle_seconds(data: bytes, enabled: bool) -> float:
    """One full in-process backup + restore, observability on or off."""
    REGISTRY.enabled = enabled
    servers = [
        CDStoreServer(
            server_id=i,
            cloud=CloudProvider(f"cloud-{i}", Link(10_000.0), Link(10_000.0)),
        )
        for i in range(N)
    ]
    client = CDStoreClient(
        user_id="alice", servers=servers, k=K, salt=b"bench",
        chunker=FixedChunker(4096), trace=enabled,
    )
    try:
        start = time.perf_counter()
        client.upload("f", data)
        client.flush()
        restored = client.download("f")
        elapsed = time.perf_counter() - start
        assert restored == data
        return elapsed
    finally:
        for server in servers:
            server.close()


def _instrument_ns(enabled: bool, iterations: int = 200_000) -> tuple[float, float]:
    """(counter inc, histogram observe) cost in ns/op on a fresh registry."""
    reg = MetricsRegistry(enabled=enabled)
    counter = reg.counter("bench_hits_total")
    hist = reg.histogram("bench_seconds")
    start = time.perf_counter()
    for _ in range(iterations):
        counter.inc()
    inc_ns = (time.perf_counter() - start) / iterations * 1e9
    start = time.perf_counter()
    for _ in range(iterations):
        hist.observe(0.003)
    observe_ns = (time.perf_counter() - start) / iterations * 1e9
    return inc_ns, observe_ns


def test_obs_overhead():
    data = DRBG("obs-overhead").random_bytes(scaled(8 << 20))
    try:
        # Alternate the legs and keep each side's best: back-to-back
        # interleaving cancels machine drift, best-of cancels one-off
        # scheduler noise in either direction.
        enabled_s = min(_cycle_seconds(data, True) for _ in range(3))
        disabled_s = min(_cycle_seconds(data, False) for _ in range(3))
    finally:
        REGISTRY.enabled = True
    ratio = disabled_s / enabled_s  # throughputs: (1/e) / (1/d)

    rows = [
        ["backup+restore, obs on", f"{len(data) / 1e6 / enabled_s:.1f} MB/s"],
        ["backup+restore, obs off", f"{len(data) / 1e6 / disabled_s:.1f} MB/s"],
        ["enabled/disabled throughput", f"{ratio:.4f}"],
    ]
    for enabled in (True, False):
        inc_ns, observe_ns = _instrument_ns(enabled)
        state = "on" if enabled else "off"
        rows.append([f"counter.inc, obs {state}", f"{inc_ns:.0f} ns"])
        rows.append([f"histogram.observe, obs {state}", f"{observe_ns:.0f} ns"])
    emit(
        "obs_overhead",
        format_table(
            ["leg", "result"],
            rows,
            title=(
                f"Observability overhead "
                f"(payload {len(data) >> 20} MiB, k={K}/n={N})"
            ),
        ),
    )
    emit_metrics({"micro.obs_enabled_over_disabled": ratio})
    # Hard floor regardless of baselines: instrumentation may never cost
    # a quarter of the pipeline.
    assert ratio > 0.75, f"observability overhead too high (ratio {ratio:.3f})"
