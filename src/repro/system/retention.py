"""Backup series and retention management.

The paper's cost scenario assumes "weekly backups ... for a retention time
of half a year (26 weeks)" (§5.6) and defers expiry ("garbage collection
can reclaim space of expired backups", §4.7) to future work.  This module
implements that operational layer:

* :class:`BackupSeries` — a named, ordered series of backups of one
  logical dataset (e.g. ``/home`` week after week), with labelled
  versions, restore-by-label, and expiry;
* :class:`RetentionPolicy` — keep-last-N policies applied to a series;
  expired versions are deleted on every cloud and space reclaimed by the
  servers' garbage collectors.

Because deduplication shares chunks *across* versions, expiring an old
version only frees the chunks no retained version references — the
refcounting in the share index (§4.4) provides exactly that semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.client import CDStoreClient
from repro.errors import NotFoundError, ParameterError

__all__ = ["BackupSeries", "RetentionPolicy"]


@dataclass(frozen=True)
class RetentionPolicy:
    """Keep the most recent ``keep_last`` versions of a series."""

    keep_last: int

    def __post_init__(self) -> None:
        if self.keep_last < 1:
            raise ParameterError(
                f"retention must keep at least one version, got {self.keep_last}"
            )

    def expired(self, labels: list[str]) -> list[str]:
        """The labels to expire, oldest first (input is version order)."""
        if len(labels) <= self.keep_last:
            return []
        return labels[: len(labels) - self.keep_last]


class BackupSeries:
    """An ordered series of backups of one dataset for one user.

    Versions are stored as ``<prefix>/<label>`` paths on the normal
    CDStore namespace, so everything (dedup, restore under failure,
    repair) applies unchanged; the series only adds ordering and expiry.
    """

    def __init__(self, client: CDStoreClient, name: str) -> None:
        if not name or "/" in name:
            raise ParameterError(f"series name must be a single segment, got {name!r}")
        self.client = client
        self.name = name
        self._labels: list[str] = []
        self._recover_labels()

    # ------------------------------------------------------------------
    def _prefix(self) -> str:
        return f"/series/{self.name}/"

    def _path(self, label: str) -> str:
        return self._prefix() + label

    def _recover_labels(self) -> None:
        """Rebuild version order from the stored namespace (metadata is
        server-side, so a fresh client sees existing versions)."""
        try:
            paths = self.client.list_files()
        except Exception:
            return
        prefix = self._prefix()
        self._labels = sorted(
            path[len(prefix):] for path in paths if path.startswith(prefix)
        )

    # ------------------------------------------------------------------
    def backup(self, label: str, data: bytes):
        """Store a new version under ``label`` (must sort after priors)."""
        if "/" in label or not label:
            raise ParameterError(f"invalid version label {label!r}")
        if label in self._labels:
            raise ParameterError(f"version {label!r} already exists")
        receipt = self.client.upload(self._path(label), data)
        self._labels.append(label)
        self._labels.sort()
        return receipt

    def restore(self, label: str | None = None) -> bytes:
        """Restore a version (latest when ``label`` is omitted)."""
        if not self._labels:
            raise NotFoundError(f"series {self.name!r} has no versions")
        chosen = label if label is not None else self._labels[-1]
        if chosen not in self._labels:
            raise NotFoundError(f"series {self.name!r} has no version {chosen!r}")
        return self.client.download(self._path(chosen))

    def labels(self) -> list[str]:
        """Version labels in order, oldest first."""
        return list(self._labels)

    # ------------------------------------------------------------------
    def apply_retention(self, policy: RetentionPolicy, collect: bool = True) -> int:
        """Expire versions beyond the policy; returns bytes reclaimed.

        With ``collect=True`` every server garbage-collects after the
        deletions, so the return value reflects space actually freed (only
        chunks unreferenced by retained versions are reclaimable).
        """
        expired = policy.expired(self._labels)
        for label in expired:
            self.client.delete(self._path(label))
            self._labels.remove(label)
        freed = 0
        if collect and expired:
            for server in self.client.servers:
                freed += server.collect_garbage()
        return freed
