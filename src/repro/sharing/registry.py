"""Name-based registry of secret-sharing schemes.

The Table 1 benchmark and the CDStore system construct schemes by name, so
new instantiations (including the convergent codecs registered by
:mod:`repro.core`) plug in without touching call sites.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ParameterError
from repro.sharing.base import SecretSharingScheme

__all__ = ["register_scheme", "create_scheme", "available_schemes"]

_REGISTRY: dict[str, Callable[..., SecretSharingScheme]] = {}


def register_scheme(name: str, factory: Callable[..., SecretSharingScheme]) -> None:
    """Register ``factory`` under ``name`` (idempotent for same factory)."""
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not factory:
        raise ParameterError(f"scheme {name!r} already registered")
    _REGISTRY[name] = factory


def create_scheme(name: str, *args, **kwargs) -> SecretSharingScheme:
    """Instantiate the scheme registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ParameterError(
            f"unknown scheme {name!r}; available: {available_schemes()}"
        ) from None
    return factory(*args, **kwargs)


def available_schemes() -> list[str]:
    """Sorted names of all registered schemes."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    from repro.sharing.ida_scheme import IDAScheme
    from repro.sharing.rsss import RSSS
    from repro.sharing.ssms import SSMS
    from repro.sharing.ssss import SSSS

    register_scheme("ssss", SSSS)
    register_scheme("ida", IDAScheme)
    register_scheme("rsss", RSSS)
    register_scheme("ssms", SSMS)


_register_builtins()
