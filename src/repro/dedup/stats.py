"""Byte accounting for two-stage deduplication (Figure 6).

The paper defines four data types (§5.4):

* **logical data** — original user bytes before encoding;
* **logical shares** — all shares before any deduplication;
* **transferred shares** — shares crossing the Internet after *intra-user*
  deduplication;
* **physical shares** — shares actually stored after *inter-user*
  deduplication;

and two savings metrics derived from them.  :class:`DedupStats` accumulates
the four counters and computes the metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DedupStats"]


@dataclass
class DedupStats:
    """Running totals of the four §5.4 data types, in bytes."""

    logical_data: int = 0
    logical_shares: int = 0
    transferred_shares: int = 0
    physical_shares: int = 0
    #: Secrets processed / deduplicated counts, for diagnostics.
    secrets_total: int = 0
    shares_total: int = 0
    shares_transferred: int = 0
    shares_stored: int = 0
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def intra_user_saving(self) -> float:
        """1 - transferred/logical shares (§5.4 metric (i))."""
        if self.logical_shares == 0:
            return 0.0
        return 1.0 - self.transferred_shares / self.logical_shares

    @property
    def inter_user_saving(self) -> float:
        """1 - physical/transferred shares (§5.4 metric (ii))."""
        if self.transferred_shares == 0:
            return 0.0
        return 1.0 - self.physical_shares / self.transferred_shares

    @property
    def overall_saving(self) -> float:
        """1 - physical shares / logical shares (combined saving)."""
        if self.logical_shares == 0:
            return 0.0
        return 1.0 - self.physical_shares / self.logical_shares

    @property
    def dedup_ratio(self) -> float:
        """Logical-to-physical share ratio (the §5.6 'deduplication ratio')."""
        if self.physical_shares == 0:
            return float("inf") if self.logical_shares else 1.0
        return self.logical_shares / self.physical_shares

    def merge(self, other: "DedupStats") -> None:
        """Accumulate another stats object into this one."""
        self.logical_data += other.logical_data
        self.logical_shares += other.logical_shares
        self.transferred_shares += other.transferred_shares
        self.physical_shares += other.physical_shares
        self.secrets_total += other.secrets_total
        self.shares_total += other.shares_total
        self.shares_transferred += other.shares_transferred
        self.shares_stored += other.shares_stored

    def snapshot(self) -> "DedupStats":
        """Copy of the current counters (for per-week deltas in Fig 6)."""
        return DedupStats(
            logical_data=self.logical_data,
            logical_shares=self.logical_shares,
            transferred_shares=self.transferred_shares,
            physical_shares=self.physical_shares,
            secrets_total=self.secrets_total,
            shares_total=self.shares_total,
            shares_transferred=self.shares_transferred,
            shares_stored=self.shares_stored,
        )

    def delta(self, earlier: "DedupStats") -> "DedupStats":
        """Counters accumulated since ``earlier`` (one backup's worth)."""
        return DedupStats(
            logical_data=self.logical_data - earlier.logical_data,
            logical_shares=self.logical_shares - earlier.logical_shares,
            transferred_shares=self.transferred_shares - earlier.transferred_shares,
            physical_shares=self.physical_shares - earlier.physical_shares,
            secrets_total=self.secrets_total - earlier.secrets_total,
            shares_total=self.shares_total - earlier.shares_total,
            shares_transferred=self.shares_transferred - earlier.shares_transferred,
            shares_stored=self.shares_stored - earlier.shares_stored,
        )
