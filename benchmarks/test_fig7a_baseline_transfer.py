"""Figure 7(a) — single-client baseline upload/download speeds.

Paper (MB/s): LAN 77.5 (uniq) / 149.9 (dup) / 99.2 (down); cloud testbed
6.2 / 57.1 / 12.3.  Shape claims: unique uploads are bounded by k/n of the
network; duplicate uploads are compute-bound (LAN) or dedup-round-trip
bound (cloud) and far faster; downloads sit just under the link speed.

Also reports the streaming transfer stage's schedule comparison at one
encode thread: the serial encode-then-upload sum versus the overlapped
windowed-pipeline makespan (4 MB encode windows flowing into the per-cloud
upload queues, ``pipeline_depth > 1``) — the overlap must be a strict win.
"""

from conftest import emit, emit_metrics

from repro.bench.reporting import format_table
from repro.bench.transfer import baseline_transfer_speeds, upload_makespans
from repro.cloud.testbed import cloud_testbed, lan_testbed

PAPER = {
    "lan": (77.5, 149.9, 99.2),
    "cloud": (6.2, 57.1, 12.3),
}


def test_fig7a(benchmark):
    def run():
        return [baseline_transfer_speeds(tb) for tb in (lan_testbed(), cloud_testbed())]

    results = benchmark(run)

    table = format_table(
        ["testbed", "upload uniq", "upload dup", "download", "paper (u/d/dl)"],
        [
            [
                s.testbed,
                s.upload_unique_mbps,
                s.upload_duplicate_mbps,
                s.download_mbps,
                "/".join(str(v) for v in PAPER[s.testbed]),
            ]
            for s in results
        ],
        title="Figure 7(a): single-client baseline speeds (MB/s), (n, k)=(4, 3), 2 GB",
    )
    emit("fig7a", table)

    testbeds = (lan_testbed(), cloud_testbed())
    comparisons = [upload_makespans(tb) for tb in testbeds]
    pipeline_table = format_table(
        ["testbed", "windows", "serial s", "overlapped s", "speedup"],
        [
            [c.testbed, c.windows, c.serial_s, c.overlapped_s, c.speedup]
            for c in comparisons
        ],
        title="Figure 7(a) addendum: serial vs streamed upload schedule "
        "(threads=1, unique data)",
    )
    emit("fig7a_pipeline", pipeline_table)

    emit_metrics(
        {
            **{
                f"fig7a.{s.testbed}.{field}": getattr(s, field)
                for s in results
                for field in (
                    "upload_unique_mbps",
                    "upload_duplicate_mbps",
                    "download_mbps",
                )
            },
            **{
                f"fig7a.{c.testbed}.pipeline_speedup": c.speedup
                for c in comparisons
            },
        }
    )

    for s in results:
        paper_uniq, paper_dup, paper_down = PAPER[s.testbed]
        assert abs(s.upload_unique_mbps - paper_uniq) / paper_uniq < 0.20
        assert abs(s.upload_duplicate_mbps - paper_dup) / paper_dup < 0.20
        assert abs(s.download_mbps - paper_down) / paper_down < 0.20
        # Structural claims.
        assert s.upload_duplicate_mbps > s.download_mbps > s.upload_unique_mbps
    for c, tb in zip(comparisons, testbeds):
        # The overlapped makespan must sit strictly below the serial
        # encode + upload sum — the streaming transfer stage's claim.
        assert c.overlapped_s < c.serial_s
        # Sanity bound: overlap can at most hide the encode stage plus the
        # serialisation of that testbed's own n cloud visits.
        assert c.speedup <= tb.n + 1
