"""Property tests: ``encode_batch``/``decode_batch`` ≡ per-secret paths.

For every registered scheme (vectorised batch kernels and generic
fallbacks alike) a batch call must be *byte-identical* to looping the
per-secret API:

* ``encode_batch(secrets)[i].shares == split(secrets[i]).shares`` — for
  randomised schemes this additionally pins the batch path to drawing
  per-secret randomness in batch order (two instances seeded identically,
  one driven per-secret and one batched, must agree);
* ``decode_batch`` recovers every secret from an arbitrary ``k``-subset of
  its shares, including mixed subsets within one batch (each group shares
  one inverse matrix) and ragged trailing lengths.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core  # noqa: F401  (registers the AONT-RS-family codecs)
from repro.crypto.drbg import DRBG
from repro.sharing.registry import available_schemes, create_scheme

N, K = 4, 3

#: Pool of secret sizes: small pool → same-length groups are common (the
#: vectorised stacks), while 0/1 and the +1/-1 offsets exercise padding
#: and ragged tails.
SIZE_POOL = (0, 1, 31, 32, 100, 999, 1000, 1001)


def fresh_scheme(name: str, seed: str = "batch-eq"):
    """A scheme instance with deterministic randomness where applicable."""
    if name == "ida":
        return create_scheme(name, N, K)
    if name == "rsss":
        return create_scheme(name, N, K, 1, rng=DRBG(seed))
    if name in ("caont-rs", "caont-rs-rivest", "crsss"):
        return create_scheme(name, N, K, salt=b"org")
    if name == "aont-rs-bulk":  # the per_word=False bulk-mask variant
        return create_scheme("aont-rs", N, K, rng=DRBG(seed), per_word=False)
    return create_scheme(name, N, K, rng=DRBG(seed))


ALL_SCHEMES = sorted(available_schemes()) + ["aont-rs-bulk"]


secret_lists = st.lists(
    st.sampled_from(SIZE_POOL).flatmap(
        lambda size: st.binary(min_size=size, max_size=size)
    ),
    min_size=0,
    max_size=8,
)


@pytest.mark.slow
@pytest.mark.parametrize("name", ALL_SCHEMES)
@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_batch_equals_per_secret(name, data):
    secrets = data.draw(secret_lists)

    # Two identically seeded instances: one driven per-secret, one batched.
    per_secret = fresh_scheme(name)
    batched = fresh_scheme(name)
    singles = [per_secret.split(secret) for secret in secrets]
    batch = batched.encode_batch(secrets)

    assert len(batch) == len(singles)
    for single, got in zip(singles, batch):
        assert got.shares == single.shares
        assert got.secret_size == single.secret_size
        assert got.scheme == single.scheme

    # decode_batch from arbitrary k-subsets (mixed within the batch).
    requests = []
    for share_set in batch:
        indices = sorted(
            data.draw(
                st.permutations(range(N)).map(lambda p: tuple(p[:K])),
                label="k-subset",
            )
        )
        requests.append((share_set.subset(list(indices)), share_set.secret_size))
    decoded = batched.decode_batch(requests)
    assert decoded == list(secrets)

    # ...and element-wise identical to the per-secret recover path.
    recovered = [per_secret.recover(shares, size) for shares, size in requests]
    assert decoded == recovered


@pytest.mark.parametrize("name", ALL_SCHEMES)
def test_batch_empty(name):
    scheme = fresh_scheme(name)
    assert scheme.encode_batch([]) == []
    assert scheme.decode_batch([]) == []
