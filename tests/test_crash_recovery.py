"""Crash-only serving: boot-time recovery, and the kill -9 e2e.

The contract under test (README "Crash recovery"): nothing is acked on
the wire before the shares *and* the index mutations behind it are on
stable storage, kill -9 is the only shutdown, and every startup is a
recovery pass — reap temporaries, replay the container journal, drop
index entries whose containers never became durable.

The end-to-end test runs all four clouds of a real deployment in a
child process (`build_cloud_server`, the same path `repro serve` uses),
SIGKILLs it mid-backup, restarts the clouds in-process and proves that
everything acked before the kill restores byte-identically — and that a
second tenant's data is untouched and unreadable with the first
tenant's credentials.
"""

from __future__ import annotations

import hashlib
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.cli import build_cloud_server, main
from repro.config import ReproConfig
from repro.crypto.hashing import fingerprint
from repro.errors import AuthError, NotFoundError
from repro.net.client import RemoteServerProxy
from repro.server.index import (
    PREFIX_FILE,
    PREFIX_INTRA,
    PREFIX_SHARE,
    FileEntry,
    ShareEntry,
)
from repro.server.messages import FileManifest, ShareMeta, ShareUpload
from repro.storage.container import ContainerRef
from repro.system.cdstore import CDStoreSystem
from repro.tenants import (
    ROLE_ADMIN,
    Credentials,
    TenantRecord,
    TenantRegistry,
)

REPO_SRC = Path(__file__).parent.parent / "src"

SECRETS = {"alice": b"alice-secret", "bob": b"bob-secret", "ops": b"ops-secret"}


def init_deployment(root: Path, n: int = 2, k: int = 1) -> Path:
    assert main(["init", "--root", str(root), "--n", str(n), "--k", str(k),
                 "--salt", "e2e"]) == 0
    return root


def make_upload(data: bytes) -> ShareUpload:
    meta = ShareMeta(
        fingerprint=hashlib.sha256(b"client:" + data).digest(),
        share_size=len(data),
        secret_seq=0,
        secret_size=len(data),
    )
    return ShareUpload(meta=meta, data=data)


# ---------------------------------------------------------------------------
# boot-time recovery, unit level
# ---------------------------------------------------------------------------


class TestBootRecovery:
    def test_first_boot_is_a_clean_recovery(self, tmp_path):
        root = init_deployment(tmp_path / "srv")
        tcp = build_cloud_server(root, 0)
        try:
            report = tcp.server.last_recovery
            assert report is not None and report.clean
        finally:
            tcp.server.close()

    def test_acked_state_survives_reopen_without_close(self, tmp_path):
        """An upload+finalize whose calls returned (= were acked) is
        readable after reopening the store with no graceful shutdown —
        durability came from the per-batch group commit, not close()."""
        root = init_deployment(tmp_path / "srv")
        data = os.urandom(5000)
        upload = make_upload(data)
        server = build_cloud_server(root, 0).server
        server.upload_shares("u", [upload])
        server.finalize_file(
            "u",
            FileManifest(b"name", b"", len(data), 1),
            [upload.meta],
        )
        # No flush(), no graceful anything: just drop the handles the way
        # a dead process would (the journal + WAL are already fsynced).
        server.close()

        reopened = build_cloud_server(root, 0).server
        try:
            report = reopened.last_recovery
            assert report is not None
            assert report.dangling_share_entries == 0
            assert report.dangling_file_entries == 0
            fp = fingerprint(data, domain="server")
            assert reopened.fetch_shares([fp]) == {fp: data}
            assert reopened.get_file_entry("u", b"name").file_size == len(data)
        finally:
            reopened.close()

    def test_dangling_index_entries_are_dropped(self, tmp_path):
        """Index entries pointing at containers that never became durable
        (unacked leftovers) are reaped on boot, in every index family."""
        root = init_deployment(tmp_path / "srv")
        server = build_cloud_server(root, 0).server
        gone = ContainerRef(container_id="zz-never-durable", entry_index=0)
        with server._lock:
            server.index.put(
                PREFIX_SHARE + b"\x07" * 32,
                ShareEntry(ref=gone, share_size=10).pack(),
            )
            server.index.put(
                PREFIX_FILE + b"u\x00lost",
                FileEntry(gone, b"", 10, 1).pack(),
            )
            # Intra mapping whose share entry does not exist.
            server.index.put(PREFIX_INTRA + b"u\x00" + b"\x08" * 32, b"\x07" * 32)
            server.index.sync()
        server.close()

        reopened = build_cloud_server(root, 0).server
        try:
            report = reopened.last_recovery
            assert report is not None
            assert report.dangling_share_entries == 1
            assert report.dangling_file_entries == 1
            assert report.dangling_intra_mappings == 1
            assert reopened.index.get(PREFIX_SHARE + b"\x07" * 32) is None
            with pytest.raises(NotFoundError):
                reopened.get_file_entry("u", b"lost")
        finally:
            reopened.close()

    def test_half_written_temporaries_are_reaped(self, tmp_path):
        root = init_deployment(tmp_path / "srv")
        junk = root / "cloud-0" / "half-written.tmp"
        junk.write_bytes(b"torn")
        server = build_cloud_server(root, 0).server
        try:
            report = server.last_recovery
            assert report is not None
            assert report.reaped_temporaries == ["half-written.tmp"]
            assert not junk.exists()
        finally:
            server.close()


# ---------------------------------------------------------------------------
# the kill -9 end-to-end
# ---------------------------------------------------------------------------

_SERVE_ALL = """\
import sys, time
sys.path.insert(0, {src!r})
from repro.cli import build_cloud_server

tcps = [build_cloud_server({root!r}, i).start() for i in range(4)]
for i, tcp in enumerate(tcps):
    print("PORT", i, tcp.address[1], flush=True)
while True:
    time.sleep(1)
"""


def _spawn_clouds(script: Path, root: Path) -> tuple[subprocess.Popen, list[str]]:
    script.write_text(_SERVE_ALL.format(src=str(REPO_SRC), root=str(root)))
    proc = subprocess.Popen(
        [sys.executable, str(script)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    specs = []
    for _ in range(4):
        line = proc.stdout.readline()
        if not line.startswith("PORT"):
            proc.kill()
            raise AssertionError(
                f"serving child failed to come up: {line!r}\n{proc.stderr.read()}"
            )
        _tag, _i, port = line.split()
        specs.append(f"tcp://127.0.0.1:{port}")
    return proc, specs


class TestKillNineEndToEnd:
    def test_kill9_mid_backup_loses_nothing_acked(self, tmp_path, monkeypatch):
        import repro.client.comm as comm

        root = init_deployment(tmp_path / "srv", n=4, k=3)
        TenantRegistry(
            [
                TenantRecord("alice", SECRETS["alice"]),
                TenantRecord("bob", SECRETS["bob"]),
                TenantRecord("ops", SECRETS["ops"], role=ROLE_ADMIN),
            ]
        ).to_file(root / "tenants.json")

        proc, specs = _spawn_clouds(tmp_path / "serve_all.py", root)
        config = ReproConfig(
            n=4, k=3, salt="e2e", chunker="fixed", cloud_specs=specs
        )

        def system_for(tenant: str, cfg: ReproConfig = config) -> CDStoreSystem:
            return CDStoreSystem.from_config(
                cfg, credentials=Credentials(tenant, SECRETS[tenant])
            )

        bob_data = os.urandom(200_000)
        alice_data = os.urandom(300_000)
        big_data = os.urandom(4_000_000)
        failures: list[BaseException] = []
        try:
            # Phase 1: two tenants back up and get their acks.
            with system_for("bob") as system:
                client = system.client("bob")
                client.upload("/bob-file", bob_data)
                client.flush()

            alice_system = system_for("alice")
            alice = alice_system.client("alice")
            alice.upload("/acked", alice_data)
            alice.flush()

            # Phase 2: a big backup is under way — kill -9 the serving
            # process right after its first acked upload batch.
            monkeypatch.setattr(comm, "UPLOAD_BATCH_BYTES", 32 * 1024)
            first_ack = threading.Event()
            orig_upload = RemoteServerProxy.upload_shares
            orig_upload_async = RemoteServerProxy.upload_shares_async

            def spying_upload(self, user_id, uploads):
                result = orig_upload(self, user_id, uploads)
                first_ack.set()
                return result

            class SpyAckHandle:
                # The pipelined path acks when the handle resolves, not
                # when the request is sent — that is the durable ack.
                def __init__(self, inner):
                    self._inner = inner

                def result(self):
                    out = self._inner.result()
                    first_ack.set()
                    return out

            def spying_upload_async(self, user_id, uploads):
                return SpyAckHandle(orig_upload_async(self, user_id, uploads))

            monkeypatch.setattr(RemoteServerProxy, "upload_shares", spying_upload)
            monkeypatch.setattr(
                RemoteServerProxy, "upload_shares_async", spying_upload_async
            )

            def doomed_backup():
                try:
                    alice.upload("/big", big_data)
                    alice.flush()
                except BaseException as exc:  # noqa: BLE001 - recorded, asserted on
                    failures.append(exc)

            backup_thread = threading.Thread(target=doomed_backup, daemon=True)
            backup_thread.start()
            assert first_ack.wait(60), "no upload batch was ever acked"
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            backup_thread.join(timeout=120)
            assert not backup_thread.is_alive()
            assert failures, "the kill must land mid-backup, not after it"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
            try:
                alice_system.close()
            except BaseException:  # noqa: BLE001 - sockets died with the child
                pass

        # Phase 3: restart every cloud (construction is recovery) and
        # verify the crash-only contract.
        tcps = [build_cloud_server(root, i).start() for i in range(4)]
        try:
            for tcp in tcps:
                assert tcp.server.last_recovery is not None
                # An immediate second pass finds nothing left to repair.
                second = tcp.server.recover()
                assert second.dangling_share_entries == 0
                assert second.dangling_file_entries == 0
                assert second.dangling_intra_mappings == 0
                assert second.reaped_temporaries == []
                # No corruption among the survivors, no torn temp files.
                assert tcp.server.scrub() == []
            assert list(root.rglob("*.tmp")) == []

            new_specs = [
                f"tcp://{tcp.address[0]}:{tcp.address[1]}" for tcp in tcps
            ]
            recovered = config.with_overrides(cloud_specs=new_specs)

            # Everything acked restores byte-identically.
            with system_for("alice", recovered) as system:
                client = system.client("alice")
                assert client.download("/acked") == alice_data
                # The interrupted file was never finalized: it simply
                # does not exist — no partial ghost.
                with pytest.raises(NotFoundError):
                    client.download("/big")

            # The second tenant's data is untouched...
            with system_for("bob", recovered) as system:
                assert system.client("bob").download("/bob-file") == bob_data

            # ...and unreadable with the first tenant's credentials.
            host, port = tcps[0].address
            with RemoteServerProxy(
                f"tcp://{host}:{port}",
                credentials=Credentials("alice", SECRETS["alice"]),
            ) as proxy:
                with pytest.raises(AuthError):
                    proxy.list_files("bob")

            # Durable per-tenant accounting survived the crash too.
            assert tcps[0].server.tenant_usage("alice").bytes_stored > 0
            assert tcps[0].server.tenant_usage("bob").bytes_stored > 0
        finally:
            for tcp in tcps:
                tcp.shutdown()
                tcp.server.close()
