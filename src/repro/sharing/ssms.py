"""Secret sharing made short (SSMS), Krawczyk [34].

SSMS combines IDA and SSSS through key-based encryption (§2): the secret is
encrypted under a fresh random key; the *ciphertext* is dispersed with IDA
(blowup n/k) and the small *key* is dispersed with SSSS (blowup n over a
32-byte key).  Confidentiality degree is r = k - 1 in the computational
sense, with total blowup ``n/k + n * Skey / Ssec`` (Table 1).

Share ``i`` is the concatenation ``ida_share_i || key_share_i``; the key
share length is fixed (32 bytes), so the split point is unambiguous.
"""

from __future__ import annotations

from repro.crypto.ciphers import ctr_keystream
from repro.crypto.drbg import DRBG, system_random_bytes
from repro.crypto.hashing import HASH_SIZE
from repro.erasure.ida import InformationDispersal
from repro.errors import CodingError
from repro.sharing.base import SecretSharingScheme, ShareSet
from repro.sharing.ssss import SSSS

__all__ = ["SSMS"]

_KEY_SIZE = HASH_SIZE  # 32-byte AES-256 keys, matching the paper's Skey


class SSMS(SecretSharingScheme):
    """(n, k) SSMS: encrypt-then-disperse with a Shamir-shared key."""

    name = "ssms"
    deterministic = False

    def __init__(self, n: int, k: int, rng: DRBG | None = None) -> None:
        super().__init__(n, k, r=k - 1)
        self._rng = rng
        self._ida = InformationDispersal(n, k)
        self._key_sharer = SSSS(n, k, rng=rng)

    def _random_bytes(self, length: int) -> bytes:
        if self._rng is not None:
            return self._rng.random_bytes(length)
        return system_random_bytes(length)

    # ------------------------------------------------------------------
    def split(self, secret: bytes) -> ShareSet:
        key = self._random_bytes(_KEY_SIZE)
        ciphertext = self._xor_fast(secret, key)
        data_shares = self._ida.disperse(ciphertext)
        key_shares = self._key_sharer.split(key).shares
        shares = tuple(d + s for d, s in zip(data_shares, key_shares))
        return ShareSet(shares=shares, secret_size=len(secret), scheme=self.name)

    @staticmethod
    def _xor_fast(secret: bytes, key: bytes) -> bytes:
        import numpy as np

        stream = ctr_keystream(key, len(secret))
        a = np.frombuffer(secret, dtype=np.uint8)
        b = np.frombuffer(stream, dtype=np.uint8)
        return (a ^ b).tobytes()

    def recover(self, shares: dict[int, bytes], secret_size: int) -> bytes:
        self._check_recover_args(shares, secret_size)
        chosen = sorted(shares)[: self.k]
        for idx in chosen:
            if len(shares[idx]) < _KEY_SIZE:
                raise CodingError(
                    f"{self.name}: share {idx} too short to carry a key share"
                )
        data_part = {idx: shares[idx][:-_KEY_SIZE] for idx in chosen}
        key_part = {idx: shares[idx][-_KEY_SIZE:] for idx in chosen}
        key = self._key_sharer.recover(key_part, _KEY_SIZE)
        # The ciphertext is exactly as long as the secret (CTR stream cipher).
        ciphertext = self._ida.reconstruct(data_part, secret_size)
        return self._xor_fast(ciphertext, key)

    def expected_blowup(self, secret_size: int) -> float:
        """Blowup n/k + n * Skey / Ssec (Table 1), up to padding."""
        if secret_size == 0:
            return float("inf")
        data = self._ida.share_size(secret_size)
        return self.n * (data + _KEY_SIZE) / secret_size
