"""WIRE-006 fixture: the PROTOCOL.md spec drifted from the code.

Parsed (never imported) by tests/test_analysis_checkers.py; the sibling
``../PROTOCOL.md`` is the normative spec this registry is cross-checked
against, and ``../errors.py`` carries the wire error codes.  No
server.py/client.py/protocol.py exist, so WIRE-001/002/005 are
(deliberately) skipped; ``../README.md`` lists every short name so
WIRE-003 stays silent too.
"""

T_PING = 0x01
T_GHOST = 0x02  # TRUE-POSITIVE: missing from PROTOCOL.md
# Reserved for a planned hidden-frame experiment; deliberately kept out
# of the public spec until it ships.
R_SECRET = 0x90  # analysis: ignore[WIRE-006] -- fixture: justified undocumented frame

#: Declaring METHOD_FRAMES marks this module as the canonical registry,
#: which is what switches the WIRE-006 doc contract on.
METHOD_FRAMES: dict[str, int] = {}

CONTROL_FRAMES: frozenset[int] = frozenset({T_PING, T_GHOST})
