#!/usr/bin/env python3
"""Weekly backup campaign: trace-driven deduplication through the real system.

Replays a scaled-down FSL-like workload (§5.2) through the *actual*
CDStore pipeline — chunk materialisation, CAONT-RS encoding, two-stage
deduplication, containers — rather than the accounting simulator the
Figure 6 benchmark uses, and prints the weekly savings table.  Chunk
content is reconstructed from fingerprints exactly the way the paper's
trace-driven experiments do (§5.5).

Run:  python examples/weekly_backup_campaign.py
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.chunking import FixedChunker
from repro.config import ReproConfig
from repro.system import CDStoreSystem
from repro.workloads import FSLWorkload, materialize


def main() -> None:
    weeks, users = 4, 3
    workload = FSLWorkload(users=users, weeks=weeks, chunks_per_user=60,
                           avg_chunk=4096, min_chunk=4096, max_chunk=4096)
    config = ReproConfig(n=4, k=3, salt="acme-corp", chunker="fixed:size=4096")
    system = CDStoreSystem.from_config(config)

    rows = []
    for week in range(1, weeks + 1):
        before = system.global_stats()
        for user in workload.users:
            snapshot = workload.snapshot(user, week)
            payload = b"".join(materialize(c) for c in snapshot.chunks)
            client = system.client(user, chunker=FixedChunker(4096))
            client.upload(f"/backups/{user}/week{week}.tar", payload)
        after = system.global_stats()
        weekly = after.delta(before)
        rows.append([
            week,
            weekly.logical_data / 1e6,
            100 * weekly.intra_user_saving,
            100 * weekly.inter_user_saving,
            after.physical_shares / 1e6,
        ])

    print(format_table(
        ["week", "logical MB", "intra saving %", "inter saving %", "stored MB"],
        rows,
        title=f"Weekly backups: {users} users x {weeks} weeks through the real pipeline",
    ))

    # Verify every backup restores bit-exactly.
    failures = 0
    for week in range(1, weeks + 1):
        for user in workload.users:
            snapshot = workload.snapshot(user, week)
            expected = b"".join(materialize(c) for c in snapshot.chunks)
            got = system.client(user).download(f"/backups/{user}/week{week}.tar")
            failures += got != expected
    print(f"\nrestore check: {users * weeks - failures}/{users * weeks} backups bit-exact")
    assert failures == 0

    stats = system.global_stats()
    print(f"campaign totals: {stats.logical_data / 1e6:.1f} MB logical, "
          f"{stats.physical_shares / 1e6:.1f} MB physical shares "
          f"(overall saving {stats.overall_saving:.1%}, "
          f"dedup ratio {stats.dedup_ratio:.1f}x)")


if __name__ == "__main__":
    main()
