"""Merkle trees and the proof-of-ownership protocol [27]."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import DRBG
from repro.errors import IntegrityError, NotFoundError, ParameterError
from repro.merkle import MerkleTree, require_valid_path, verify_path
from repro.pow import PowProver, PowServer


class TestMerkleTree:
    @settings(max_examples=30)
    @given(st.binary(min_size=0, max_size=3000), st.sampled_from([64, 256, 1024]))
    def test_every_leaf_proves(self, data, block_size):
        tree = MerkleTree(data, block_size=block_size)
        for index in range(tree.leaf_count):
            block, path = tree.prove(index)
            assert verify_path(tree.root, block, path)

    def test_single_block(self):
        tree = MerkleTree(b"tiny")
        assert tree.leaf_count == 1
        block, path = tree.prove(0)
        assert path == []
        assert verify_path(tree.root, block, path)

    def test_odd_leaf_counts(self):
        for blocks in (1, 2, 3, 5, 7, 9):
            data = bytes(range(blocks)) * 64
            tree = MerkleTree(data, block_size=64)
            assert tree.leaf_count == blocks
            for i in range(blocks):
                block, path = tree.prove(i)
                assert verify_path(tree.root, block, path)

    def test_wrong_block_fails(self):
        tree = MerkleTree(b"A" * 4096 + b"B" * 4096, block_size=4096)
        _, path = tree.prove(0)
        assert not verify_path(tree.root, b"C" * 4096, path)

    def test_path_for_wrong_index_fails(self):
        tree = MerkleTree(b"A" * 4096 + b"B" * 4096, block_size=4096)
        block0, _ = tree.prove(0)
        _, path1 = tree.prove(1)
        assert not verify_path(tree.root, block0, path1)

    def test_roots_differ_by_content(self):
        assert MerkleTree(b"x" * 5000).root != MerkleTree(b"y" * 5000).root

    def test_leaf_node_domain_separation(self):
        """A two-leaf tree's root must differ from the leaf hash of the
        concatenated children (the classic confusion attack)."""
        import hashlib

        data = b"L" * 64 + b"R" * 64
        tree = MerkleTree(data, block_size=64)
        fake = hashlib.sha256(b"\x00" + tree.levels[0][0] + tree.levels[0][1]).digest()
        assert tree.root != fake

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            MerkleTree(b"x", block_size=0)
        tree = MerkleTree(b"x" * 100, block_size=10)
        with pytest.raises(ParameterError):
            tree.auth_path(99)

    def test_require_valid_path(self):
        tree = MerkleTree(b"data" * 100, block_size=16)
        block, path = tree.prove(3)
        require_valid_path(tree.root, block, path)
        with pytest.raises(IntegrityError):
            require_valid_path(tree.root, b"forged block....", path)


class TestProofOfOwnership:
    FILE = DRBG("pow-file").random_bytes(64 * 1024)
    FILE_ID = b"file-id-123"

    def _server(self) -> PowServer:
        server = PowServer(spot_checks=8, block_size=4096, rng=DRBG("pow-server"))
        server.register(self.FILE_ID, self.FILE)
        return server

    def test_owner_passes(self):
        server = self._server()
        prover = PowProver(self.FILE, block_size=4096)
        challenge = server.challenge(self.FILE_ID)
        assert server.verify(prover.respond(challenge))

    def test_fingerprint_only_attacker_fails(self):
        """Knowing the identifier (fingerprint) without content fails."""
        server = self._server()
        impostor = PowProver(b"\x00" * len(self.FILE), block_size=4096)
        challenge = server.challenge(self.FILE_ID)
        assert not server.verify(impostor.respond(challenge))

    def test_partial_knowledge_usually_fails(self):
        """An attacker holding half the file fails with high probability
        (8 spot checks: pass chance ~0.4%)."""
        server = PowServer(spot_checks=8, block_size=4096, rng=DRBG("partial"))
        server.register(self.FILE_ID, self.FILE)
        half = self.FILE[: len(self.FILE) // 2] + b"\x00" * (len(self.FILE) // 2)
        impostor = PowProver(half, block_size=4096)
        passes = 0
        for _ in range(10):
            challenge = server.challenge(self.FILE_ID)
            passes += server.verify(impostor.respond(challenge))
        assert passes <= 1

    def test_challenge_is_one_shot(self):
        server = self._server()
        prover = PowProver(self.FILE, block_size=4096)
        challenge = server.challenge(self.FILE_ID)
        response = prover.respond(challenge)
        assert server.verify(response)
        assert not server.verify(response)  # replay rejected

    def test_unknown_file_needs_upload(self):
        server = self._server()
        assert not server.knows(b"new-file")
        with pytest.raises(NotFoundError):
            server.challenge(b"new-file")

    def test_response_for_wrong_file_rejected(self):
        server = self._server()
        other_id = b"other-file"
        server.register(other_id, b"Z" * 8192)
        prover = PowProver(self.FILE, block_size=4096)
        challenge = server.challenge(self.FILE_ID)
        from repro.pow import PowResponse

        forged = PowResponse(
            file_id=other_id, nonce=challenge.nonce, proofs=prover.respond(challenge).proofs
        )
        assert not server.verify(forged)

    def test_spot_check_validation(self):
        with pytest.raises(ParameterError):
            PowServer(spot_checks=0)
