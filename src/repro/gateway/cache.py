"""The gateway's bytes-bounded hot-container cache.

A thread-safe wrapper around the generic :class:`~repro.lsm.cache.
LRUCache` (the same implementation behind the LSM block cache and the
container disk cache, §4.5), measured in bytes of cached share payload.

Keys are **content-addressed**: the service keys each entry by
``(user, lookup_key, window index, replica id, digest of the window's
share fingerprints)``.  Overwriting a backup changes its fingerprints,
so the new version can never hit the old version's entries — staleness
is structurally impossible, not TTL-bounded.  What content addressing
does *not* do is free the dead bytes, which is why the cache also keeps
a per-backup key index so :meth:`invalidate` can drop every entry of an
overwritten or deleted backup in one call.
"""

from __future__ import annotations

from threading import Lock

from repro.analysis.annotations import guarded_by, requires_lock
from repro.lsm.cache import LRUCache

__all__ = ["HotContainerCache"]

#: ``(user_id, lookup_key)`` — one backup's identity.
Backup = tuple[str, bytes]


class HotContainerCache:
    """Thread-safe byte-bounded LRU of window share lists.

    Values are ``list[bytes]`` (one window's shares from one replica);
    an entry's cost is the summed share payload (floored at 1 so empty
    windows still occupy a slot and stay evictable).
    """

    #: Lock discipline (``repro analyze``, LOCK-001): the underlying
    #: LRU and the per-backup key index are shared by every connection
    #: the front-end multiplexes; both mutate only under ``_lock``.
    GUARDED_BY = guarded_by(_cache="_lock", _by_backup="_lock")

    def __init__(self, capacity_bytes: int) -> None:
        self._lock = Lock()
        self._cache = LRUCache(
            capacity_bytes,
            size_of=lambda shares: sum(len(s) for s in shares) or 1,
            on_evict=self._evicted,
        )
        self._by_backup: dict[Backup, set] = {}

    @requires_lock("_lock")
    def _evicted(self, key, _value) -> None:
        # Runs inside LRUCache.put, which only runs under self._lock:
        # keep the per-backup index in step with capacity eviction.
        backup = key[:2]
        keys = self._by_backup.get(backup)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_backup[backup]

    def get(self, key: tuple):
        """The cached share list, or None (counts toward hit stats)."""
        with self._lock:
            return self._cache.get(key)

    def put(self, key: tuple, shares: list) -> None:
        with self._lock:
            self._by_backup.setdefault(key[:2], set()).add(key)
            self._cache.put(key, shares)

    def invalidate(self, backup: Backup) -> int:
        """Drop every entry of one backup; returns entries removed."""
        with self._lock:
            keys = self._by_backup.pop(backup, set())
            removed = 0
            for key in keys:
                if self._cache.pop(key) is not None:
                    removed += 1
            return removed

    # ------------------------------------------------------------------
    # observability (benchmark + stats surface)
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        with self._lock:
            return self._cache.capacity

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return self._cache.size

    @property
    def entries(self) -> int:
        with self._lock:
            return len(self._cache)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._cache.hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._cache.misses

    @property
    def hit_rate(self) -> float:
        with self._lock:
            return self._cache.hit_rate
