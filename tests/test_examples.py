"""Smoke-run every example script: the deliverables must stay runnable."""

import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow  # spawns one interpreter per example script

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py"),
    key=lambda p: p.name,
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} failed\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_all_examples_present():
    names = {p.name for p in EXAMPLES}
    expected = {
        "quickstart.py",
        "disaster_recovery.py",
        "weekly_backup_campaign.py",
        "cost_planner.py",
        "secret_sharing_tour.py",
        "brute_force_defense.py",
    }
    assert expected <= names
