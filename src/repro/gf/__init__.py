"""Galois-field GF(2^8) arithmetic substrate.

The paper accelerates Reed-Solomon coding with GF-Complete [48]; this package
provides the equivalent software substrate: log/exp-table arithmetic over
GF(2^8) with numpy-vectorised bulk kernels, plus dense matrix algebra
(multiplication, Gauss-Jordan inversion, Vandermonde and Cauchy builders)
used by the erasure codes and secret-sharing schemes.
"""

from repro.gf.gf256 import (
    GF256,
    gf_add,
    gf_div,
    gf_exp,
    gf_inv,
    gf_log,
    gf_mul,
    gf_mul_bytes,
    gf_poly_eval,
    gf_pow,
)
from repro.gf.matrix import (
    cauchy_matrix,
    gf_mat_inv,
    gf_mat_mul,
    gf_mat_vec,
    identity_matrix,
    systematic_cauchy_matrix,
    systematic_vandermonde_matrix,
    vandermonde_matrix,
)

__all__ = [
    "GF256",
    "gf_add",
    "gf_div",
    "gf_exp",
    "gf_inv",
    "gf_log",
    "gf_mul",
    "gf_mul_bytes",
    "gf_poly_eval",
    "gf_pow",
    "cauchy_matrix",
    "gf_mat_inv",
    "gf_mat_mul",
    "gf_mat_vec",
    "identity_matrix",
    "systematic_cauchy_matrix",
    "systematic_vandermonde_matrix",
    "vandermonde_matrix",
]
