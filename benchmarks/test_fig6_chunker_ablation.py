"""Figure 6 addendum — gear vs Rabin chunking ablation (dedup + ingest).

The Figure 6 dedup results replay *chunk traces*, so they are blind to the
chunker; this ablation closes the loop at the byte level: each user-week
snapshot of (scaled-down) FSL- and VM-like workloads is materialised into
its backup byte stream (§5.5's fingerprint-repetition reconstruction,
which preserves content similarity), re-chunked with the paper's Rabin
chunker and with the FastCDC-style gear chunker, and pushed through the
two-stage dedup accounting.

Claim: switching chunkers moves the two-stage dedup savings by at most a
few percentage points — boundaries differ, but both are content-defined
with the same size targets, so unchanged byte ranges re-align either way —
while gear ingests several times faster.  This is what makes ``--chunker
gear`` a safe default for throughput-bound deployments.

One deviation from §5.5's reconstruction: chunks are filled with a
*fingerprint-seeded random stream*, not the fingerprint repeated.  The
repetition trick preserves content similarity for transfer experiments,
but its 32-byte period is pathological for any CDC hash (the rolling
window sees a cycle, so boundary anchors all but vanish inside a chunk);
seeding a DRBG with the fingerprint keeps the same identity property —
identical records yield identical bytes, distinct records distinct bytes —
on realistic entropy, which is what a boundary-behaviour ablation must
measure.
"""

import time

from conftest import emit, emit_metrics, scaled

from repro.bench.dedup import TwoStageSimulator
from repro.bench.reporting import format_table
from repro.chunking import GearChunker, RabinChunker
from repro.crypto.drbg import DRBG
from repro.crypto.hashing import sha256
from repro.workloads import FSLWorkload, VMWorkload
from repro.workloads.base import BackupSnapshot, ChunkRecord

#: fingerprint -> materialised fill, shared across weeks (identical
#: records must materialise identically for dedup to see them as equal).
_FILL_CACHE: dict[bytes, bytes] = {}


def _materialize_entropy(record: ChunkRecord) -> bytes:
    """Fingerprint-seeded random fill (see the module docstring)."""
    data = _FILL_CACHE.get(record.fingerprint)
    if data is None or len(data) < record.size:
        data = DRBG(record.fingerprint).random_bytes(record.size)
        _FILL_CACHE[record.fingerprint] = data
    return data[: record.size]


def _rechunk(snapshot: BackupSnapshot, chunker) -> BackupSnapshot:
    """Materialise a snapshot's bytes and re-chunk them for real."""
    stream = b"".join(_materialize_entropy(record) for record in snapshot.chunks)
    records = tuple(
        ChunkRecord(fingerprint=sha256(chunk.data), size=chunk.size)
        for chunk in chunker.chunk_bytes(stream)
    )
    return BackupSnapshot(user=snapshot.user, week=snapshot.week, chunks=records)


def _replay(workload, chunker) -> tuple[float, float, float]:
    """Run the byte-level two-stage replay; returns (saving, MB/s, MB).

    ``saving`` is the end-state two-stage reduction
    ``1 - physical / logical`` — the Figure 6(b) headline number.
    """
    sim = TwoStageSimulator()
    chunk_seconds = 0.0
    logical = 0
    for snapshot in workload.all_snapshots():
        stream_len = snapshot.logical_bytes
        logical += stream_len
        start = time.perf_counter()
        rechunked = _rechunk(snapshot, chunker)
        chunk_seconds += time.perf_counter() - start
        sim.ingest_snapshot(rechunked)
    saving = 1.0 - sim.stats.physical_shares / max(sim.stats.logical_shares, 1)
    mbps = logical / 1e6 / chunk_seconds if chunk_seconds else float("inf")
    return saving, mbps, logical / 1e6


def _workloads():
    # Laptop-scale cuts of the §5.2 datasets: enough users/weeks for both
    # dedup stages to matter, small enough that the Rabin leg stays inside
    # the bench-smoke budget.
    fsl_chunks = max(scaled(1 << 20, floor=256 << 10) // 8192, 24)
    vm_chunks = max(scaled(1 << 20, floor=256 << 10) // 4096, 48)
    return (
        ("fsl", FSLWorkload(users=4, weeks=5, chunks_per_user=fsl_chunks)),
        ("vm", VMWorkload(users=6, weeks=5, master_chunks=vm_chunks)),
    )


def test_fig6_chunker_ablation(benchmark):
    chunkers = (("rabin", RabinChunker()), ("gear", GearChunker()))

    def run():
        return [
            (name, chunker_name) + _replay(workload, chunker)
            for name, workload in _workloads()
            for chunker_name, chunker in chunkers
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ["workload", "chunker", "two-stage saving %", "ingest MB/s", "logical MB"],
        [
            [workload, chunker, 100 * saving, mbps, mb]
            for workload, chunker, saving, mbps, mb in results
        ],
        title="Figure 6 addendum: gear vs Rabin byte-level dedup ablation",
    )
    emit("fig6_chunker_ablation", table)

    by_key = {(w, c): (saving, mbps) for w, c, saving, mbps, _ in results}
    metrics = {}
    for workload, _ in _workloads():
        rabin_saving, rabin_mbps = by_key[(workload, "rabin")]
        gear_saving, gear_mbps = by_key[(workload, "gear")]
        # Dedup parity: within 3 percentage points on both datasets.
        assert abs(gear_saving - rabin_saving) <= 0.03, (
            f"{workload}: gear saving {gear_saving:.3f} vs rabin "
            f"{rabin_saving:.3f} diverges by more than 3pp"
        )
        # The whole point of the fast ingest path.
        assert gear_mbps > 1.5 * rabin_mbps
        metrics[f"fig6.{workload}.gear_over_rabin_saving"] = (
            gear_saving / rabin_saving
        )
        metrics[f"fig6.{workload}.gear_over_rabin_ingest"] = gear_mbps / rabin_mbps
    emit_metrics(metrics)
