"""Deterministic archiver: pack/unpack, determinism, safety."""

import pytest

from repro.archive import list_archive, pack_tree, unpack_tree
from repro.errors import ParameterError, StorageError


def build_tree(root):
    (root / "docs").mkdir()
    (root / "docs" / "readme.txt").write_bytes(b"hello")
    (root / "docs" / "nested").mkdir()
    (root / "docs" / "nested" / "deep.bin").write_bytes(bytes(range(256)))
    (root / "empty-dir").mkdir()
    (root / "top.dat").write_bytes(b"x" * 1000)


class TestRoundtrip:
    def test_pack_unpack(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        build_tree(src)
        blob = pack_tree(src)
        out = tmp_path / "out"
        assert unpack_tree(blob, out) == 3  # three files
        assert (out / "docs" / "readme.txt").read_bytes() == b"hello"
        assert (out / "docs" / "nested" / "deep.bin").read_bytes() == bytes(range(256))
        assert (out / "top.dat").read_bytes() == b"x" * 1000
        assert (out / "empty-dir").is_dir()

    def test_determinism(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        build_tree(a)
        build_tree(b)
        assert pack_tree(a) == pack_tree(b)

    def test_small_change_is_local(self, tmp_path):
        """A one-file change must leave most archive bytes identical —
        the property chunk-level dedup relies on."""
        src = tmp_path / "src"
        src.mkdir()
        build_tree(src)
        before = pack_tree(src)
        (src / "top.dat").write_bytes(b"y" * 1000)
        after = pack_tree(before and src)
        assert before[: len(before) - 1100] == after[: len(after) - 1100]

    def test_empty_tree(self, tmp_path):
        src = tmp_path / "empty"
        src.mkdir()
        blob = pack_tree(src)
        out = tmp_path / "out"
        assert unpack_tree(blob, out) == 0

    def test_unicode_names(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "ünïcodé.txt").write_bytes(b"data")
        blob = pack_tree(src)
        out = tmp_path / "out"
        unpack_tree(blob, out)
        assert (out / "ünïcodé.txt").read_bytes() == b"data"

    def test_list_archive(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        build_tree(src)
        listing = dict(list_archive(pack_tree(src)))
        assert listing["docs/readme.txt"] == 5
        assert listing["empty-dir"] == -1


class TestSafety:
    def test_not_a_directory(self, tmp_path):
        f = tmp_path / "file"
        f.write_bytes(b"x")
        with pytest.raises(ParameterError):
            pack_tree(f)

    def test_bad_magic(self, tmp_path):
        with pytest.raises(StorageError):
            unpack_tree(b"NOTMAGIC" + b"\x00" * 10, tmp_path / "o")

    def test_truncated_archive(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "f").write_bytes(b"0123456789")
        blob = pack_tree(src)
        with pytest.raises(StorageError):
            unpack_tree(blob[:-4], tmp_path / "o")

    def test_escape_paths_rejected(self, tmp_path):
        import struct

        evil = b"CDARCH01" + struct.pack(">BH", 1, 9) + b"../escape" + struct.pack(">IQ", 0o644, 2) + b"hi"
        with pytest.raises(StorageError):
            unpack_tree(evil, tmp_path / "o")
        evil2 = b"CDARCH01" + struct.pack(">BH", 1, 8) + b"/abs/pth" + struct.pack(">IQ", 0o644, 0)
        with pytest.raises(StorageError):
            unpack_tree(evil2, tmp_path / "o")


class TestEndToEndWithCDStore:
    def test_directory_backup_through_the_system(self, tmp_path):
        from repro.chunking import FixedChunker
        from repro.system import CDStoreSystem

        src = tmp_path / "homedir"
        src.mkdir()
        build_tree(src)
        system = CDStoreSystem(n=4, k=3)
        client = system.client("alice", chunker=FixedChunker(2048))
        client.upload("/home.arch", pack_tree(src))
        restored_blob = client.download("/home.arch")
        out = tmp_path / "restored"
        unpack_tree(restored_blob, out)
        assert (out / "docs" / "readme.txt").read_bytes() == b"hello"

    def test_unchanged_tree_deduplicates_fully(self, tmp_path):
        from repro.chunking import FixedChunker
        from repro.system import CDStoreSystem

        src = tmp_path / "tree"
        src.mkdir()
        build_tree(src)
        system = CDStoreSystem(n=4, k=3)
        client = system.client("alice", chunker=FixedChunker(2048))
        client.upload("/snap1", pack_tree(src))
        receipt = client.upload("/snap2", pack_tree(src))
        assert receipt.intra_user_saving == 1.0
