"""Canonical Huffman entropy coding.

Byte-alphabet Huffman with canonical codes: the header stores only the
256 code lengths (run-length packed), from which both sides rebuild the
same code table.  Code lengths are capped at 15 bits via the standard
length-limiting fix-up.

Used as the entropy stage behind LZSS in the ``lzss+huffman`` pipeline.
"""

from __future__ import annotations

import heapq

from repro.errors import ParameterError

__all__ = ["huffman_encode", "huffman_decode"]

_MAX_BITS = 15


def _code_lengths(freqs: list[int]) -> list[int]:
    """Huffman code length per symbol (0 for absent symbols)."""
    heap = [(f, i, None) for i, f in enumerate(freqs) if f]
    if not heap:
        return [0] * 256
    if len(heap) == 1:
        lengths = [0] * 256
        lengths[heap[0][1]] = 1
        return lengths
    heapq.heapify(heap)
    counter = 256  # tie-breaker ids for internal nodes
    nodes: dict[int, tuple] = {}
    for f, i, payload in heap:
        nodes[i] = payload
    while len(heap) > 1:
        fa, ia, na = heapq.heappop(heap)
        fb, ib, nb = heapq.heappop(heap)
        heapq.heappush(heap, (fa + fb, counter, ((ia, na), (ib, nb))))
        counter += 1
    lengths = [0] * 256

    def walk(node_id: int, payload, depth: int) -> None:
        if payload is None:  # leaf
            lengths[node_id] = max(1, depth)
            return
        (left_id, left), (right_id, right) = payload
        walk(left_id, left, depth + 1)
        walk(right_id, right, depth + 1)

    _, root_id, root = heap[0]
    walk(root_id, root, 0)
    return _limit_lengths(lengths)


def _limit_lengths(lengths: list[int]) -> list[int]:
    """Cap code lengths at ``_MAX_BITS`` while keeping Kraft equality."""
    if max(lengths) <= _MAX_BITS:
        return lengths
    # Clamp, then repair the Kraft sum by lengthening the shortest codes.
    lengths = [min(length, _MAX_BITS) if length else 0 for length in lengths]
    kraft = sum(1 << (_MAX_BITS - length) for length in lengths if length)
    budget = 1 << _MAX_BITS
    symbols = sorted((length, i) for i, length in enumerate(lengths) if length)
    idx = 0
    while kraft > budget:
        _, i = symbols[idx % len(symbols)]
        if lengths[i] < _MAX_BITS:
            kraft -= 1 << (_MAX_BITS - lengths[i])
            lengths[i] += 1
            kraft += 1 << (_MAX_BITS - lengths[i])
        idx += 1
    return lengths


def _canonical_codes(lengths: list[int]) -> dict[int, tuple[int, int]]:
    """Map symbol -> (code, length) in canonical order."""
    symbols = sorted((length, s) for s, length in enumerate(lengths) if length)
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for length, symbol in symbols:
        code <<= length - prev_len
        codes[symbol] = (code, length)
        code += 1
        prev_len = length
    return codes


def _pack_lengths(lengths: list[int]) -> bytes:
    """Nibble-pack the 256 code lengths (two per byte)."""
    out = bytearray(128)
    for i in range(128):
        out[i] = lengths[2 * i] << 4 | lengths[2 * i + 1]
    return bytes(out)


def _unpack_lengths(blob: bytes) -> list[int]:
    if len(blob) != 128:
        raise ParameterError("bad Huffman length table")
    lengths = []
    for byte in blob:
        lengths.append(byte >> 4)
        lengths.append(byte & 0xF)
    return lengths


def huffman_encode(data: bytes) -> bytes:
    """Encode ``data``; format: u32 size | 128-byte lengths | bitstream."""
    header = len(data).to_bytes(4, "big")
    if not data:
        return header
    freqs = [0] * 256
    for byte in data:
        freqs[byte] += 1
    lengths = _code_lengths(freqs)
    codes = _canonical_codes(lengths)
    # Bit packing via an int accumulator flushed byte-wise.
    acc = 0
    acc_bits = 0
    out = bytearray()
    for byte in data:
        code, length = codes[byte]
        acc = acc << length | code
        acc_bits += length
        while acc_bits >= 8:
            acc_bits -= 8
            out.append(acc >> acc_bits & 0xFF)
    if acc_bits:
        out.append(acc << (8 - acc_bits) & 0xFF)
    return header + _pack_lengths(lengths) + bytes(out)


def huffman_decode(blob: bytes) -> bytes:
    """Invert :func:`huffman_encode`."""
    if len(blob) < 4:
        raise ParameterError("truncated Huffman header")
    size = int.from_bytes(blob[:4], "big")
    if size == 0:
        return b""
    if len(blob) < 132:
        raise ParameterError("truncated Huffman length table")
    lengths = _unpack_lengths(blob[4:132])
    codes = _canonical_codes(lengths)
    # Invert: (length, code) -> symbol.
    decode: dict[tuple[int, int], int] = {
        (length, code): symbol for symbol, (code, length) in codes.items()
    }
    out = bytearray()
    code = 0
    length = 0
    for byte in blob[132:]:
        for bit in range(7, -1, -1):
            code = code << 1 | (byte >> bit & 1)
            length += 1
            if length > _MAX_BITS:
                raise ParameterError("corrupt Huffman stream")
            symbol = decode.get((length, code))
            if symbol is not None:
                out.append(symbol)
                if len(out) == size:
                    return bytes(out)
                code = 0
                length = 0
    raise ParameterError("Huffman stream ended early")
