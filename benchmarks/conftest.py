"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
experiment index in DESIGN.md), prints the same rows/series the paper
reports, and writes a copy under ``benchmarks/out/`` so results survive
pytest's output capture.  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to watch the tables print live.

Scaling knob
------------

``REPRO_BENCH_SCALE`` (float, default ``1``) multiplies the data sizes of
the heavyweight benchmarks via :func:`scaled`.  CI's bench-smoke job sets
it below 1 so every figure still regenerates (and uploads as an artifact)
within a PR-feedback budget; the asserted claims are all relative
orderings, which survive scaling.  Values above 1 work too, for
higher-fidelity local runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"

#: Machine-readable results for the CI perf-regression gate (compared
#: against ``benchmarks/baselines.json`` by ``benchmarks/check_regressions.py``).
METRICS_PATH = OUT_DIR / "metrics.json"


_BENCH_DIR = Path(__file__).parent


def pytest_collection_modifyitems(items) -> None:
    """Every benchmark counts as ``slow``: ``-m "not slow"`` skips the lot.

    The hook fires with the whole session's items, so scope the marker to
    tests that actually live under ``benchmarks/``.
    """
    for item in items:
        if _BENCH_DIR in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)

#: Multiplier applied by :func:`scaled`; see the module docstring.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1") or "1")

#: Which chunker leg of the CI matrix this run is (``rabin`` | ``gear``).
#: Benchmarks that chunk real bytes pass this registry spec to their
#: chunker-selecting entry points (e.g. ``_make_secrets``); the perf gate
#: skips baseline metrics tagged with the *other* leg (see
#: ``check_regressions.py``).
BENCH_CHUNKER = os.environ.get("REPRO_BENCH_CHUNKER", "rabin") or "rabin"

#: Whether this pytest session has wiped the stale metrics file yet.
#: The wipe happens lazily, on the first *actual* metric emission — not at
#: collection time — so a fully-deselected run (``-m "not slow"``) leaves
#: a previous run's valid metrics.json untouched, while any run that
#: measures something starts from a clean slate (merging into stale
#: metrics would let old values satisfy the perf gate for benchmarks that
#: never ran, and would defeat its MISSING detection).
_METRICS_RESET = False


def scaled(nbytes: int, floor: int = 64 << 10) -> int:
    """Scale a benchmark working-set size by ``REPRO_BENCH_SCALE``.

    ``floor`` guards the statistical validity of tiny runs: below a few
    chunker windows most figures degenerate to noise.
    """
    return max(int(nbytes * BENCH_SCALE), floor)


def emit(name: str, text: str) -> None:
    """Print a result table and persist it to benchmarks/out/<name>.txt."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def emit_metrics(metrics: dict[str, float]) -> None:
    """Merge tracked metrics into ``benchmarks/out/metrics.json``.

    Every value is "higher is better" (a throughput or a speedup ratio);
    the CI bench-smoke job fails when any tracked metric regresses more
    than the gate tolerance against ``benchmarks/baselines.json``.  Prefer
    deterministic model outputs and machine-relative *ratios* over raw
    wall-clock throughputs — the baselines are committed from a different
    machine than the CI runners, and absolute MB/s does not travel.
    """
    global _METRICS_RESET
    OUT_DIR.mkdir(exist_ok=True)
    data: dict = {"scale": BENCH_SCALE, "metrics": {}}
    if _METRICS_RESET and METRICS_PATH.exists():
        data = json.loads(METRICS_PATH.read_text())
        data["scale"] = BENCH_SCALE
    data["chunker"] = BENCH_CHUNKER
    _METRICS_RESET = True
    data.setdefault("metrics", {}).update(
        {key: float(value) for key, value in metrics.items()}
    )
    METRICS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
