"""Exception hierarchy for the CDStore reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.  Subsystems raise the most specific
subclass that describes the failure.

Wire-visible errors
-------------------

Every class carries a **stable wire code** (``wire_code``) used by the
``R_ERROR`` frame in :mod:`repro.net.wire`.  Codes are part of the wire
protocol: they never change meaning and are never reused, so a v1 client
can decode a v1 server's errors regardless of which side is newer.  New
classes append new codes; :data:`WIRE_ERROR_CODES` is the decode registry.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "CodingError",
    "IntegrityError",
    "CryptoError",
    "StorageError",
    "NotFoundError",
    "CloudError",
    "CloudUnavailableError",
    "InsufficientCloudsError",
    "ProtocolError",
    "WorkloadError",
    "AuthError",
    "QuotaExceededError",
    "RecoveryInProgressError",
    "ServerOverloadedError",
    "WIRE_ERROR_CODES",
    "wire_code_for",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""

    #: Stable R_ERROR code.  Subclasses override with their own value;
    #: unlisted subclasses inherit the nearest ancestor's code, so an
    #: old peer still sees the right family.
    wire_code = 9


class ParameterError(ReproError, ValueError):
    """An invalid parameter was supplied (e.g. bad (n, k, r) combination)."""

    wire_code = 8


class CodingError(ReproError):
    """An erasure-coding operation failed (e.g. not enough shares)."""

    wire_code = 14


class IntegrityError(ReproError):
    """Decoded data failed an integrity check (canary or embedded hash)."""

    wire_code = 6


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key size, corrupt input...)."""

    wire_code = 13


class StorageError(ReproError):
    """A storage backend or container operation failed."""

    wire_code = 5


class NotFoundError(StorageError, KeyError):
    """A requested object (file, share, container, key) does not exist."""

    wire_code = 4


class CloudError(ReproError):
    """A simulated cloud provider rejected or failed an operation."""

    wire_code = 3


class CloudUnavailableError(CloudError):
    """The simulated cloud is offline (injected outage)."""

    wire_code = 1


class InsufficientCloudsError(CloudError):
    """Fewer than ``k`` clouds are reachable; data cannot be reconstructed."""

    wire_code = 2


class ProtocolError(ReproError):
    """Client/server exchanged malformed or unexpected messages."""

    wire_code = 7


class WorkloadError(ReproError):
    """A workload generator was misconfigured."""

    wire_code = 15


class AuthError(ReproError):
    """Authentication failed or an operation exceeded the tenant's rights."""

    wire_code = 10


class QuotaExceededError(ReproError):
    """A tenant exceeded its bytes / container / request-rate quota."""

    wire_code = 11


class RecoveryInProgressError(ReproError):
    """The server is replaying crash-recovery state; retry shortly."""

    wire_code = 12


class ServerOverloadedError(CloudUnavailableError):
    """The server shed this request under load; retry or fail over.

    Subclasses :class:`CloudUnavailableError` so the comm engine's
    window-granular failover treats an overloaded cloud like a transient
    outage (promote a spare) instead of aborting the transfer.
    """

    wire_code = 16


#: Decode registry: wire code -> most-specific exception class.  Built
#: from the classes above; codes 1..9 predate this registry (they were
#: positional indices in net/wire.py) and are frozen at those values.
WIRE_ERROR_CODES: dict[int, type[ReproError]] = {
    cls.wire_code: cls
    for cls in [
        ReproError,
        ParameterError,
        CodingError,
        IntegrityError,
        CryptoError,
        StorageError,
        NotFoundError,
        CloudError,
        CloudUnavailableError,
        InsufficientCloudsError,
        ProtocolError,
        WorkloadError,
        AuthError,
        QuotaExceededError,
        RecoveryInProgressError,
        ServerOverloadedError,
    ]
}


def wire_code_for(exc: BaseException) -> int:
    """The stable code for ``exc`` (nearest registered ancestor's code)."""
    for cls in type(exc).__mro__:
        code = getattr(cls, "wire_code", None)
        if code is not None:
            return int(code)
    return ReproError.wire_code
