"""Merkle hash trees.

Substrate for the proof-of-ownership protocol of Halevi et al. [27]
(:mod:`repro.pow`): a binary hash tree over fixed-size blocks of a file,
with authentication-path generation and verification.

Domain separation: leaf hashes are ``H(0x00 || block)`` and interior
hashes ``H(0x01 || left || right)``, preventing the classic second-
preimage confusion between leaves and nodes.  Odd nodes are promoted (no
duplication), so the tree is well-defined for any leaf count >= 1.
"""

from __future__ import annotations

import hashlib

from repro.errors import IntegrityError, ParameterError

__all__ = ["MerkleTree", "verify_path"]

_LEAF = b"\x00"
_NODE = b"\x01"


def _leaf_hash(block: bytes) -> bytes:
    return hashlib.sha256(_LEAF + block).digest()


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE + left + right).digest()


class MerkleTree:
    """Merkle tree over ``block_size``-byte blocks of one buffer."""

    def __init__(self, data: bytes, block_size: int = 4096) -> None:
        if block_size <= 0:
            raise ParameterError(f"block size must be positive, got {block_size}")
        self.block_size = block_size
        self.blocks = [
            data[i : i + block_size] for i in range(0, len(data), block_size)
        ] or [b""]
        # levels[0] = leaf hashes; levels[-1] = [root].
        level = [_leaf_hash(block) for block in self.blocks]
        self.levels = [level]
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(_node_hash(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])  # promote the odd node
            level = nxt
            self.levels.append(level)

    # ------------------------------------------------------------------
    @property
    def root(self) -> bytes:
        return self.levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self.blocks)

    def auth_path(self, index: int) -> list[tuple[bool, bytes]]:
        """Sibling hashes from leaf ``index`` to the root.

        Each element is ``(sibling_is_right, sibling_hash)``; promoted odd
        nodes contribute no element at their level.
        """
        if not 0 <= index < self.leaf_count:
            raise ParameterError(f"leaf index {index} outside [0, {self.leaf_count})")
        path: list[tuple[bool, bytes]] = []
        pos = index
        for level in self.levels[:-1]:
            if pos % 2 == 0:
                if pos + 1 < len(level):
                    path.append((True, level[pos + 1]))
            else:
                path.append((False, level[pos - 1]))
            pos //= 2
        return path

    def prove(self, index: int) -> tuple[bytes, list[tuple[bool, bytes]]]:
        """(block, auth path) for a challenged leaf."""
        return self.blocks[index], self.auth_path(index)


def verify_path(
    root: bytes,
    block: bytes,
    path: list[tuple[bool, bytes]],
) -> bool:
    """Check a (block, auth path) proof against a Merkle root."""
    node = _leaf_hash(block)
    for sibling_is_right, sibling in path:
        if sibling_is_right:
            node = _node_hash(node, sibling)
        else:
            node = _node_hash(sibling, node)
    return node == root


def require_valid_path(root: bytes, block: bytes, path) -> None:
    """Raise :class:`IntegrityError` unless the proof verifies."""
    if not verify_path(root, block, path):
        raise IntegrityError("Merkle proof failed verification")
