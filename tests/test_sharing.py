"""Classical secret-sharing schemes: SSSS, IDA, RSSS, SSMS + registry."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import DRBG
from repro.errors import CodingError, ParameterError
from repro.sharing import (
    RSSS,
    SSMS,
    SSSS,
    IDAScheme,
    available_schemes,
    create_scheme,
    register_scheme,
)


def scheme_instances():
    rng = DRBG("schemes")
    return [
        SSSS(4, 3, rng=rng.fork("ssss")),
        IDAScheme(4, 3),
        RSSS(4, 3, 1, rng=rng.fork("rsss")),
        RSSS(4, 3, 2, rng=rng.fork("rsss2")),
        SSMS(4, 3, rng=rng.fork("ssms")),
    ]


class TestContract:
    @pytest.mark.parametrize("scheme", scheme_instances(), ids=lambda s: f"{s.name}-r{s.r}")
    def test_roundtrip_every_k_subset(self, scheme):
        secret = DRBG("contract").random_bytes(2000)
        share_set = scheme.split(secret)
        assert share_set.n == scheme.n
        for subset in combinations(range(scheme.n), scheme.k):
            got = scheme.recover(share_set.subset(list(subset)), len(secret))
            assert got == secret, f"{scheme.name} failed on subset {subset}"

    @pytest.mark.parametrize("scheme", scheme_instances(), ids=lambda s: f"{s.name}-r{s.r}")
    @pytest.mark.parametrize("size", [0, 1, 2, 33, 1000])
    def test_odd_sizes(self, scheme, size):
        secret = DRBG(f"odd{size}").random_bytes(size)
        share_set = scheme.split(secret)
        got = scheme.recover(share_set.subset(list(range(scheme.k))), size)
        assert got == secret

    @pytest.mark.parametrize("scheme", scheme_instances(), ids=lambda s: f"{s.name}-r{s.r}")
    def test_too_few_shares_raise(self, scheme):
        share_set = scheme.split(b"x" * 100)
        with pytest.raises(CodingError):
            scheme.recover(share_set.subset(list(range(scheme.k - 1))), 100)

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            SSSS(2, 3)
        with pytest.raises(ParameterError):
            RSSS(4, 3, 3)  # r must be < k
        with pytest.raises(ParameterError):
            RSSS(4, 3, -1)


class TestBlowups:
    def test_table1_blowups(self):
        size = 9000  # divisible by k - r combinations below
        secret = DRBG("blowup").random_bytes(size)
        assert SSSS(4, 3).split(secret).storage_blowup == pytest.approx(4.0)
        assert IDAScheme(4, 3).split(secret).storage_blowup == pytest.approx(4 / 3)
        assert RSSS(4, 3, 1).split(secret).storage_blowup == pytest.approx(2.0)
        assert RSSS(4, 3, 2).split(secret).storage_blowup == pytest.approx(4.0)
        assert SSMS(4, 3).split(secret).storage_blowup == pytest.approx(
            4 / 3 + 4 * 32 / size, rel=0.01
        )

    def test_expected_blowup_matches_measured(self):
        for scheme in scheme_instances():
            secret = DRBG("expected").random_bytes(6000)
            measured = scheme.split(secret).storage_blowup
            assert scheme.expected_blowup(6000) == pytest.approx(measured, rel=0.01)


class TestRandomisation:
    def test_ssss_shares_differ_between_splits(self):
        scheme = SSSS(4, 3)
        secret = b"classified" * 20
        assert scheme.split(secret).shares != scheme.split(secret).shares

    def test_rsss_r0_is_deterministic_ida(self):
        scheme = RSSS(4, 3, 0)
        secret = b"plain" * 100
        assert scheme.split(secret).shares == scheme.split(secret).shares

    def test_ssms_shares_differ_between_splits(self):
        scheme = SSMS(4, 3)
        secret = b"enc" * 100
        assert scheme.split(secret).shares != scheme.split(secret).shares

    def test_ssss_single_share_leaks_nothing_trivially(self):
        """The same secret yields unrelated share bytes run-to-run."""
        secret = b"\x00" * 64
        a = SSSS(4, 3).split(secret).shares[0]
        b = SSSS(4, 3).split(secret).shares[0]
        assert a != b

    def test_rsss_single_share_is_masked(self):
        """With r >= 1, a share of the zero secret is not all zeroes."""
        share = RSSS(4, 3, 1).split(b"\x00" * 128).shares[0]
        assert any(share)


class TestShamirDetails:
    @settings(max_examples=20)
    @given(st.binary(min_size=1, max_size=200), st.integers(min_value=2, max_value=6))
    def test_ssss_any_k_of_n(self, secret, k):
        n = k + 2
        scheme = SSSS(n, k, rng=DRBG("prop"))
        share_set = scheme.split(secret)
        got = scheme.recover(share_set.subset(list(range(n - k, n))), len(secret))
        assert got == secret

    def test_share_size_equals_secret_size(self):
        share_set = SSSS(4, 3).split(b"z" * 777)
        assert all(len(s) == 777 for s in share_set.shares)


class TestRegistry:
    def test_builtins_present(self):
        names = available_schemes()
        for expected in ("ssss", "ida", "rsss", "ssms", "aont-rs", "caont-rs", "caont-rs-rivest"):
            assert expected in names

    def test_create_by_name(self):
        scheme = create_scheme("ssss", 4, 3)
        assert isinstance(scheme, SSSS)

    def test_unknown_name_raises(self):
        with pytest.raises(ParameterError):
            create_scheme("does-not-exist", 4, 3)

    def test_conflicting_registration_raises(self):
        with pytest.raises(ParameterError):
            register_scheme("ssss", lambda *a, **k: None)


class TestShareSet:
    def test_properties(self):
        share_set = SSSS(4, 3).split(b"abcd" * 10)
        assert share_set.n == 4
        assert share_set.total_size == 4 * 40
        assert share_set.subset([1, 3]).keys() == {1, 3}

    def test_empty_secret_blowup_is_infinite(self):
        share_set = SSSS(4, 3).split(b"")
        assert share_set.storage_blowup == float("inf")
