"""Deduplication primitives shared by client and server.

Fingerprints (SHA-256, §4) identify shares; the client and server domains
are deliberately independent so a client fingerprint cannot be replayed to
the server to claim ownership of another user's share (§3.3).
:class:`DedupStats` carries the byte accounting behind Figure 6.
"""

from repro.crypto.hashing import fingerprint
from repro.dedup.stats import DedupStats

__all__ = ["DedupStats", "fingerprint"]
