"""Variable-size chunking with Rabin fingerprints [49] (§4.2).

A Rabin fingerprint of a ``w``-byte window is the residue of the window's
bytes — read as a polynomial over GF(2) — modulo a fixed irreducible
polynomial ``P`` of degree 63.  A chunk boundary is declared after byte
``i`` when the fingerprint of the window ending at ``i`` matches a magic
value in its low ``log2(average)`` bits; minimum and maximum chunk sizes
(2 KB / 16 KB around the 8 KB average, per the paper) bound the result.

Because the fingerprint is GF(2)-linear in the window bytes,

    F(window) = XOR_j  T_j[b_j],   T_j[v] = v · x^(8·(w-1-j)) mod P,

the fingerprints of *all* positions can be computed as ``w`` shifted
numpy table-gathers — this vectorised path makes content-defined chunking
usable at benchmark scale in pure Python.  A byte-at-a-time rolling
implementation (:meth:`RabinChunker.rolling_fingerprints`) is kept as the
reference; a property test pins the two together.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

import numpy as np

from repro.chunking.base import Chunk, Chunker
from repro.errors import ParameterError

__all__ = ["RabinChunker"]

#: Degree-63 irreducible polynomial over GF(2) (low 64 bits stored; the
#: leading x^63 term is implicit in the reduction step).  This is a known
#: irreducible polynomial used by LBFS-style chunkers.
_POLY = 0xBFE6B8A5BF378D83
_DEGREE = 63


def _mod_poly(value: int) -> int:
    """Reduce a GF(2) polynomial (as an int) modulo ``_POLY``.

    ``_POLY``'s top set bit is the degree-63 leading term, so XOR-aligning
    it under the value's leading bit cancels that bit each step.
    """
    while value.bit_length() > _DEGREE:
        value ^= _POLY << (value.bit_length() - 1 - _DEGREE)
    return value


@lru_cache(maxsize=None)
def _shift_table(shift_bits: int) -> np.ndarray:
    """Table ``T[v] = v · x^shift_bits mod P`` for all byte values v."""
    table = np.zeros(256, dtype=np.uint64)
    for v in range(256):
        table[v] = _mod_poly(v << shift_bits)
    return table


@lru_cache(maxsize=8)
def _pair_tables(window: int) -> tuple[np.ndarray, ...]:
    """Byte-pair tables ``T2_j[b1 * 256 + b2] = T_j[b1] ^ T_{j+1}[b2]``.

    XOR-linearity lets two adjacent window offsets collapse into one
    gather, halving the passes of the vectorised kernel (the classic
    slicing-by-N trade of table memory for passes).  ~512 KB per table,
    so the set is built once per window width and shared by every
    chunker instance (read-only).
    """
    tables = [_shift_table(8 * (window - 1 - j)) for j in range(window)]
    return tuple(
        (tables[j][:, None] ^ tables[j + 1][None, :]).reshape(-1)
        for j in range(0, window - 1, 2)
    )


class RabinChunker(Chunker):
    """Content-defined chunker with Rabin rolling fingerprints.

    Parameters
    ----------
    avg_size:
        Target average chunk size; must be a power of two (its log2 sets
        the number of fingerprint bits compared).  Default 8 KB (§4.2).
    min_size, max_size:
        Hard bounds on chunk sizes.  Defaults 2 KB / 16 KB (§4.2).
    window:
        Rolling window width in bytes (default 48, the LBFS classic).
    """

    def __init__(
        self,
        avg_size: int = 8192,
        min_size: int = 2048,
        max_size: int = 16384,
        window: int = 48,
    ) -> None:
        if avg_size & (avg_size - 1) or avg_size <= 0:
            raise ParameterError(f"avg_size must be a power of two, got {avg_size}")
        if not 0 < min_size <= avg_size <= max_size:
            raise ParameterError(
                f"require 0 < min <= avg <= max, got ({min_size}, {avg_size}, {max_size})"
            )
        if window < 2:
            raise ParameterError(f"window must be >= 2, got {window}")
        if min_size < window:
            raise ParameterError(
                f"min_size {min_size} must cover the window {window}"
            )
        self.avg_size = avg_size
        self.min_size = min_size
        self.max_size = max_size
        self.window = window
        self._mask = np.uint64(avg_size - 1)
        #: Boundary magic in the masked bits; any constant works, but zero
        #: would fire on zero-filled regions, so pick a non-trivial value.
        self._magic = np.uint64((avg_size - 1) & 0x78F5)
        # Per-window-offset tables for the vectorised fingerprint, and the
        # "pop" table (outgoing byte) for the rolling reference.
        self._tables = [_shift_table(8 * (window - 1 - j)) for j in range(window)]
        self._pop_table = self._tables[0]
        self._push_shift = _shift_table(8)
        self._pair_tables = _pair_tables(window)

    # ------------------------------------------------------------------
    # fingerprint computation
    # ------------------------------------------------------------------
    def window_fingerprints(self, data: bytes) -> np.ndarray:
        """Fingerprints of every ``window``-byte window of ``data``.

        Entry ``i`` is the fingerprint of ``data[i : i + window]``; the
        result has ``len(data) - window + 1`` entries (empty if the input
        is shorter than the window).  Vectorised: one table gather per
        *pair* of window offsets — adjacent offsets share a 16-bit-indexed
        table (see ``_pair_tables``), so a 48-byte window costs 24 gathers
        plus one cheap uint16 index build each, not 48 uint64 gathers.
        """
        buf = np.frombuffer(data, dtype=np.uint8)
        count = buf.size - self.window + 1
        if count <= 0:
            return np.zeros(0, dtype=np.uint64)
        out = np.zeros(count, dtype=np.uint64)
        idx = np.empty(count, dtype=np.uint16)
        for pair, table in enumerate(self._pair_tables):
            j = 2 * pair
            np.left_shift(buf[j : j + count].astype(np.uint16), 8, out=idx)
            np.bitwise_or(idx, buf[j + 1 : j + 1 + count], out=idx)
            np.bitwise_xor(out, table[idx], out=out)
        if self.window % 2:  # odd windows: last offset has no pair partner
            j = self.window - 1
            np.bitwise_xor(out, self._tables[j][buf[j : j + count]], out=out)
        return out

    def rolling_fingerprints(self, data: bytes) -> np.ndarray:
        """Reference rolling implementation (byte-at-a-time push/pop).

        Produces exactly :meth:`window_fingerprints`; kept for the property
        test that certifies the vectorised path, and as executable
        documentation of the classic recurrence
        ``F' = ((F ^ POP[out]) · x^8 ^ in) mod P``.
        """
        w = self.window
        if len(data) < w:
            return np.zeros(0, dtype=np.uint64)
        pop = self._pop_table
        out = np.zeros(len(data) - w + 1, dtype=np.uint64)
        fp = 0
        for j in range(w):
            fp = _mod_poly(fp << 8) ^ data[j]
        out[0] = fp
        for i in range(1, len(data) - w + 1):
            fp ^= int(pop[data[i - 1]])
            fp = _mod_poly(fp << 8) ^ data[i + w - 1]
            out[i] = fp
        return out

    # ------------------------------------------------------------------
    # chunking
    # ------------------------------------------------------------------
    def chunk_bytes(self, data: bytes) -> Iterator[Chunk]:
        if not data:
            return
        fps = self.window_fingerprints(data)
        # Candidate cut points: a boundary *after* byte i means the window
        # ending at i matched; window ending at byte i starts at i-w+1, so
        # fps index (i - w + 1) corresponds to cut position i + 1.
        matches = np.nonzero((fps & self._mask) == self._magic)[0]
        cuts = matches + self.window  # cut positions (exclusive end)
        start = 0
        seq = 0
        size = len(data)
        while start < size:
            if size - start <= self.min_size:
                cut = size
            else:
                hi = min(start + self.max_size, size)
                idx = int(np.searchsorted(cuts, start + self.min_size, side="left"))
                cut = hi
                if idx < cuts.size and int(cuts[idx]) <= hi:
                    cut = int(cuts[idx])
            yield Chunk(data=data[start:cut], offset=start, seq=seq)
            start = cut
            seq += 1
