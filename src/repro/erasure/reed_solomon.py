"""Systematic Reed-Solomon erasure coding over GF(2^8).

Implements the (n, k) maximum-distance-separable code used by AONT-RS and
CAONT-RS (§2, §3.2): data is split into ``k`` equal-size pieces, ``n - k``
parity pieces are appended, and *any* ``k`` of the ``n`` pieces reconstruct
the original data.  The code is systematic — the first ``k`` output pieces
are the input pieces verbatim — which is what lets deduplication observe
identical shares for identical secrets.

Two generator-matrix constructions are available (``matrix="vandermonde"``
per Plank's tutorial [46,47], or ``matrix="cauchy"`` per Blomer et al. [17]);
both are MDS and interchangeable on the wire as long as encode and decode
agree.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CodingError, ParameterError
from repro.gf.matrix import (
    gf_mat_inv,
    gf_mat_vec,
    gf_mat_vec_stack,
    systematic_cauchy_matrix,
    systematic_vandermonde_matrix,
)

__all__ = ["ReedSolomon"]

_CONSTRUCTIONS = {
    "vandermonde": systematic_vandermonde_matrix,
    "cauchy": systematic_cauchy_matrix,
}


class ReedSolomon:
    """A systematic (n, k) Reed-Solomon codec.

    Parameters
    ----------
    n:
        Total number of coded pieces (one per cloud in CDStore).
    k:
        Number of pieces sufficient (and necessary) for reconstruction.
    matrix:
        Generator-matrix construction, ``"vandermonde"`` (default) or
        ``"cauchy"``.

    The codec is stateless after construction and safe to share across
    threads; encode/decode allocate fresh output arrays.
    """

    def __init__(self, n: int, k: int, matrix: str = "vandermonde") -> None:
        if not 0 < k <= n:
            raise ParameterError(f"require 0 < k <= n, got (n={n}, k={k})")
        if n > 255:
            raise ParameterError(f"GF(256) supports n <= 255, got n={n}")
        try:
            construction = _CONSTRUCTIONS[matrix]
        except KeyError:
            raise ParameterError(
                f"unknown matrix construction {matrix!r}; "
                f"expected one of {sorted(_CONSTRUCTIONS)}"
            ) from None
        self.n = n
        self.k = k
        self.matrix_name = matrix
        self.generator = construction(n, k)
        # Cache of decode matrices keyed by the tuple of piece indices used.
        self._decode_cache: dict[tuple[int, ...], np.ndarray] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReedSolomon(n={self.n}, k={self.k}, matrix={self.matrix_name!r})"

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def piece_size(self, data_size: int) -> int:
        """Size of each coded piece for a ``data_size``-byte input."""
        return -(-data_size // self.k)  # ceil division

    def encode(self, data: bytes | np.ndarray) -> list[bytes]:
        """Encode ``data`` into ``n`` pieces of equal size.

        ``data`` is padded with zeroes to a multiple of ``k`` bytes; callers
        that need exact-size recovery must remember the original length
        (CDStore stores the secret size in share metadata, §4.3).
        """
        matrix_rows = self.encode_array(data)
        return [row.tobytes() for row in matrix_rows]

    def encode_array(self, data: bytes | np.ndarray) -> np.ndarray:
        """Encode and return a ``(n, piece_size)`` uint8 array.

        Exploits the systematic structure: the top ``k`` output rows are
        the input pieces verbatim, so only the ``n - k`` parity rows incur
        Galois arithmetic.
        """
        buf = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray, memoryview)) else np.asarray(data, dtype=np.uint8)
        size = self.piece_size(buf.size)
        if size * self.k != buf.size:
            padded = np.zeros(size * self.k, dtype=np.uint8)
            padded[: buf.size] = buf
            buf = padded
        pieces = buf.reshape(self.k, size)
        out = np.empty((self.n, size), dtype=np.uint8)
        out[: self.k] = pieces
        if self.n > self.k:
            out[self.k :] = gf_mat_vec(self.generator[self.k :], pieces)
        return out

    # ------------------------------------------------------------------
    # batched encoding/decoding (stack kernels)
    # ------------------------------------------------------------------
    def encode_stack(self, stack: np.ndarray) -> np.ndarray:
        """Encode ``B`` equal-length inputs with one matrix multiply.

        ``stack`` has shape ``(B, L)`` (uint8, one input per row; rows are
        zero-padded here if ``L`` is not a multiple of ``k``).  Returns a
        ``(B, n, piece)`` array whose slice ``[b]`` equals
        ``encode_array(stack[b])``.  All ``B`` parity computations run
        through one generator-matrix application whose multiply-accumulate
        kernels each span the entire batch — the GF-Complete-style bulk
        shape that amortises numpy dispatch overhead across the slab.
        """
        stack = np.ascontiguousarray(stack, dtype=np.uint8)
        if stack.ndim != 2:
            raise ParameterError(f"expected a (B, L) stack, got shape {stack.shape}")
        batch, length = stack.shape
        size = self.piece_size(length) if length else 0
        if size == 0:
            return np.zeros((batch, self.n, 0), dtype=np.uint8)
        if size * self.k != length:
            padded = np.zeros((batch, size * self.k), dtype=np.uint8)
            padded[:, :length] = stack
            stack = padded
        pieces = stack.reshape(batch, self.k, size)
        out = np.zeros((batch, self.n, size), dtype=np.uint8)
        out[:, : self.k] = pieces
        if self.n > self.k:
            gf_mat_vec_stack(
                self.generator[self.k :], pieces, out[:, self.k :, :]
            )
        return out

    def decode_stack(
        self, indices: Sequence[int], stack: np.ndarray
    ) -> np.ndarray:
        """Decode ``B`` codewords that all survive on the same ``k`` pieces.

        ``indices`` names the ``k`` piece indices present (sorted,
        duplicates rejected); ``stack`` has shape ``(B, k, piece)`` with
        ``stack[b][j]`` holding piece ``indices[j]`` of codeword ``b``.
        Returns a ``(B, k * piece)`` array of reconstructed data (padding
        included); one inverse-matrix multiply covers the whole batch.
        """
        chosen = list(indices)
        if len(chosen) != self.k or len(set(chosen)) != self.k:
            raise CodingError(
                f"need exactly k={self.k} distinct piece indices, got {chosen}"
            )
        for idx in chosen:
            if not 0 <= idx < self.n:
                raise ParameterError(f"piece index {idx} outside [0, {self.n})")
        stack = np.ascontiguousarray(stack, dtype=np.uint8)
        if stack.ndim != 3 or stack.shape[1] != self.k:
            raise ParameterError(
                f"expected a (B, k={self.k}, piece) stack, got shape {stack.shape}"
            )
        batch, _, size = stack.shape
        if chosen == list(range(self.k)):  # systematic fast path
            return stack.reshape(batch, self.k * size)
        matrix = self._decode_matrix(tuple(chosen))
        out = np.zeros((batch, self.k, size), dtype=np.uint8)
        gf_mat_vec_stack(matrix, stack, out)
        return out.reshape(batch, self.k * size)

    def encode_batch(self, datas: Sequence[bytes | np.ndarray]) -> list[list[bytes]]:
        """Encode many inputs; element ``i`` equals ``encode(datas[i])``.

        Inputs are grouped by length so each group runs through
        :meth:`encode_stack`; mixed-length batches (ragged tails) work at
        the cost of one stack call per distinct length.
        """
        buffers = [
            np.frombuffer(data, dtype=np.uint8)
            if isinstance(data, (bytes, bytearray, memoryview))
            else np.asarray(data, dtype=np.uint8)
            for data in datas
        ]
        out: list[list[bytes] | None] = [None] * len(buffers)
        groups: dict[int, list[int]] = {}
        for i, buf in enumerate(buffers):
            groups.setdefault(buf.size, []).append(i)
        for length, members in groups.items():
            stack = np.empty((len(members), length), dtype=np.uint8)
            for row, i in enumerate(members):
                stack[row] = buffers[i]
            coded = self.encode_stack(stack)
            for row, i in enumerate(members):
                out[i] = [coded[row, j].tobytes() for j in range(self.n)]
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def _decode_matrix(self, indices: tuple[int, ...]) -> np.ndarray:
        matrix = self._decode_cache.get(indices)
        if matrix is None:
            sub = self.generator[list(indices)]
            matrix = gf_mat_inv(sub)
            self._decode_cache[indices] = matrix
        return matrix

    def decode(
        self,
        pieces: dict[int, bytes] | list[tuple[int, bytes]],
        data_size: int | None = None,
    ) -> bytes:
        """Reconstruct the original data from any ``k`` pieces.

        Parameters
        ----------
        pieces:
            Mapping (or list of pairs) from piece index (0-based, < n) to
            piece bytes.  At least ``k`` entries are required; extras are
            ignored deterministically (lowest indices win).
        data_size:
            If given, the output is truncated to this many bytes (stripping
            encode-time padding).
        """
        items = dict(pieces)
        if len(items) < self.k:
            raise CodingError(
                f"need at least k={self.k} pieces to decode, got {len(items)}"
            )
        chosen = sorted(items)[: self.k]
        for idx in chosen:
            if not 0 <= idx < self.n:
                raise ParameterError(f"piece index {idx} outside [0, {self.n})")
        sizes = {len(items[idx]) for idx in chosen}
        if len(sizes) != 1:
            raise CodingError(f"pieces have inconsistent sizes: {sorted(sizes)}")
        stacked = np.stack(
            [np.frombuffer(items[idx], dtype=np.uint8) for idx in chosen]
        )
        # Fast path: if we hold the k systematic pieces, no matrix math at all.
        if chosen == list(range(self.k)):
            data = stacked.reshape(-1)
        else:
            matrix = self._decode_matrix(tuple(chosen))
            data = gf_mat_vec(matrix, stacked).reshape(-1)
        out = data.tobytes()
        if data_size is not None:
            if data_size > len(out):
                raise CodingError(
                    f"data_size {data_size} exceeds decoded size {len(out)}"
                )
            out = out[:data_size]
        return out

    def reconstruct_pieces(
        self,
        pieces: dict[int, bytes],
        missing: list[int],
    ) -> dict[int, bytes]:
        """Rebuild lost pieces from any ``k`` survivors (repair path, §3.1).

        Returns a mapping from each index in ``missing`` to its regenerated
        piece.  This is how CDStore rebuilds shares lost to a cloud failure
        after reconstructing secrets.
        """
        data = self.decode(pieces)
        full = self.encode(data)
        for idx in missing:
            if not 0 <= idx < self.n:
                raise ParameterError(f"piece index {idx} outside [0, {self.n})")
        return {idx: full[idx] for idx in missing}
