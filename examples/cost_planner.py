#!/usr/bin/env python3
"""Cost planner: should your organisation adopt CDStore?

Reproduces the §5.6 analysis as a what-if tool: give it a weekly backup
size and an expected deduplication ratio, and it prices CDStore against
the AONT-RS multi-cloud baseline and a single encrypted cloud on the
Sept-2014 EC2/S3 models, then prints the two Figure 9 sweeps.

Run:  python examples/cost_planner.py [weekly_TB] [dedup_ratio]
"""

from __future__ import annotations

import sys

from repro.bench.reporting import format_table
from repro.costs import cost_savings, sweep_dedup_ratio, sweep_weekly_size

TB = 1000**4


def plan(weekly_tb: float, dedup_ratio: float) -> None:
    row = cost_savings(weekly_tb * TB, dedup_ratio)
    print(f"--- scenario: {weekly_tb} TB weekly backups, {dedup_ratio}x dedup, "
          f"26-week retention, (n, k)=(4, 3) ---")
    print(format_table(
        ["system", "storage $/mo", "VM $/mo", "total $/mo"],
        [
            ["CDStore", row.cdstore.storage_usd, row.cdstore.vm_usd, row.cdstore.total_usd],
            ["AONT-RS multi-cloud", row.aont_rs.storage_usd, 0.0, row.aont_rs.total_usd],
            ["single cloud", row.single_cloud.storage_usd, 0.0, row.single_cloud.total_usd],
        ],
    ))
    print(f"CDStore instances: {row.cdstore.instances[0]} x 4")
    print(f"saving vs AONT-RS:      {row.saving_vs_aont_rs:.1%}")
    print(f"saving vs single cloud: {row.saving_vs_single_cloud:.1%}\n")


def sweeps() -> None:
    print(format_table(
        ["weekly TB", "vs AONT-RS %", "vs single %"],
        [
            [r.weekly_bytes / TB, 100 * r.saving_vs_aont_rs, 100 * r.saving_vs_single_cloud]
            for r in sweep_weekly_size()
        ],
        title="Figure 9(a): saving vs weekly backup size (10x dedup)",
    ))
    print()
    print(format_table(
        ["dedup ratio", "vs AONT-RS %", "vs single %"],
        [
            [r.dedup_ratio, 100 * r.saving_vs_aont_rs, 100 * r.saving_vs_single_cloud]
            for r in sweep_dedup_ratio()
        ],
        title="Figure 9(b): saving vs dedup ratio (16 TB weekly)",
    ))


if __name__ == "__main__":
    weekly_tb = float(sys.argv[1]) if len(sys.argv) > 1 else 16.0
    ratio = float(sys.argv[2]) if len(sys.argv) > 2 else 10.0
    plan(weekly_tb, ratio)
    sweeps()
