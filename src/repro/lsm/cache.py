"""LRU caches: the LSM block cache and the container disk cache (§4.5).

One generic implementation serves both users: LevelDB-style block caching
for index lookups, and the "least-recently-used (LRU) disk cache to hold
the most recently accessed containers" of the container module.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable

from repro.errors import ParameterError

__all__ = ["LRUCache"]


class LRUCache:
    """Bounded LRU mapping with optional eviction callback and hit stats.

    ``capacity`` counts *entries* by default; pass ``size_of`` to bound by
    the summed sizes of values instead (used for byte-bounded caches).
    """

    def __init__(
        self,
        capacity: int,
        size_of: Callable[[object], int] | None = None,
        on_evict: Callable[[Hashable, object], None] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ParameterError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._size_of = size_of or (lambda value: 1)
        self._on_evict = on_evict
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self._size = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable):
        """Return the cached value or None; refreshes recency on hit."""
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value) -> None:
        """Insert/overwrite ``key`` and evict LRU entries over capacity."""
        if key in self._data:
            self._size -= self._size_of(self._data[key])
            self._data.move_to_end(key)
        self._data[key] = value
        self._size += self._size_of(value)
        while self._size > self.capacity and self._data:
            old_key, old_value = self._data.popitem(last=False)
            self._size -= self._size_of(old_value)
            if self._on_evict is not None:
                self._on_evict(old_key, old_value)

    def pop(self, key: Hashable):
        """Remove ``key`` and return its value, or None if absent.

        Explicit removal (cache invalidation) does not run ``on_evict``:
        the callback is for capacity pressure, and invalidation callers
        are already holding whatever bookkeeping the entry needs.
        """
        if key not in self._data:
            return None
        value = self._data.pop(key)
        self._size -= self._size_of(value)
        return value

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    @property
    def size(self) -> int:
        """Current size under the configured measure."""
        return self._size

    def clear(self) -> None:
        self._data.clear()
        self._size = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
