"""Fixed-size chunking (§4.2's simpler alternative).

Used by the VM-image dataset of §5.2 (4 KB fixed-size chunks).  The final
chunk may be shorter than the configured size.
"""

from __future__ import annotations

from typing import Iterator

from repro.chunking.base import Chunk, Chunker
from repro.errors import ParameterError

__all__ = ["FixedChunker"]


class FixedChunker(Chunker):
    """Split data into consecutive ``size``-byte chunks."""

    def __init__(self, size: int = 4096) -> None:
        if size <= 0:
            raise ParameterError(f"chunk size must be positive, got {size}")
        self.size = size

    def chunk_bytes(self, data: bytes) -> Iterator[Chunk]:
        for seq, offset in enumerate(range(0, len(data), self.size)):
            yield Chunk(data=data[offset : offset + self.size], offset=offset, seq=seq)
