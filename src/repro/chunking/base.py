"""Chunker interface and the :class:`Chunk` value object."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["Chunk", "Chunker"]


@dataclass(frozen=True)
class Chunk:
    """One secret produced by chunking.

    Attributes
    ----------
    data:
        Chunk contents (the *secret* fed to convergent dispersal).
    offset:
        Byte offset of the chunk within the source file.
    seq:
        Sequence number within the file (the "sequence number of the input
        secret" stored in share metadata, §4.3).
    """

    data: bytes
    offset: int
    seq: int

    @property
    def size(self) -> int:
        return len(self.data)


class Chunker(abc.ABC):
    """Splits byte streams into chunks deterministically.

    Determinism matters twice: identical files must produce identical
    chunks for deduplication to work, and content-defined boundaries must
    survive insertions (variable-size chunking's whole point).
    """

    def spec(self):
        """The picklable :class:`~repro.chunking.registry.ChunkerSpec` this
        chunker was built from, or None for hand-constructed instances —
        the same contract as the codec specs of §4.6's process workers."""
        return getattr(self, "_spec", None)

    @abc.abstractmethod
    def chunk_bytes(self, data: bytes) -> Iterator[Chunk]:
        """Yield the chunks of ``data`` in order."""

    def chunk_stream(self, blocks: Iterable[bytes]) -> Iterator[Chunk]:
        """Chunk a stream of byte blocks as one logical file.

        Default implementation buffers the stream; subclasses with rolling
        state may override for true streaming.
        """
        data = b"".join(blocks)
        yield from self.chunk_bytes(data)
