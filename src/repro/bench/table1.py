"""Table 1: comparison of secret-sharing algorithms.

For one ``(n, k)`` (and per-scheme ``r``), measures each algorithm's
*actual* storage blowup on real splits and reports it next to the paper's
closed-form column, together with the confidentiality degree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import DRBG
from repro.sharing.base import SecretSharingScheme
from repro.sharing.ida_scheme import IDAScheme
from repro.sharing.rsss import RSSS
from repro.sharing.ssms import SSMS
from repro.sharing.ssss import SSSS

__all__ = ["Table1Row", "scheme_comparison"]


@dataclass(frozen=True)
class Table1Row:
    """One scheme's Table 1 entry (analytic + measured)."""

    scheme: str
    r: int
    analytic_blowup: float
    measured_blowup: float
    deterministic: bool


def _analytic_blowup(scheme: SecretSharingScheme, secret_size: int, key_size: int = 32) -> float:
    """The paper's closed-form blowup column for each scheme."""
    n, k, r = scheme.n, scheme.k, scheme.r
    if isinstance(scheme, SSSS):
        return float(n)
    if isinstance(scheme, IDAScheme):
        return n / k
    if isinstance(scheme, RSSS):
        return n / (k - r)
    if isinstance(scheme, SSMS):
        return n / k + n * key_size / secret_size
    # AONT-RS family: (n/k) * (1 + Skey/Ssec).
    return (n / k) * (1 + key_size / secret_size)


def scheme_comparison(
    n: int = 4,
    k: int = 3,
    rsss_r: int = 1,
    secret_size: int = 8192,
    include_convergent: bool = True,
    seed: str = "table1",
) -> list[Table1Row]:
    """Build the Table 1 rows for all schemes at the given parameters."""
    from repro.core.aont_rs import AONTRS
    from repro.core.caont_rs import CAONTRS
    from repro.core.caont_rs_rivest import CAONTRSRivest

    rng = DRBG(seed)
    secret = rng.random_bytes(secret_size)
    schemes: list[SecretSharingScheme] = [
        SSSS(n, k, rng=rng.fork("ssss")),
        IDAScheme(n, k),
        RSSS(n, k, rsss_r, rng=rng.fork("rsss")),
        SSMS(n, k, rng=rng.fork("ssms")),
        AONTRS(n, k, rng=rng.fork("aont-rs")),
    ]
    if include_convergent:
        schemes.append(CAONTRSRivest(n, k))
        schemes.append(CAONTRS(n, k))
    rows = []
    for scheme in schemes:
        share_set = scheme.split(secret)
        recovered = scheme.recover(
            share_set.subset(list(range(scheme.n - scheme.k, scheme.n))),
            secret_size,
        )
        if recovered != secret:
            raise AssertionError(f"{scheme.name}: recovery failed in Table 1 run")
        rows.append(
            Table1Row(
                scheme=scheme.name,
                r=scheme.r,
                analytic_blowup=_analytic_blowup(scheme, secret_size),
                measured_blowup=share_set.storage_blowup,
                deterministic=scheme.deterministic,
            )
        )
    return rows
