"""The gateway's bytes-bounded hot-container cache.

A thread-safe wrapper around the generic :class:`~repro.lsm.cache.
LRUCache` (the same implementation behind the LSM block cache and the
container disk cache, §4.5), measured in bytes of cached share payload.

Keys are **content-addressed**: the service keys each entry by
``(user, lookup_key, window index, replica id, digest of the window's
share fingerprints)``.  Overwriting a backup changes its fingerprints,
so the new version can never hit the old version's entries — staleness
is structurally impossible, not TTL-bounded.  What content addressing
does *not* do is free the dead bytes, which is why the cache also keeps
a per-backup key index so :meth:`invalidate` can drop every entry of an
overwritten or deleted backup in one call.
"""

from __future__ import annotations

from threading import Lock

from repro.analysis.annotations import guarded_by, requires_lock
from repro.lsm.cache import LRUCache
from repro.obs.registry import REGISTRY

__all__ = ["HotContainerCache"]

# Registry-backed cache accounting (docs/OBSERVABILITY.md): the counters
# feed ``repro stats`` / the fig10 hit-ratio gate; the gauges track the
# occupancy the byte bound is enforcing.
_CACHE_HITS = REGISTRY.counter(
    "gateway_cache_hits_total", "Hot-container cache lookups served from memory"
)
_CACHE_MISSES = REGISTRY.counter(
    "gateway_cache_misses_total", "Hot-container cache lookups that went to a replica"
)
_CACHE_INVALIDATIONS = REGISTRY.counter(
    "gateway_cache_invalidations_total",
    "Entries dropped because their backup was overwritten or deleted",
)
_CACHE_BYTES = REGISTRY.gauge(
    "gateway_cache_bytes", "Share payload bytes resident in the hot-container cache"
)
_CACHE_ENTRIES = REGISTRY.gauge(
    "gateway_cache_entries", "Window entries resident in the hot-container cache"
)

#: ``(user_id, lookup_key)`` — one backup's identity.
Backup = tuple[str, bytes]


class HotContainerCache:
    """Thread-safe byte-bounded LRU of window share lists.

    Values are ``list[bytes]`` (one window's shares from one replica);
    an entry's cost is the summed share payload (floored at 1 so empty
    windows still occupy a slot and stay evictable).
    """

    #: Lock discipline (``repro analyze``, LOCK-001): the underlying
    #: LRU and the per-backup key index are shared by every connection
    #: the front-end multiplexes; both mutate only under ``_lock``.
    GUARDED_BY = guarded_by(_cache="_lock", _by_backup="_lock")

    def __init__(self, capacity_bytes: int) -> None:
        self._lock = Lock()
        self._cache = LRUCache(
            capacity_bytes,
            size_of=lambda shares: sum(len(s) for s in shares) or 1,
            on_evict=self._evicted,
        )
        self._by_backup: dict[Backup, set] = {}

    @requires_lock("_lock")
    def _evicted(self, key, _value) -> None:
        # Runs inside LRUCache.put, which only runs under self._lock:
        # keep the per-backup index in step with capacity eviction.
        backup = key[:2]
        keys = self._by_backup.get(backup)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_backup[backup]

    def get(self, key: tuple):
        """The cached share list, or None (counts toward hit stats)."""
        with self._lock:
            shares = self._cache.get(key)
        if shares is None:
            _CACHE_MISSES.inc()
        else:
            _CACHE_HITS.inc()
        return shares

    def put(self, key: tuple, shares: list) -> None:
        with self._lock:
            self._by_backup.setdefault(key[:2], set()).add(key)
            self._cache.put(key, shares)
            size, entries = self._cache.size, len(self._cache)
        _CACHE_BYTES.set(size)
        _CACHE_ENTRIES.set(entries)

    def invalidate(self, backup: Backup) -> int:
        """Drop every entry of one backup; returns entries removed."""
        with self._lock:
            keys = self._by_backup.pop(backup, set())
            removed = 0
            for key in keys:
                if self._cache.pop(key) is not None:
                    removed += 1
            size, entries = self._cache.size, len(self._cache)
        if removed:
            _CACHE_INVALIDATIONS.inc(removed)
        _CACHE_BYTES.set(size)
        _CACHE_ENTRIES.set(entries)
        return removed

    def stats_snapshot(self) -> dict:
        """Every stats field under **one** lock acquisition.

        The per-field properties below each take the lock separately, so
        reading several of them in a row can interleave with concurrent
        puts and report, e.g., a hit count from before an eviction next
        to a byte count from after it.  Multi-field consumers (the
        gateway's ``stats()`` view, the CLI tables) read this snapshot
        instead.
        """
        with self._lock:
            cache = self._cache
            return {
                "capacity_bytes": cache.capacity,
                "size_bytes": cache.size,
                "entries": len(cache),
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate,
            }

    # ------------------------------------------------------------------
    # observability (benchmark + stats surface)
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        with self._lock:
            return self._cache.capacity

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return self._cache.size

    @property
    def entries(self) -> int:
        with self._lock:
            return len(self._cache)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._cache.hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._cache.misses

    @property
    def hit_rate(self) -> float:
        with self._lock:
            return self._cache.hit_rate
