"""Shamir's secret sharing scheme (SSSS) [54].

The r = k - 1 extreme of Table 1: perfect (information-theoretic)
confidentiality, at the price of a storage blowup of ``n`` — every share is
as large as the secret, the same overhead as full replication.

Each secret byte is the constant term of an independent random polynomial of
degree ``k - 1`` over GF(2^8); share ``i`` is the evaluation of all those
polynomials at ``x = i + 1``.  The implementation vectorises across the
whole secret: one :func:`~repro.gf.gf256.gf_poly_eval_bytes` call per share.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.drbg import DRBG, system_random_bytes
from repro.errors import CodingError
from repro.gf.gf256 import gf_div, gf_mul, gf_mul_bytes_into, gf_poly_eval_bytes
from repro.sharing.base import SecretSharingScheme, ShareSet

__all__ = ["SSSS"]


class SSSS(SecretSharingScheme):
    """(n, k) Shamir sharing with confidentiality degree r = k - 1."""

    name = "ssss"
    deterministic = False

    def __init__(self, n: int, k: int, rng: DRBG | None = None) -> None:
        super().__init__(n, k, r=k - 1)
        self._rng = rng

    def _random_bytes(self, length: int) -> bytes:
        if self._rng is not None:
            return self._rng.random_bytes(length)
        return system_random_bytes(length)

    # ------------------------------------------------------------------
    def split(self, secret: bytes) -> ShareSet:
        size = len(secret)
        coeffs = np.zeros((self.k, size), dtype=np.uint8)
        coeffs[0] = np.frombuffer(secret, dtype=np.uint8)
        if self.k > 1 and size:
            rand = self._random_bytes((self.k - 1) * size)
            coeffs[1:] = np.frombuffer(rand, dtype=np.uint8).reshape(
                self.k - 1, size
            )
        shares = tuple(
            gf_poly_eval_bytes(coeffs, x).tobytes() for x in range(1, self.n + 1)
        )
        return ShareSet(shares=shares, secret_size=size, scheme=self.name)

    def recover(self, shares: dict[int, bytes], secret_size: int) -> bytes:
        self._check_recover_args(shares, secret_size)
        chosen = sorted(shares)[: self.k]
        xs = [idx + 1 for idx in chosen]
        sizes = {len(shares[idx]) for idx in chosen}
        if len(sizes) != 1:
            raise CodingError(f"shares have inconsistent sizes: {sorted(sizes)}")
        width = sizes.pop()
        # Lagrange interpolation at x = 0, vectorised over all byte positions:
        # secret = XOR_i  L_i(0) * share_i,  L_i(0) = prod_{j != i} x_j / (x_j ^ x_i)
        out = np.zeros(width, dtype=np.uint8)
        for i, xi in enumerate(xs):
            li = 1
            for j, xj in enumerate(xs):
                if i == j:
                    continue
                li = gf_mul(li, gf_div(xj, xj ^ xi))
            share = np.frombuffer(shares[chosen[i]], dtype=np.uint8)
            gf_mul_bytes_into(li, share, out)
        return out.tobytes()[:secret_size]

    def expected_blowup(self, secret_size: int) -> float:
        """Every share equals the secret size: blowup = n (Table 1)."""
        return float(self.n)
