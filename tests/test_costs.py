"""Cost analysis: S3 tiers, EC2 instance selection, Figure 9 claims."""

import pytest

from repro.costs.analysis import (
    aont_rs_monthly_cost,
    cdstore_monthly_cost,
    cost_savings,
    single_cloud_monthly_cost,
    sweep_dedup_ratio,
    sweep_weekly_size,
)
from repro.costs.pricing import (
    GB,
    TB,
    cheapest_instance_for,
    ec2_catalog,
    s3_monthly_cost,
)
from repro.errors import ParameterError


class TestS3Pricing:
    def test_first_tier_rate(self):
        assert s3_monthly_cost(GB) == pytest.approx(0.03)

    def test_around_30_usd_per_tb(self):
        """§5.6: 'charges around US$30 per TB per month'."""
        assert 27 <= s3_monthly_cost(TB) / (TB / 1000**4) <= 31

    def test_tiering_is_concave(self):
        small = s3_monthly_cost(10 * TB) / 10
        large = s3_monthly_cost(1000 * TB) / 1000
        assert large < small

    def test_zero_storage_free(self):
        assert s3_monthly_cost(0) == 0.0

    def test_negative_raises(self):
        with pytest.raises(ParameterError):
            s3_monthly_cost(-1)


class TestEC2Catalog:
    def test_price_range_matches_paper(self):
        """§5.6: instances cost 'around US$60~1,300 per month'."""
        catalog = ec2_catalog()
        assert catalog[0].monthly_usd == pytest.approx(60.0)
        assert catalog[-1].monthly_usd <= 1300.0

    def test_cheapest_that_fits(self):
        tiny = cheapest_instance_for(1 * GB)
        assert tiny.name == "c3.large"
        big = cheapest_instance_for(2 * TB)
        assert big.local_storage_bytes >= 2 * TB
        # It must be the *cheapest* fitting instance.
        for inst in ec2_catalog():
            if inst.local_storage_bytes >= 2 * TB:
                assert big.monthly_usd <= inst.monthly_usd

    def test_oversized_index_raises(self):
        with pytest.raises(ParameterError):
            cheapest_instance_for(100 * TB)
        with pytest.raises(ParameterError):
            cheapest_instance_for(-1)


class TestSystemCosts:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            cdstore_monthly_cost(0)
        with pytest.raises(ParameterError):
            cdstore_monthly_cost(TB, dedup_ratio=0.5)
        with pytest.raises(ParameterError):
            single_cloud_monthly_cost(TB, retention_weeks=0)

    def test_cdstore_has_vm_costs_baselines_do_not(self):
        c = cdstore_monthly_cost(16 * TB)
        a = aont_rs_monthly_cost(16 * TB)
        s = single_cloud_monthly_cost(16 * TB)
        assert c.vm_usd > 0
        assert a.vm_usd == 0 and s.vm_usd == 0

    def test_paper_magnitudes_at_16tb(self):
        """§5.6 case study: AONT-RS ≈ $16,400/mo, single-cloud ≈ $12,250/mo,
        CDStore ≈ $3,540/mo (we accept ±35% on our transcribed prices)."""
        row = cost_savings(16 * TB, dedup_ratio=10)
        assert row.aont_rs.total_usd == pytest.approx(16_400, rel=0.15)
        assert row.single_cloud.total_usd == pytest.approx(12_250, rel=0.15)
        assert row.cdstore.total_usd == pytest.approx(3_540, rel=0.35)

    def test_headline_70_percent_saving(self):
        """The paper's headline: ≈70% saving at 16 TB weekly, 10x dedup."""
        row = cost_savings(16 * TB, dedup_ratio=10)
        assert row.saving_vs_aont_rs >= 0.70
        assert row.saving_vs_single_cloud >= 0.70

    def test_saving_vs_aont_exceeds_saving_vs_single(self):
        row = cost_savings(16 * TB, dedup_ratio=10)
        assert row.saving_vs_aont_rs > row.saving_vs_single_cloud


class TestFigure9Shapes:
    def test_fig9a_savings_grow_with_size(self):
        rows = sweep_weekly_size(weekly_tb_list=(1, 4, 16, 64, 256))
        savings = [r.saving_vs_aont_rs for r in rows]
        assert savings[-1] > savings[0]
        assert savings[2] >= 0.70  # 16 TB point

    def test_fig9b_savings_grow_with_dedup(self):
        rows = sweep_dedup_ratio(ratios=(2, 10, 30, 50))
        savings = [r.saving_vs_aont_rs for r in rows]
        assert savings == sorted(savings)
        # §5.6: 70~80%+ for ratios between 10x and 50x.
        assert all(s >= 0.70 for s in savings[1:])

    def test_fig9b_low_dedup_can_lose(self):
        """At dedup ratio 1 the redundancy+VM overhead can exceed the
        single-cloud baseline — dedup is what pays for dispersal."""
        row = cost_savings(16 * TB, dedup_ratio=1)
        assert row.saving_vs_single_cloud < 0.2

    def test_instance_switching_creates_jagged_curve(self):
        """§5.6: 'the jagged curves are due to the switch of the cheapest
        EC2 instance'."""
        rows = sweep_weekly_size(weekly_tb_list=(0.25, 1, 4, 16, 64, 256))
        instances = {r.cdstore.instances[0] for r in rows}
        assert len(instances) > 2
