"""The networked serving layer (§4's real deployment shape).

Three pieces turn the in-process client↔server calls into a distributed
system without changing a byte of what travels:

* :mod:`repro.net.wire` — the length-prefixed binary frame protocol
  covering the full :class:`~repro.server.server.CDStoreServer` surface,
  with typed error frames and hard frame-size caps;
* :mod:`repro.net.server` — a concurrent (thread-per-connection) TCP
  server hosting one CDStore server per cloud, streaming ``fetch_shares``
  replies as bounded frames;
* :mod:`repro.net.client` — :class:`~repro.net.client.RemoteServerProxy`,
  a reconnecting stand-in that duck-types the server surface so the comm
  engine, client and system treat ``tcp://host:port`` like any other
  cloud.
"""

from repro.net.client import RemoteCloud, RemoteServerProxy, parse_cloud_spec
from repro.net.server import CDStoreTCPServer

__all__ = [
    "CDStoreTCPServer",
    "RemoteCloud",
    "RemoteServerProxy",
    "parse_cloud_spec",
]
