"""CTR-mode keystreams and the AONT mask generator ``G``.

The paper's OAEP-based AONT computes a mask ``G(h) = E(h, C)`` — AES-256
encrypting a constant-value block ``C`` the size of the secret, keyed by the
convergent hash ``h`` (§3.2, Eq. 3).  Encrypting a large constant buffer
with a block cipher is counter-mode keystream generation (ECB over a
constant would repeat blocks), so ``G`` is realised as AES-CTR over zeroes.

Rivest's AONT [53] instead masks 16-byte word ``i`` with ``E(key, i)`` —
which is *exactly keystream block i* of the same CTR stream.  The
:class:`AesCtr` class therefore serves both transforms: bulk keystream for
OAEP (one encryption pass over a large block) and per-block access for the
word-by-word Rivest transform, with identical bytes either way.  This is
what lets the Figure 5 benchmark reproduce the paper's cost comparison —
same masks, different call granularity.

Backends
--------
``pure``
    The from-scratch vectorised AES in :mod:`repro.crypto.aes`.  Always
    available; the authoritative implementation for tests.
``openssl``
    Delegates CTR to the host ``cryptography`` wheel (OpenSSL bindings),
    mirroring how the paper's C++ prototype calls OpenSSL [4].  Selected by
    default when available, because encoding-throughput experiments are
    otherwise dominated by interpreter overhead.

Both backends produce identical bytes; a property test pins them together.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.aes import AES
from repro.errors import CryptoError, ParameterError

__all__ = [
    "AesCtr",
    "ctr_keystream",
    "mask_block",
    "set_aes_backend",
    "aes_backend_name",
    "available_aes_backends",
]

try:  # pragma: no cover - availability depends on host environment
    from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

    _HAVE_OPENSSL = True
except Exception:  # pragma: no cover
    _HAVE_OPENSSL = False

_BACKEND_NAMES = ["pure"] + (["openssl"] if _HAVE_OPENSSL else [])
_active_backend = "openssl" if _HAVE_OPENSSL else "pure"


def available_aes_backends() -> list[str]:
    """Names of the AES backends usable in this environment."""
    return list(_BACKEND_NAMES)


def aes_backend_name() -> str:
    """Name of the currently active AES backend."""
    return _active_backend


def set_aes_backend(name: str) -> None:
    """Select the AES backend (``"pure"`` or ``"openssl"``).

    Raises :class:`ParameterError` for unknown or unavailable backends.
    """
    global _active_backend
    if name not in _BACKEND_NAMES:
        raise ParameterError(
            f"unknown AES backend {name!r}; available: {_BACKEND_NAMES}"
        )
    _active_backend = name


class AesCtr:
    """AES in counter mode with a 16-byte big-endian block counter.

    Keystream block ``i`` is ``E(key, i)`` where ``i`` is encoded as the
    full 16-byte counter block — i.e. the stream starts from counter 0 with
    no nonce.  Determinism in the key is exactly what convergent dispersal
    requires (the "nonce" role is played by the per-secret key ``h``).
    """

    def __init__(self, key: bytes, backend: str | None = None) -> None:
        if len(key) not in (16, 24, 32):
            raise CryptoError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key = bytes(key)
        self.backend = backend or _active_backend
        if self.backend not in _BACKEND_NAMES:
            raise ParameterError(f"unknown AES backend {self.backend!r}")
        self._pure_cipher: AES | None = None

    # ------------------------------------------------------------------
    def _pure(self) -> AES:
        if self._pure_cipher is None:
            self._pure_cipher = AES(self.key)
        return self._pure_cipher

    @staticmethod
    def _counter_blocks(start: int, count: int) -> np.ndarray:
        blocks = np.zeros((count, 16), dtype=np.uint8)
        idx = np.arange(start, start + count, dtype=np.uint64)
        for byte in range(8):
            blocks[:, 15 - byte] = (idx >> np.uint64(8 * byte)).astype(np.uint8)
        return blocks

    def keystream(self, length: int, block_offset: int = 0) -> bytes:
        """Return ``length`` keystream bytes starting at ``block_offset``.

        ``block_offset`` addresses 16-byte keystream blocks, so
        ``keystream(16, i)`` is Rivest's per-word mask ``E(key, i)`` while
        ``keystream(n)`` is the bulk OAEP mask — the same byte stream.
        """
        if length < 0:
            raise ParameterError(f"negative keystream length {length}")
        if block_offset < 0:
            raise ParameterError(f"negative block offset {block_offset}")
        if length == 0:
            return b""
        nblocks = -(-length // 16)
        if self.backend == "openssl":
            iv = int(block_offset).to_bytes(16, "big")
            enc = Cipher(algorithms.AES(self.key), modes.CTR(iv)).encryptor()
            return enc.update(b"\0" * (nblocks * 16))[:length]
        stream = self._pure().encrypt_blocks(
            self._counter_blocks(block_offset, nblocks)
        )
        return stream.tobytes()[:length]

    def block(self, index: int) -> bytes:
        """Keystream block ``index`` — Rivest's per-word mask ``E(key, i)``."""
        return self.keystream(16, block_offset=index)

    def word_stream(self, count: int):
        """Yield keystream blocks 0..count-1 one encryption call at a time.

        This is the faithful cost model of Rivest's AONT (§2): ``count``
        *separate* small-block encryption operations, versus the single
        bulk pass OAEP uses — the difference Figure 5 measures.  The bytes
        produced equal ``keystream(16 * count)``.
        """
        if count < 0:
            raise ParameterError(f"negative word count {count}")
        if self.backend == "openssl":
            enc = Cipher(
                algorithms.AES(self.key), modes.CTR(b"\0" * 16)
            ).encryptor()
            zero = b"\0" * 16
            for _ in range(count):
                yield enc.update(zero)
        else:
            cipher = self._pure()
            for i in range(count):
                yield cipher.encrypt_blocks(self._counter_blocks(i, 1)).tobytes()


def ctr_keystream(key: bytes, length: int, block_offset: int = 0) -> bytes:
    """One-shot helper: ``AesCtr(key).keystream(length, block_offset)``."""
    return AesCtr(key).keystream(length, block_offset)


def mask_block(key: bytes, length: int) -> bytes:
    """The AONT mask generator ``G(h) = E(h, C)`` of Eq. (3).

    ``C`` is the constant (zero) block of ``length`` bytes; the result is
    its AES-CTR encryption under ``key``.  Deterministic in ``(key,
    length)``, which is what makes CAONT-RS convergent.
    """
    return ctr_keystream(key, length)
