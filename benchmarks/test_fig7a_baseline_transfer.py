"""Figure 7(a) — single-client baseline upload/download speeds.

Paper (MB/s): LAN 77.5 (uniq) / 149.9 (dup) / 99.2 (down); cloud testbed
6.2 / 57.1 / 12.3.  Shape claims: unique uploads are bounded by k/n of the
network; duplicate uploads are compute-bound (LAN) or dedup-round-trip
bound (cloud) and far faster; downloads sit just under the link speed.
"""

from conftest import emit

from repro.bench.reporting import format_table
from repro.bench.transfer import baseline_transfer_speeds
from repro.cloud.testbed import cloud_testbed, lan_testbed

PAPER = {
    "lan": (77.5, 149.9, 99.2),
    "cloud": (6.2, 57.1, 12.3),
}


def test_fig7a(benchmark):
    def run():
        return [baseline_transfer_speeds(tb) for tb in (lan_testbed(), cloud_testbed())]

    results = benchmark(run)

    table = format_table(
        ["testbed", "upload uniq", "upload dup", "download", "paper (u/d/dl)"],
        [
            [
                s.testbed,
                s.upload_unique_mbps,
                s.upload_duplicate_mbps,
                s.download_mbps,
                "/".join(str(v) for v in PAPER[s.testbed]),
            ]
            for s in results
        ],
        title="Figure 7(a): single-client baseline speeds (MB/s), (n, k)=(4, 3), 2 GB",
    )
    emit("fig7a", table)

    for s in results:
        paper_uniq, paper_dup, paper_down = PAPER[s.testbed]
        assert abs(s.upload_unique_mbps - paper_uniq) / paper_uniq < 0.20
        assert abs(s.upload_duplicate_mbps - paper_dup) / paper_dup < 0.20
        assert abs(s.download_mbps - paper_down) / paper_down < 0.20
        # Structural claims.
        assert s.upload_duplicate_mbps > s.download_mbps > s.upload_unique_mbps
