"""Encode workers and the streaming slab queue for the comm engine (§4.6).

CPython's GIL serialises the Python-level share bookkeeping between the
GIL-releasing hashlib/OpenSSL calls, so a thread pool cannot reproduce the
paper's near-linear encoding speedup (Figure 5a).  This module supplies the
pool that can: slabs of secrets are shipped to worker *processes*, each of
which rebuilds the client's codec once from a picklable **codec spec**
(:meth:`repro.core.convergent.ConvergentDispersal.spec`), caches it for the
life of the worker, and encodes whole slabs with the batched kernels
(:meth:`~repro.core.convergent.ConvergentDispersal.encode_batch`).

It also owns the **streaming slab queue** (:class:`SlabbedShareSets`): the
ordered, bounded hand-off between the encode stage and the per-cloud upload
workers.  Encode slabs are submitted lazily — at most ``depth`` slabs are
in flight or materialised beyond the slowest consumer — and a slab's share
sets are dropped the moment every cloud worker has drained it, so a
multi-gigabyte backup never holds more than ``depth`` slabs of shares in
memory while wire time hides behind encoding (Figure 4a's pipelining).

Design notes:

* **Per-worker codec cache** — generator matrices and decode caches are
  rebuilt once per (spec, worker) pair, not once per slab; repeated uploads
  reuse the warm codec.
* **Slabs, not secrets** — one IPC round-trip per ~1 MB slab instead of per
  8 KB secret keeps pickling overhead well under the encode cost and gives
  each worker a batch large enough for the vectorised kernels to pay off.
* **Shared-memory payloads** — when the platform supports
  ``multiprocessing.shared_memory`` (see :class:`SharedSlabTransport`),
  a slab's secrets are written once into a shared segment and the task
  pickle carries only ``(segment name, spans)``; the worker reads the
  payload in place, so the request side of the IPC copy disappears at
  large backup sizes.  Segments are unlinked by the slab-release hook the
  moment every cloud has drained the slab, bounding shared memory to the
  pipeline window.
* **Warm-up before threads** — the pool forks its workers eagerly (see
  :meth:`ProcessEncodePool.warm`) so no worker inherits a transiently held
  lock from the comm engine's cloud-worker threads.
* **Credit-based backpressure** — a new slab is submitted only when fewer
  than ``depth`` slabs sit between the submission frontier and the slowest
  consumer, so a slow cloud applies backpressure to the encode stage
  instead of letting encoded shares pile up unboundedly.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, Sequence

try:  # POSIX shared memory; absent on some minimal platforms.
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - exercised only on such platforms
    resource_tracker = None
    shared_memory = None

from repro.analysis.annotations import guarded_by
from repro.core.convergent import ConvergentDispersal
from repro.errors import ParameterError
from repro.sharing.base import ShareSet

__all__ = [
    "ENCODE_SLAB_BYTES",
    "WORKER_MODES",
    "ProcessEncodePool",
    "SharedSlabTransport",
    "SlabbedShareSets",
    "SlabStream",
    "encode_shm_slab_in_worker",
    "encode_slab_in_worker",
    "plan_windows",
    "shared_slabs_available",
    "slab_spans",
]

#: Supported encode-pool flavours (``CommEngine(workers=...)``).
WORKER_MODES = ("thread", "process")

#: Target bytes of secrets per encode slab.  Big enough that pickling and
#: scheduling are noise next to the encode work; small enough that a file
#: splits into several slabs and encoding overlaps transfer per §4.6.
ENCODE_SLAB_BYTES = 1 << 20

#: Worker-process codec cache: spec tuple -> live dispersal.  Populated
#: lazily inside each worker; never shared across processes.
_WORKER_CODECS: dict[tuple, ConvergentDispersal] = {}


def _codec_for(spec: tuple) -> ConvergentDispersal:
    codec = _WORKER_CODECS.get(spec)
    if codec is None:
        codec = ConvergentDispersal.from_spec(spec)
        _WORKER_CODECS[spec] = codec
    return codec


def encode_slab_in_worker(spec: tuple, secrets: list[bytes]) -> list[ShareSet]:
    """Encode one slab inside a worker process (top level, so picklable)."""
    return _codec_for(spec).encode_batch(secrets)


def shared_slabs_available() -> bool:
    """Whether slab payloads can travel via POSIX shared memory."""
    return shared_memory is not None


def _attach_slab_segment(name: str):
    """Attach to a parent-owned slab segment from a worker process.

    The parent owns the segment's lifetime (it unlinks on slab release),
    so the attaching side must not register it with its own
    ``resource_tracker`` — otherwise every worker's tracker would try to
    clean up (and warn about) segments it never owned.
    """
    segment = shared_memory.SharedMemory(name=name)
    if resource_tracker is not None:
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    return segment


def encode_shm_slab_in_worker(
    spec: tuple, segment_name: str, spans: list[tuple[int, int]]
) -> list[ShareSet]:
    """Encode one shared-memory slab inside a worker process.

    The slab payload was written once into the segment by the parent's
    :class:`SharedSlabTransport`; each secret is the ``(offset, length)``
    span recorded in ``spans``, so the task pickle carries only the
    segment name and span list — the per-secret byte copy through the IPC
    pipe disappears.
    """
    codec = _codec_for(spec)
    segment = _attach_slab_segment(segment_name)
    try:
        view = segment.buf
        secrets = [bytes(view[offset : offset + length]) for offset, length in spans]
    finally:
        segment.close()
    return codec.encode_batch(secrets)


class SharedSlabTransport:
    """Parent-side shared-memory arena for in-flight encode slabs.

    One segment per slab: :meth:`publish` writes the slab's secrets once
    and returns the ``(segment name, spans)`` address a worker resolves
    with :func:`encode_shm_slab_in_worker`; :meth:`release` — wired to the
    credit-based :class:`SlabbedShareSets` release hook — unlinks the
    segment the moment every cloud worker has drained the slab, so shared
    memory held never exceeds the pipeline window.  :meth:`close` sweeps
    stragglers on error paths; a worker that loses the race and finds the
    segment gone fails its (already abandoned) slab, nothing else.
    """

    #: Lock discipline (``repro analyze``, LOCK-001): the segment registry
    #: is shared between publishers, the slab-release hook (called from
    #: cloud worker threads) and the error-path sweep.
    GUARDED_BY = guarded_by(_segments="_lock")

    def __init__(self) -> None:
        if not shared_slabs_available():
            raise ParameterError(
                "multiprocessing.shared_memory is unavailable on this platform"
            )
        self._segments: dict[int, "shared_memory.SharedMemory"] = {}
        self._lock = threading.Lock()

    def publish(
        self, slab: int, secrets: Sequence[bytes]
    ) -> tuple[str, list[tuple[int, int]]]:
        """Write one slab's secrets into a fresh segment; return its address."""
        total = sum(len(secret) for secret in secrets)
        segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
        # Register the segment *before* touching its buffer: if a span
        # write (or the caller's worker submission) fails, the close()
        # sweep owns the segment and unlinks it — created-but-unregistered
        # segments would outlive the process (checker rule LIFE-001).
        with self._lock:
            self._segments[slab] = segment
        spans: list[tuple[int, int]] = []
        view = segment.buf
        offset = 0
        for secret in secrets:
            view[offset : offset + len(secret)] = secret
            spans.append((offset, len(secret)))
            offset += len(secret)
        return segment.name, spans

    def _destroy(self, segment) -> None:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already swept
            pass

    def release(self, slab: int) -> None:
        """Unlink ``slab``'s segment (idempotent)."""
        with self._lock:
            segment = self._segments.pop(slab, None)
        if segment is not None:
            self._destroy(segment)

    def close(self) -> None:
        """Unlink every remaining segment (error-path sweep, idempotent)."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
        for segment in segments:
            self._destroy(segment)

    def __enter__(self) -> "SharedSlabTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)


def _worker_warmup() -> None:
    """No-op task used to fork pool workers eagerly."""


def slab_spans(
    sizes: Sequence[int],
    width: int,
    slab_bytes: int = ENCODE_SLAB_BYTES,
) -> list[tuple[int, int]]:
    """Split ``len(sizes)`` secrets into contiguous ``[start, end)`` slabs.

    Aims for ``slab_bytes`` per slab but always produces at least
    ``2 * width`` slabs (when there are that many secrets) so a pool of
    ``width`` workers load-balances even when one slab runs long.
    """
    count = len(sizes)
    if count == 0:
        return []
    if width < 1:
        raise ParameterError(f"width must be >= 1, got {width}")
    total = sum(sizes)
    wanted = max(2 * width, -(-total // slab_bytes)) if width > 1 else max(
        1, -(-total // slab_bytes)
    )
    wanted = min(wanted, count)
    target = -(-total // wanted)
    spans: list[tuple[int, int]] = []
    start = 0
    acc = 0
    for i, size in enumerate(sizes):
        acc += size
        if acc >= target:
            spans.append((start, i + 1))
            start = i + 1
            acc = 0
    if start < count:
        spans.append((start, count))
    return spans


def plan_windows(
    sizes: Sequence[int], window_bytes: int
) -> list[tuple[int, int]]:
    """Group ``len(sizes)`` items into contiguous ``[start, end)`` windows.

    Each window accumulates items until it reaches ``window_bytes`` (every
    window holds at least one item, so oversized items get a window of
    their own).  This is the restore-side mirror of :func:`slab_spans`:
    the client fetches and decodes one window of shares at a time instead
    of materialising the whole file's share map before the first decode.
    """
    if window_bytes < 1:
        raise ParameterError(f"window_bytes must be >= 1, got {window_bytes}")
    windows: list[tuple[int, int]] = []
    start = 0
    acc = 0
    for i, size in enumerate(sizes):
        acc += size
        if acc >= window_bytes:
            windows.append((start, i + 1))
            start = i + 1
            acc = 0
    if start < len(sizes):
        windows.append((start, len(sizes)))
    return windows


class SlabStream:
    """One consumer's ordered view over a :class:`SlabbedShareSets`.

    Iterating yields ``(seq, share_set)`` pairs in global sequence order,
    blocking only on the slab that holds the next secret.  Use as a context
    manager: on exit (normal or exceptional) the consumer's claims on all
    remaining slabs are released, so a cloud worker that dies mid-upload
    cannot deadlock the other consumers behind the backpressure window.
    """

    def __init__(self, owner: "SlabbedShareSets") -> None:
        self._owner = owner
        self._next_slab = 0
        self._closed = False

    def __enter__(self) -> "SlabStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release this consumer's claim on every slab not yet drained."""
        if not self._closed:
            self._closed = True
            self._owner._release_range(self._next_slab, len(self._owner._spans))

    def __iter__(self):
        for slab_idx, (start, _end) in enumerate(self._owner._spans):
            shares = self._owner._result(slab_idx)
            for offset, share_set in enumerate(shares):
                yield start + offset, share_set
            self._next_slab = slab_idx + 1
            self._owner._release_range(slab_idx, slab_idx + 1)


class SlabbedShareSets:
    """Ordered, bounded view over the ShareSets of in-flight encode slabs.

    Two construction modes:

    * **eager** — ``SlabbedShareSets(futures, spans)``: every slab is
      already submitted (the pre-streaming behaviour; also what
      ``pipeline_depth == 1`` degenerates to).
    * **lazy** — ``SlabbedShareSets(spans=spans, submit=fn, depth=d,
      consumers=c)``: ``submit(start, end) -> Future`` is called for at
      most ``depth`` slabs beyond the slowest consumer; when all ``c``
      consumers have drained a slab its share sets are dropped and the
      next pending slab is submitted.

    Indexing by global secret sequence (``view[seq]``) blocks only on the
    slab that holds that secret, so each cloud worker drains slabs in
    order while later slabs are still encoding — the Figure 4(a)
    pipelining at slab granularity.  Safe for concurrent readers:
    :meth:`Future.result` is thread-safe and caches its value.

    ``release`` (optional) is called exactly once per slab index, in slab
    order, the moment every consumer has drained that slab — the hook the
    shared-memory transport uses to unlink a slab's segment as soon as its
    shares are on the wire.
    """

    #: Lock discipline (``repro analyze``, LOCK-001): the slab pipeline
    #: state is coordinated through ``_cond`` — mutations happen under it
    #: (``with self._cond:``) or inside ``*_locked`` helpers whose callers
    #: hold it.
    GUARDED_BY = guarded_by(
        _futures="_cond", _drained="_cond", _freed="_cond", _submitted="_cond"
    )

    def __init__(
        self,
        futures: Sequence[Future] | None = None,
        spans: Sequence[tuple[int, int]] = (),
        *,
        submit: Callable[[int, int], Future] | None = None,
        depth: int = 0,
        consumers: int = 1,
        release: Callable[[int], None] | None = None,
    ) -> None:
        if (futures is None) == (submit is None):
            raise ParameterError("pass exactly one of futures= or submit=")
        if futures is not None and len(futures) != len(spans):
            raise ParameterError(
                f"got {len(futures)} futures for {len(spans)} spans"
            )
        if consumers < 1:
            raise ParameterError(f"consumers must be >= 1, got {consumers}")
        self._spans = list(spans)
        self._starts = [start for start, _ in self._spans]
        self._count = self._spans[-1][1] if self._spans else 0
        self._consumers = consumers
        self._submit = submit
        self._release_hook = release
        self._depth = depth if depth > 0 else len(self._spans)
        self._cond = threading.Condition()
        self._futures: list[Future | None] = (
            list(futures) if futures is not None else [None] * len(self._spans)
        )
        #: Per-slab count of consumers that have fully drained it.
        self._drained = [0] * len(self._spans)
        #: Number of slabs fully released by every consumer (prefix).
        self._freed = 0
        self._submitted = len(self._spans) if futures is not None else 0
        if submit is not None:
            with self._cond:
                self._pump_locked()

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # submission / backpressure
    # ------------------------------------------------------------------
    def _pump_locked(self) -> None:
        """Submit pending slabs while the backpressure window has room.

        A submit that *raises* (a broken process pool, a full ``/dev/shm``
        on the shared-memory publish) is captured as a failed future: the
        consumers observe the error at ``result()`` and unwind through
        their stream context managers.  Swallowing it into the slab slot —
        rather than letting it escape whichever consumer happened to turn
        the pump — is what keeps the other cloud workers from blocking
        forever on a slot that would otherwise stay None.
        """
        while (
            self._submit is not None
            and self._submitted < len(self._spans)
            and self._submitted - self._freed < self._depth
        ):
            start, end = self._spans[self._submitted]
            try:
                future = self._submit(start, end)
            except BaseException as exc:
                future = Future()
                future.set_exception(exc)
            self._futures[self._submitted] = future
            self._submitted += 1
            self._cond.notify_all()

    def _release_range(self, first: int, last: int) -> None:
        """Record one consumer's release of slabs ``[first, last)``."""
        if first >= last:
            return
        with self._cond:
            for slab in range(first, last):
                self._drained[slab] += 1
            while (
                self._freed < len(self._spans)
                and self._drained[self._freed] >= self._consumers
            ):
                # Every consumer is done with this slab: drop our reference
                # so the Future (and its cached ShareSet list) can be
                # collected, fire the release hook (shared-memory segments
                # unlink here), then let the next slab enter the window.
                self._futures[self._freed] = None
                if self._release_hook is not None:
                    self._release_hook(self._freed)
                self._freed += 1
            self._pump_locked()

    def _result(self, slab: int) -> list[ShareSet]:
        """Share sets of ``slab``, waiting for its submission if lazy."""
        with self._cond:
            while self._futures[slab] is None:
                if slab < self._freed:
                    raise ParameterError(
                        f"slab {slab} was already drained by all consumers"
                    )
                self._cond.wait()
            future = self._futures[slab]
        return future.result()

    def stream(self) -> SlabStream:
        """An ordered consumer over all slabs (one per cloud worker)."""
        return SlabStream(self)

    def __getitem__(self, seq: int) -> ShareSet:
        if not 0 <= seq < self._count:
            raise IndexError(f"secret sequence {seq} outside [0, {self._count})")
        slab = bisect_right(self._starts, seq) - 1
        return self._result(slab)[seq - self._starts[slab]]


class ProcessEncodePool:
    """A :class:`ProcessPoolExecutor` that encodes slabs via codec specs.

    The pool is constructed lazily but forked eagerly (:meth:`warm`), and
    every submission ships ``(spec, secrets)`` — never live codec objects —
    so the only requirement on the dispersal is a non-None
    :meth:`~repro.core.convergent.ConvergentDispersal.spec`.
    """

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ParameterError(f"width must be >= 1, got {width}")
        self.width = width
        self._pool: ProcessPoolExecutor | None = None

    def warm(self) -> None:
        """Start the pool and fork all workers now.

        Forking before the comm engine's cloud-worker threads get busy
        means no child can inherit a lock held mid-operation by a sibling
        thread.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.width)
            for future in [
                self._pool.submit(_worker_warmup) for _ in range(self.width)
            ]:
                future.result()

    def submit(
        self, dispersal: ConvergentDispersal, secrets: list[bytes]
    ) -> Future:
        """Encode ``secrets`` on a worker; resolves to a ShareSet list."""
        spec = dispersal.spec()
        if spec is None:
            raise ParameterError(
                f"dispersal for scheme {dispersal.scheme!r} has no picklable "
                "spec; process workers cannot encode it"
            )
        self.warm()
        assert self._pool is not None
        return self._pool.submit(encode_slab_in_worker, spec, secrets)

    def submit_shared(
        self,
        dispersal: ConvergentDispersal,
        segment_name: str,
        spans: list[tuple[int, int]],
    ) -> Future:
        """Encode a slab already published to shared memory.

        The task pickle carries only the segment name and the per-secret
        ``(offset, length)`` spans — the worker reads the payload straight
        from the segment (see :class:`SharedSlabTransport`).
        """
        spec = dispersal.spec()
        if spec is None:
            raise ParameterError(
                f"dispersal for scheme {dispersal.scheme!r} has no picklable "
                "spec; process workers cannot encode it"
            )
        self.warm()
        assert self._pool is not None
        return self._pool.submit(encode_shm_slab_in_worker, spec, segment_name, spans)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
