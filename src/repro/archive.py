"""Deterministic directory archiver (the "UNIX tar format" role, §3).

CDStore clients receive "a series of backup files (e.g., in UNIX tar
format)".  This module provides that packaging step from scratch, with a
property tar does not guarantee: **determinism** — the same directory tree
always serialises to the same bytes (entries sorted by path, no
timestamps) — so re-archiving an unchanged tree deduplicates perfectly
after chunking, and small tree changes stay local in the archive (which
variable-size chunking then exploits).

Format (all big-endian)::

    8-byte magic "CDARCH01"
    entry*:  u8 type | u16 pathlen | path(utf-8) | u32 mode | u64 size | data
    types:   1 = file (data = contents), 2 = directory (size = 0)

Paths are /-separated and relative; ``..`` segments and absolute paths are
rejected on extraction (archive-escape hardening).
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.errors import ParameterError, StorageError

__all__ = ["pack_tree", "unpack_tree", "list_archive"]

_MAGIC = b"CDARCH01"
_TYPE_FILE = 1
_TYPE_DIR = 2
_ENTRY = struct.Struct(">BH")
_META = struct.Struct(">IQ")


def _iter_tree(root: Path):
    """Yield (relative_posix_path, path) for the tree, sorted."""
    entries = sorted(
        p for p in root.rglob("*") if p.is_file() or p.is_dir()
    )
    for path in entries:
        yield path.relative_to(root).as_posix(), path


def pack_tree(root: str | Path) -> bytes:
    """Serialise the directory tree at ``root`` into one archive blob."""
    root = Path(root)
    if not root.is_dir():
        raise ParameterError(f"{root} is not a directory")
    parts = [_MAGIC]
    for rel, path in _iter_tree(root):
        encoded = rel.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ParameterError(f"path too long: {rel!r}")
        mode = path.stat().st_mode & 0o7777
        if path.is_dir():
            parts.append(_ENTRY.pack(_TYPE_DIR, len(encoded)))
            parts.append(encoded)
            parts.append(_META.pack(mode, 0))
        else:
            data = path.read_bytes()
            parts.append(_ENTRY.pack(_TYPE_FILE, len(encoded)))
            parts.append(encoded)
            parts.append(_META.pack(mode, len(data)))
            parts.append(data)
    return b"".join(parts)


def _parse(blob: bytes):
    """Yield (type, relpath, mode, data) entries; validates framing."""
    if not blob.startswith(_MAGIC):
        raise StorageError("not a CDStore archive (bad magic)")
    pos = len(_MAGIC)
    size = len(blob)
    while pos < size:
        if pos + _ENTRY.size > size:
            raise StorageError("truncated archive entry header")
        etype, pathlen = _ENTRY.unpack_from(blob, pos)
        pos += _ENTRY.size
        if etype not in (_TYPE_FILE, _TYPE_DIR):
            raise StorageError(f"unknown archive entry type {etype}")
        if pos + pathlen + _META.size > size:
            raise StorageError("truncated archive entry")
        rel = blob[pos : pos + pathlen].decode("utf-8")
        pos += pathlen
        mode, data_size = _META.unpack_from(blob, pos)
        pos += _META.size
        if pos + data_size > size:
            raise StorageError("truncated archive file data")
        data = blob[pos : pos + data_size]
        pos += data_size
        yield etype, rel, mode, data


def _check_safe(rel: str) -> None:
    if rel.startswith("/") or rel.startswith("\\"):
        raise StorageError(f"absolute path in archive: {rel!r}")
    if any(part in ("..", "") for part in rel.split("/")):
        raise StorageError(f"unsafe path in archive: {rel!r}")


def list_archive(blob: bytes) -> list[tuple[str, int]]:
    """Return (path, size) for every file entry (directories size -1)."""
    out = []
    for etype, rel, _mode, data in _parse(blob):
        out.append((rel, len(data) if etype == _TYPE_FILE else -1))
    return out


def unpack_tree(blob: bytes, destination: str | Path) -> int:
    """Extract an archive into ``destination``; returns file count.

    Rejects absolute or ``..`` paths so a malicious archive cannot write
    outside the destination.
    """
    dest = Path(destination)
    dest.mkdir(parents=True, exist_ok=True)
    files = 0
    for etype, rel, mode, data in _parse(blob):
        _check_safe(rel)
        target = dest / rel
        if etype == _TYPE_DIR:
            target.mkdir(parents=True, exist_ok=True)
        else:
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(data)
            files += 1
        try:
            target.chmod(mode)
        except OSError:  # pragma: no cover - permission-restricted hosts
            pass
    return files
