"""ConvergentDispersal facade: share pinning, brute-force decode."""

import pytest

from repro.core.convergent import ConvergentDispersal, create_codec
from repro.core.caont_rs import CAONTRS
from repro.errors import CodingError, IntegrityError, ParameterError


class TestConstruction:
    def test_default_scheme(self):
        cd = ConvergentDispersal(4, 3)
        assert cd.scheme == "caont-rs"
        assert isinstance(cd.codec, CAONTRS)

    def test_rejects_non_convergent_scheme(self):
        with pytest.raises(ParameterError):
            ConvergentDispersal(4, 3, scheme="aont-rs")

    def test_create_codec_factory(self):
        codec = create_codec("caont-rs", 4, 3)
        assert isinstance(codec, CAONTRS)


class TestDecode:
    def test_roundtrip(self):
        cd = ConvergentDispersal(4, 3)
        secret = b"facade" * 100
        share_set = cd.encode(secret)
        assert cd.decode(share_set.subset([0, 2, 3]), len(secret)) == secret

    def test_too_few_shares(self):
        cd = ConvergentDispersal(4, 3)
        share_set = cd.encode(b"x" * 50)
        with pytest.raises(CodingError):
            cd.decode(share_set.subset([0, 1]), 50)

    def test_brute_force_skips_corrupt_share(self):
        """With n shares available and one corrupt, some k-subset works."""
        cd = ConvergentDispersal(4, 3)
        secret = b"resilient" * 50
        share_set = cd.encode(secret)
        shares = dict(enumerate(share_set.shares))
        bad = bytearray(shares[1])
        bad[0] ^= 0xFF
        shares[1] = bytes(bad)
        assert cd.decode(shares, len(secret)) == secret

    def test_all_subsets_corrupt_raises(self):
        cd = ConvergentDispersal(4, 3)
        secret = b"hopeless" * 50
        share_set = cd.encode(secret)
        shares = {}
        for i, share in enumerate(share_set.shares[:3]):
            bad = bytearray(share)
            bad[i] ^= 0xFF
            shares[i] = bytes(bad)
        with pytest.raises(IntegrityError):
            cd.decode(shares, len(secret))

    def test_share_size_passthrough(self):
        cd = ConvergentDispersal(4, 3)
        assert cd.share_size(8192) == cd.codec.share_size(8192)

    def test_determinism_for_dedup(self):
        cd1 = ConvergentDispersal(4, 3, salt=b"org")
        cd2 = ConvergentDispersal(4, 3, salt=b"org")
        secret = b"dedupable" * 30
        assert cd1.encode(secret).shares == cd2.encode(secret).shares
