"""Rabin's information dispersal algorithm."""

from itertools import combinations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.erasure.ida import InformationDispersal
from repro.errors import ParameterError


class TestIDA:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            InformationDispersal(2, 3)

    @given(st.binary(min_size=0, max_size=600))
    def test_roundtrip_all_subsets(self, data):
        ida = InformationDispersal(5, 3)
        shares = ida.disperse(data)
        assert len(shares) == 5
        for subset in combinations(range(5), 3):
            got = ida.reconstruct({i: shares[i] for i in subset}, len(data))
            assert got == data

    def test_share_size_is_minimal(self):
        ida = InformationDispersal(4, 3)
        shares = ida.disperse(b"x" * 999)
        assert len(shares[0]) == ida.share_size(999) == 333

    def test_storage_blowup_close_to_n_over_k(self):
        ida = InformationDispersal(4, 3)
        data = b"y" * 9000
        shares = ida.disperse(data)
        blowup = sum(len(s) for s in shares) / len(data)
        assert abs(blowup - 4 / 3) < 0.01
