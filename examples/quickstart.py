#!/usr/bin/env python3
"""Quickstart: CDStore in five minutes.

Walks the two levels of the public API:

1. the CAONT-RS codec — split a secret into ``n`` shares, reconstruct it
   from any ``k``, observe convergence (identical secrets → identical
   shares, the property that enables deduplication);
2. the full system — back up files from two users to four simulated
   clouds, survive a cloud outage, and inspect the deduplication savings.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os

from repro import CAONTRS
from repro.config import ReproConfig
from repro.system import CDStoreSystem


def codec_walkthrough() -> None:
    print("=== 1. The CAONT-RS codec ===")
    codec = CAONTRS(n=4, k=3)

    secret = b"a backup chunk worth protecting" * 100
    shares = codec.split(secret)
    print(f"secret: {len(secret)} bytes -> {shares.n} shares of "
          f"{shares.share_size} bytes (blowup {shares.storage_blowup:.2f}x)")

    # Any k = 3 of the 4 shares reconstruct the secret; cloud 1 is down.
    restored = codec.recover(shares.subset([0, 2, 3]), len(secret))
    assert restored == secret
    print("reconstructed from shares {0, 2, 3} while share 1 was unavailable")

    # Convergence: the same secret always produces the same shares, so two
    # users' identical chunks deduplicate at each cloud.
    again = codec.split(secret)
    assert again.shares == shares.shares
    print("identical secret -> identical shares (deduplicable)\n")


def system_walkthrough() -> None:
    print("=== 2. The CDStore system ===")
    # threads=2: the client encodes with two workers and drives all four
    # cloud connections concurrently (§4.6), so transfer wall-clock is the
    # per-cloud maximum instead of the sum.  pipeline_depth=4: encode slabs
    # stream into the per-cloud upload queues as they finish (and restores
    # decode window by window), so wire time hides behind encoding with at
    # most four slabs of shares in memory.
    # chunker="gear": the FastCDC-style content-defined chunker (several
    # times faster ingest than the default Rabin at equivalent dedup).
    # Chunkers are registry specs — "rabin", "gear:avg=8192", "fixed:size=4096"
    # — and must match across clients for their data to deduplicate.
    # ReproConfig is the one validated home for all of these settings; a
    # real deployment persists the same object with `repro init` and the
    # servers read it back, so client and cloud can never disagree.
    config = ReproConfig(
        n=4, k=3, salt="acme-corp", threads=2, pipeline_depth=4,
        chunker="gear:avg=4096,min=1024,max=8192",
    )
    system = CDStoreSystem.from_config(config)
    alice = system.client("alice")
    bob = system.client("bob")

    document = os.urandom(256_000)
    receipt = alice.upload("/backups/alice/projects.tar", document)
    print(f"alice uploaded {receipt.file_size} bytes as {receipt.secret_count} secrets")

    # Bob backs up the same document (e.g. a shared business file):
    # everything crosses the wire (side-channel safety) but nothing new is
    # stored (inter-user deduplication).
    bob.upload("/backups/bob/projects-copy.tar", document)
    stats = system.global_stats()
    print(f"after bob's identical upload: inter-user saving = "
          f"{stats.inter_user_saving:.1%}, dedup ratio = {stats.dedup_ratio:.2f}x")

    # Alice backs up a second, nearly-identical version: intra-user
    # deduplication keeps almost all of it off the wire.
    version2 = document[:-4096] + os.urandom(4096)
    receipt2 = alice.upload("/backups/alice/projects-v2.tar", version2)
    print(f"alice's v2 upload transferred only "
          f"{receipt2.transferred_share_bytes} share bytes "
          f"(intra-user saving {receipt2.intra_user_saving:.1%})")

    # A cloud goes down; restores still work from the remaining k = 3.
    system.fail_cloud(0)
    restored = alice.download("/backups/alice/projects.tar")
    assert restored == document
    print("cloud 0 failed -> restore succeeded from the other 3 clouds")
    system.recover_cloud(0)
    system.close()
    print("done.")


if __name__ == "__main__":
    codec_walkthrough()
    system_walkthrough()
