"""Ramp secret sharing scheme (RSSS) [16].

RSSS generalises SSSS and IDA (§2): the secret is divided into ``k - r``
pieces, ``r`` random pieces of the same size are appended, and the ``k``
pieces are dispersed into ``n`` shares with an IDA whose generator matrix is
*non-systematic* (every share mixes all ``k`` pieces).  Any ``k`` shares
reconstruct; any ``r`` shares are statistically independent of the secret
because the ``r`` random pieces act as one-time pads in the ``r`` linear
equations an attacker can observe.  Storage blowup: ``n / (k - r)``.

Setting ``r = 0`` recovers IDA; ``r = k - 1`` recovers an SSSS-equivalent.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.drbg import DRBG, system_random_bytes
from repro.errors import CodingError, ParameterError
from repro.gf.matrix import gf_mat_inv, gf_mat_vec, vandermonde_matrix
from repro.sharing.base import SecretSharingScheme, ShareSet

__all__ = ["RSSS"]


class RSSS(SecretSharingScheme):
    """(n, k, r) ramp scheme with blowup n / (k - r)."""

    name = "rsss"
    deterministic = False

    def __init__(self, n: int, k: int, r: int, rng: DRBG | None = None) -> None:
        super().__init__(n, k, r)
        if n + 1 > 255:
            raise ParameterError(f"n={n} too large for GF(256) Vandermonde")
        self._rng = rng
        # Non-systematic dispersal matrix: rows are Vandermonde evaluations
        # at x = 1..n (skipping x = 0, whose row would expose piece 0
        # directly: Vandermonde row at 0 is the unit vector e_0).
        full = vandermonde_matrix(n + 1, k)
        self._matrix = full[1:]
        self._decode_cache: dict[tuple[int, ...], np.ndarray] = {}

    def _random_bytes(self, length: int) -> bytes:
        if self._rng is not None:
            return self._rng.random_bytes(length)
        return system_random_bytes(length)

    # ------------------------------------------------------------------
    def _piece_size(self, secret_size: int) -> int:
        data_pieces = self.k - self.r
        return -(-secret_size // data_pieces) if secret_size else 1

    def split(self, secret: bytes) -> ShareSet:
        data_pieces = self.k - self.r
        size = self._piece_size(len(secret))
        buf = np.zeros((self.k, size), dtype=np.uint8)
        padded = np.zeros(data_pieces * size, dtype=np.uint8)
        padded[: len(secret)] = np.frombuffer(secret, dtype=np.uint8)
        buf[:data_pieces] = padded.reshape(data_pieces, size)
        if self.r:
            rand = self._random_bytes(self.r * size)
            buf[data_pieces:] = np.frombuffer(rand, dtype=np.uint8).reshape(
                self.r, size
            )
        coded = gf_mat_vec(self._matrix, buf)
        shares = tuple(row.tobytes() for row in coded)
        return ShareSet(shares=shares, secret_size=len(secret), scheme=self.name)

    def recover(self, shares: dict[int, bytes], secret_size: int) -> bytes:
        self._check_recover_args(shares, secret_size)
        chosen = tuple(sorted(shares)[: self.k])
        sizes = {len(shares[idx]) for idx in chosen}
        if len(sizes) != 1:
            raise CodingError(f"shares have inconsistent sizes: {sorted(sizes)}")
        matrix = self._decode_cache.get(chosen)
        if matrix is None:
            matrix = gf_mat_inv(self._matrix[list(chosen)])
            self._decode_cache[chosen] = matrix
        stacked = np.stack(
            [np.frombuffer(shares[idx], dtype=np.uint8) for idx in chosen]
        )
        pieces = gf_mat_vec(matrix, stacked)
        data = pieces[: self.k - self.r].reshape(-1).tobytes()
        if secret_size > len(data):
            raise CodingError(
                f"secret_size {secret_size} exceeds recovered size {len(data)}"
            )
        return data[:secret_size]

    def expected_blowup(self, secret_size: int) -> float:
        """Blowup n / (k - r), up to padding (Table 1)."""
        if secret_size == 0:
            return float("inf")
        return self.n * self._piece_size(secret_size) / secret_size
