"""Runtime lock-order witness: the dynamic complement of ``repro analyze``.

The static checkers can prove a mutation happens under *a* lock; they
cannot see the order different threads take *multiple* locks in, which
is where deadlocks live.  This module provides the lockdep-style witness
the test suite runs under ``REPRO_LOCK_WITNESS=1``:

* :func:`install` monkeypatches ``threading.Lock``/``threading.RLock``
  with factories returning :class:`WitnessedLock` wrappers;
* each lock is named by its **allocation site** (``module.py:lineno``),
  so every instance allocated at one site forms one lock *class* — the
  same coarsening lockdep uses: an order inversion between two sites is
  a potential deadlock even if tonight's run happened to use distinct
  instances;
* every successful acquisition records edges ``held-site → new-site``
  into a global :class:`LockOrderGraph`; a cycle in that graph is a
  potential ABBA deadlock, reported at session end (or on demand via
  :meth:`LockWitness.assert_no_cycles`).

Re-entrant re-acquisition (RLock) produces a self-edge, which is
ignored — re-entry cannot deadlock.  The graph accumulates over the
whole process: two tests that each take the pair in opposite orders
produce a cycle even though neither test deadlocks alone; that is the
point.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path
from typing import Callable, Sequence

__all__ = [
    "LockOrderError",
    "LockOrderGraph",
    "LockWitness",
    "WitnessedLock",
    "install",
]


class LockOrderError(AssertionError):
    """Raised when the acquisition graph contains a cycle."""


def _canonical(cycle: tuple[str, ...]) -> tuple[str, ...]:
    """Rotate a cycle so it starts at its smallest element (dedup key)."""
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]


class LockOrderGraph:
    """Directed graph of lock-class acquisition order, with cycle capture.

    Thread-safety is the caller's concern (:class:`LockWitness` serialises
    with its own meta-lock); the bare graph is also driven directly,
    single-threaded, by the hypothesis schedule tests.
    """

    def __init__(self) -> None:
        self.edges: dict[str, set[str]] = {}
        self.cycles: list[tuple[str, ...]] = []
        self._seen: set[tuple[str, ...]] = set()

    def add_acquisition(self, held: Sequence[str], name: str) -> None:
        """Record that ``name`` was acquired while ``held`` were held."""
        for prior in set(held):
            if prior == name:
                continue  # re-entrant self-edge: cannot deadlock
            successors = self.edges.setdefault(prior, set())
            if name in successors:
                continue
            successors.add(name)
            path = self._find_path(name, prior)
            if path is not None:
                cycle = _canonical((prior, *path[:-1]))
                if cycle not in self._seen:
                    self._seen.add(cycle)
                    self.cycles.append(cycle)

    def _find_path(self, src: str, dst: str) -> list[str] | None:
        """DFS path ``src → … → dst`` along edges, or None."""
        stack: list[list[str]] = [[src]]
        visited: set[str] = set()
        while stack:
            path = stack.pop()
            node = path[-1]
            if node == dst:
                return path
            if node in visited:
                continue
            visited.add(node)
            for succ in self.edges.get(node, ()):
                stack.append(path + [succ])
        return None


class LockWitness:
    """Per-process witness state: the graph plus per-thread held stacks."""

    def __init__(self, meta_lock_factory: Callable[[], threading.Lock] | None = None):
        # The meta lock must be a *raw* lock even when installed, or the
        # witness would recurse into itself on every acquisition.
        self._meta = (meta_lock_factory or threading.Lock)()
        self._held = threading.local()
        self.graph = LockOrderGraph()

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def on_acquired(self, name: str) -> None:
        stack = self._stack()
        with self._meta:
            self.graph.add_acquisition(stack, name)
        stack.append(name)

    def on_released(self, name: str) -> None:
        stack = self._stack()
        # Remove the most recent occurrence: out-of-order releases are
        # legal in Python and must not corrupt the held set.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                return

    def assert_no_cycles(self) -> None:
        with self._meta:
            cycles = list(self.graph.cycles)
        if cycles:
            rendered = "; ".join(" -> ".join((*c, c[0])) for c in cycles)
            raise LockOrderError(
                f"lock-order witness found {len(cycles)} acquisition "
                f"cycle(s) (potential deadlock): {rendered}"
            )


class WitnessedLock:
    """Wraps a real Lock/RLock, reporting acquisitions to the witness.

    Implements the full surface ``threading.Condition`` probes for
    (``_is_owned``/``_release_save``/``_acquire_restore``/
    ``_at_fork_reinit``) so witnessed locks remain valid Condition
    backers.
    """

    def __init__(self, inner, name: str, witness: LockWitness) -> None:
        self._inner = inner
        self._name = name
        self._witness = witness

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._witness.on_acquired(self._name)
        return ok

    def release(self) -> None:
        self._witness.on_released(self._name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # --- Condition protocol -------------------------------------------
    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return self._inner._is_owned()
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def _release_save(self):
        # RLock: releases *all* recursion levels at once.
        self._witness.on_released(self._name)
        if hasattr(self._inner, "_release_save"):
            return self._inner._release_save()
        self._inner.release()
        return None

    def _acquire_restore(self, state) -> None:
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        self._witness.on_acquired(self._name)

    def _at_fork_reinit(self) -> None:
        self._inner._at_fork_reinit()
        self._witness = LockWitness()  # child starts with a fresh graph

    def __repr__(self) -> str:
        return f"<WitnessedLock {self._name} wrapping {self._inner!r}>"


def _allocation_site() -> str:
    """``dir/module.py:lineno`` of the first caller outside threading."""
    frame = sys._getframe(2)
    while frame is not None and Path(frame.f_code.co_filename).name == "threading.py":
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    tail = "/".join(Path(frame.f_code.co_filename).parts[-2:])
    return f"{tail}:{frame.f_lineno}"


def install() -> tuple[LockWitness, Callable[[], None]]:
    """Patch ``threading.Lock``/``RLock``; returns (witness, uninstall).

    Locks allocated before installation stay raw and invisible to the
    witness — install as early as possible (conftest does it at import
    time when ``REPRO_LOCK_WITNESS=1``).
    """
    orig_lock = threading.Lock
    orig_rlock = threading.RLock
    witness = LockWitness(meta_lock_factory=orig_lock)

    def make_lock():
        return WitnessedLock(orig_lock(), _allocation_site(), witness)

    def make_rlock():
        return WitnessedLock(orig_rlock(), _allocation_site(), witness)

    threading.Lock = make_lock
    threading.RLock = make_rlock

    def uninstall() -> None:
        threading.Lock = orig_lock
        threading.RLock = orig_rlock

    return witness, uninstall
