"""The rate-limited key server (DupLESS [9] role).

The server holds the RSA private key and signs *blinded* values for
authenticated clients.  Two properties carry the security argument:

* **obliviousness** — blinding means the server learns nothing about the
  chunks whose keys it derives, so a compromised key server alone reveals
  no data;
* **rate limiting** — each client spends from a token bucket per epoch;
  an insider mounting an online dictionary attack is throttled to the
  bucket rate, and an outsider cannot derive keys at all (offline guesses
  require the private exponent).

The clock is injectable so tests and simulations control epoch roll-over.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import CryptoError, ReproError
from repro.keyserver.rsa import RSAKeyPair, generate_keypair

__all__ = ["KeyServer", "RateLimitError"]


class RateLimitError(ReproError):
    """The client exhausted its key-derivation budget for this epoch."""


@dataclass
class _Bucket:
    tokens: float
    updated: float = field(default=0.0)


class KeyServer:
    """Blind-signing key server with per-client token buckets.

    Parameters
    ----------
    keypair:
        RSA keypair; generated fresh when omitted.
    rate_per_second:
        Token refill rate per client.  DupLESS throttles bursts while
        keeping legitimate backup throughput unharmed; defaults here are
        sized for tests.
    burst:
        Bucket capacity (maximum burst of derivations).
    clock:
        Time source, injectable for deterministic tests.
    """

    def __init__(
        self,
        keypair: RSAKeyPair | None = None,
        rate_per_second: float = 100.0,
        burst: int = 200,
        clock=time.monotonic,
    ) -> None:
        self.keypair = keypair if keypair is not None else generate_keypair()
        self.rate = float(rate_per_second)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: dict[str, _Bucket] = {}
        self.requests_served = 0
        self.requests_throttled = 0

    # ------------------------------------------------------------------
    @property
    def public_key(self) -> tuple[int, int]:
        """The (n, e) clients blind against."""
        return self.keypair.public

    def _take_token(self, client_id: str) -> bool:
        now = self._clock()
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = _Bucket(tokens=self.burst, updated=now)
            self._buckets[client_id] = bucket
        bucket.tokens = min(self.burst, bucket.tokens + (now - bucket.updated) * self.rate)
        bucket.updated = now
        if bucket.tokens < 1.0:
            return False
        bucket.tokens -= 1.0
        return True

    def sign_blinded(self, client_id: str, blinded: int) -> int:
        """Sign a blinded value for ``client_id`` (one token).

        Raises :class:`RateLimitError` when the bucket is dry — the
        defence against online brute force.
        """
        if not self._take_token(client_id):
            self.requests_throttled += 1
            raise RateLimitError(
                f"client {client_id!r} exceeded the key-derivation rate"
            )
        if not 0 < blinded < self.keypair.n:
            raise CryptoError("blinded value outside modulus range")
        self.requests_served += 1
        return self.keypair.sign_raw(blinded)

    def remaining_budget(self, client_id: str) -> float:
        """Tokens currently available to ``client_id`` (diagnostics)."""
        bucket = self._buckets.get(client_id)
        if bucket is None:
            return self.burst
        now = self._clock()
        return min(self.burst, bucket.tokens + (now - bucket.updated) * self.rate)
