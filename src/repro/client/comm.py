"""Parallel multi-cloud communication engine (the "comm module", §4.6).

The paper's client "uploads to all clouds concurrently via multi-threading",
so wall-clock transfer cost is the per-cloud *maximum*, not the sum.  This
module gives the client that concurrency:

* a persistent **per-cloud worker** (one thread per cloud connection) that
  owns all traffic to its server, so operations against different clouds
  overlap while traffic to one cloud stays ordered;
* a pluggable **encode pool** (``threads`` workers, ``workers`` flavour)
  that encodes *slabs* of secrets with the batched codec kernels while
  earlier slabs are already in flight — encoding overlaps transfer within
  one upload, the pipelining of Figure 4(a);
* a windowed upload path per cloud: shares accumulate into 4 MB windows
  (§4.1 batching), each window is intra-user-dedup-queried (§3.3 stage 1)
  and its unique shares uploaded, while later secrets are still encoding;
* a parallel restore path that fetches each chosen server's file entry,
  recipe and shares concurrently, **failing over** to a spare reachable
  cloud when a chosen server throws mid-restore instead of aborting the
  whole download;
* simulated wall-clock accounting: with an attached
  :class:`~repro.cloud.network.SimClock`, a parallel engine advances by the
  makespan over per-cloud transfer times and a serial engine (``threads=1``)
  by their sum, reproducing the §4.6 speedup in simulated time.

With ``threads=1`` every operation runs inline on the caller's thread with
byte-identical wire behaviour, so single-threaded uses stay deterministic
and pool-free.

Thread pool vs process pool
---------------------------

``workers="thread"`` (default) encodes slabs on a
:class:`~concurrent.futures.ThreadPoolExecutor`.  Threads share the
client's address space, so there is no pickling cost and pre-built codecs
(e.g. the server-aided CAONT-RS bound to a live key server) work
unchanged — but CPython's GIL serialises the Python-level bookkeeping
between the GIL-releasing hashlib/OpenSSL calls, so throughput plateaus
near single-thread speed.  Threads win for small uploads, for codecs
without a picklable spec, and when encoding merely needs to overlap
*transfer* (the §4.6 pipelining) rather than scale with cores.

``workers="process"`` encodes slabs on a
:class:`~repro.client.workers.ProcessEncodePool`: each worker process
rebuilds the codec once from the dispersal's picklable spec, caches it,
and encodes whole slabs with the vectorised batch kernels, so encoding
escapes the GIL and scales with cores like the paper's C++ prototype
(Figure 5a).  The price is one fork per worker and one pickling
round-trip per slab (secrets out, shares back) — noise for multi-megabyte
backups, overhead for tiny ones.  Processes win for bulk encoding on
multi-core hosts.  A dispersal whose ``spec()`` is None (pre-built codec
objects) silently falls back to the thread pool, keeping behaviour
correct everywhere.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

from repro.chunking.base import Chunk
from repro.client.workers import (
    ProcessEncodePool,
    SlabbedShareSets,
    WORKER_MODES,
    slab_spans,
)
from repro.cloud.network import SimClock, batch_count, makespan
from repro.core.convergent import ConvergentDispersal
from repro.crypto.hashing import fingerprint
from repro.errors import (
    CloudUnavailableError,
    ParameterError,
    ProtocolError,
    StorageError,
)
from repro.server.index import FileEntry
from repro.server.messages import RecipeEntry, ShareMeta, ShareUpload
from repro.server.server import CDStoreServer

__all__ = [
    "CommEngine",
    "CloudUploadResult",
    "FETCH_ERRORS",
    "FileFetch",
    "UPLOAD_BATCH_BYTES",
]

#: Client-side upload batch size (§4.1: "batch the shares ... in a 4MB
#: buffer and upload the buffer when it is full").
UPLOAD_BATCH_BYTES = 4 << 20

#: Errors meaning "this server cannot currently supply usable data" — an
#: outage, missing objects (NotFoundError is a StorageError), a corrupt
#: container, or a malformed recipe.  The restore path fails over to a
#: spare cloud or skips the source rather than aborting the download.
FETCH_ERRORS = (CloudUnavailableError, ProtocolError, StorageError)

T = TypeVar("T")


@dataclass
class CloudUploadResult:
    """Outcome of one file upload on one cloud connection."""

    #: Per-secret share metadata in sequence order (drives finalisation).
    metas: list[ShareMeta] = field(default_factory=list)
    #: Share bytes that actually crossed the wire after intra-user dedup.
    wire_bytes: int = 0
    #: Number of shares transferred (non-duplicates).
    transferred: int = 0
    #: Upload RPCs actually issued (diagnostic; the simulated clock
    #: charges the canonical 4 MB-unit count from ``batch_count``).
    batches: int = 0
    #: Simulated seconds on this cloud's uplink.
    seconds: float = 0.0


@dataclass
class FileFetch:
    """One server's contribution to a restore (entry + recipe + shares)."""

    #: The server that actually answered (after any failover).
    server: CDStoreServer
    entry: FileEntry
    recipe: list[RecipeEntry]
    #: Server fingerprint → share bytes for every recipe entry.
    shares: dict[bytes, bytes]
    #: Simulated seconds on this cloud's downlink.
    seconds: float = 0.0


class CommEngine:
    """Persistent per-cloud worker pool driving all client ⇄ server traffic.

    Parameters
    ----------
    servers:
        The client's server list.  The *list object* is shared (not copied)
        so in-place replacements — e.g. after
        :meth:`~repro.system.cdstore.CDStoreSystem.wipe_cloud` — are seen
        by the engine immediately.
    threads:
        Encode-pool width; ``1`` disables all pools and runs inline.
    workers:
        Encode-pool flavour: ``"thread"`` (default) or ``"process"``.  See
        the module docstring for when each wins.  Ignored when
        ``threads == 1``.
    clock:
        Optional simulated clock advanced by transfer times (makespan when
        parallel, sum when serial).
    """

    def __init__(
        self,
        servers: list[CDStoreServer],
        threads: int = 1,
        workers: str = "thread",
        clock: SimClock | None = None,
    ) -> None:
        if threads < 1:
            raise ParameterError(f"threads must be >= 1, got {threads}")
        if workers not in WORKER_MODES:
            raise ParameterError(
                f"unknown workers mode {workers!r}; expected one of {WORKER_MODES}"
            )
        self.servers = servers
        self.threads = threads
        self.workers = workers
        self.clock = clock
        self._encode_pool: ThreadPoolExecutor | None = None
        self._process_pool: ProcessEncodePool | None = None
        self._cloud_workers: list[ThreadPoolExecutor] | None = None
        self._init_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        return self.threads > 1

    def _ensure_workers(self) -> None:
        with self._init_lock:  # engines may be shared across caller threads
            if self._cloud_workers is None:
                self._encode_pool = ThreadPoolExecutor(
                    max_workers=self.threads, thread_name_prefix="cdstore-encode"
                )
                self._cloud_workers = [
                    ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix=f"cdstore-cloud-{i}"
                    )
                    for i in range(len(self.servers))
                ]

    def _ensure_process_pool(self) -> ProcessEncodePool:
        """Create (and eagerly fork) the encode processes on first use.

        Deferred to the first process-encoded upload so download-only and
        metadata traffic never pays the forks; the pool is warmed before
        this upload's cloud-worker submissions go out, while the engine
        threads are idle.
        """
        with self._init_lock:
            if self._process_pool is None:
                pool = ProcessEncodePool(self.threads)
                pool.warm()
                self._process_pool = pool
            return self._process_pool

    def close(self) -> None:
        """Shut the worker pools down (idempotent)."""
        with self._init_lock:  # must not race a concurrent _ensure_workers
            if self._encode_pool is not None:
                self._encode_pool.shutdown(wait=True)
                self._encode_pool = None
            if self._process_pool is not None:
                self._process_pool.close()
                self._process_pool = None
            if self._cloud_workers is not None:
                for pool in self._cloud_workers:
                    pool.shutdown(wait=True)
                self._cloud_workers = None

    def __enter__(self) -> "CommEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # generic fan-out
    # ------------------------------------------------------------------
    @staticmethod
    def _gather(futures: list[Future]) -> list:
        """Await *every* future, then re-raise the first failure.

        Waiting for all of them before raising means no background worker
        is still mutating server state when the caller sees the error, and
        no sibling exception goes unretrieved.
        """
        results = []
        first_error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def _slot(self, server: CDStoreServer) -> int | None:
        for i, candidate in enumerate(self.servers):
            if candidate is server:
                return i
        return None

    def map_servers(
        self,
        fn: Callable[[CDStoreServer], T],
        servers: Sequence[CDStoreServer],
    ) -> list[T]:
        """Apply ``fn`` to each server, concurrently when parallel.

        Each call runs on the target server's dedicated cloud worker, so
        concurrent ``map_servers`` traffic to one cloud stays ordered.
        Results come back in ``servers`` order; all calls complete before
        the first exception (in that order) propagates.
        """
        if not self.parallel or len(servers) < 2:
            return [fn(server) for server in servers]
        self._ensure_workers()
        assert self._cloud_workers is not None
        futures: list[Future] = []
        for server in servers:
            slot = self._slot(server)
            pool = self._cloud_workers[slot] if slot is not None else self._encode_pool
            assert pool is not None
            futures.append(pool.submit(fn, server))
        return self._gather(futures)

    def _advance_clock(self, durations: list[float]) -> float:
        """Charge transfer times to the clock; returns the elapsed span."""
        span = makespan(durations) if self.parallel else sum(durations)
        if self.clock is not None:
            self.clock.advance(span)
        return span

    # ------------------------------------------------------------------
    # upload path (backup)
    # ------------------------------------------------------------------
    def _submit_encode_slabs(
        self, dispersal: ConvergentDispersal, chunks: list[Chunk]
    ) -> SlabbedShareSets:
        """Fan chunker output into encode slabs on the configured pool.

        Chunks are grouped into contiguous slabs sized for the pool (see
        :func:`repro.client.workers.slab_spans`); each slab encodes with
        the batched codec kernels.  Process workers are used when
        configured *and* the dispersal has a picklable spec; otherwise the
        slab runs on the thread pool.
        """
        assert self._encode_pool is not None
        spans = slab_spans([chunk.size for chunk in chunks], self.threads)
        pool = None
        if self.workers == "process" and dispersal.spec() is not None:
            pool = self._ensure_process_pool()
        futures: list[Future] = []
        for start, end in spans:
            secrets = [chunk.data for chunk in chunks[start:end]]
            if pool is not None:
                futures.append(pool.submit(dispersal, secrets))
            else:
                futures.append(
                    self._encode_pool.submit(dispersal.encode_batch, secrets)
                )
        return SlabbedShareSets(futures, spans)

    def upload_file(
        self,
        user_id: str,
        dispersal: ConvergentDispersal,
        chunks: list[Chunk],
    ) -> tuple[list[CloudUploadResult], float]:
        """Pipeline one file's shares onto every cloud.

        Returns per-cloud results (index ``i`` ↔ cloud ``i``) plus the
        simulated wall-clock span of the transfer stage.
        """
        n = len(self.servers)
        if self.parallel and len(chunks) > 1:
            self._ensure_workers()
            assert self._cloud_workers is not None
            encoded = self._submit_encode_slabs(dispersal, chunks)
            futures = [
                self._cloud_workers[idx].submit(
                    self._upload_to_cloud, idx, user_id, chunks, encoded
                )
                for idx in range(n)
            ]
            results = self._gather(futures)
        else:
            share_sets = dispersal.encode_batch([chunk.data for chunk in chunks])
            results = [
                self._upload_to_cloud(idx, user_id, chunks, share_sets)
                for idx in range(n)
            ]
        span = self._advance_clock([result.seconds for result in results])
        return results, span

    def _upload_to_cloud(
        self,
        cloud_idx: int,
        user_id: str,
        chunks: list[Chunk],
        share_sets,
    ) -> CloudUploadResult:
        """One cloud connection's upload: dedup-query + batch + transfer.

        ``share_sets`` is any indexable of
        :class:`~repro.sharing.base.ShareSet` — a plain list on the serial
        path, a :class:`~repro.client.workers.SlabbedShareSets` view over
        in-flight encode futures on the parallel path.  Blocking on a
        not-yet-encoded slab is what overlaps encoding with the transfer
        of already-encoded windows.
        """
        server = self.servers[cloud_idx]
        result = CloudUploadResult()
        seen: set[bytes] = set()
        window: list[tuple[ShareMeta, bytes]] = []
        window_bytes = 0
        # The 4 MB upload buffer persists across query windows (§4.1: the
        # buffer holds *unique* shares and is uploaded only when full).
        batch: list[ShareUpload] = []
        batch_bytes = 0

        def send_batch() -> None:
            nonlocal batch, batch_bytes
            if batch:
                server.upload_shares(user_id, batch)
                result.batches += 1
                batch = []
                batch_bytes = 0

        def flush_window() -> None:
            nonlocal window, window_bytes, batch_bytes
            if not window:
                return
            known = server.query_duplicates(
                user_id, [meta.fingerprint for meta, _ in window]
            )
            for (meta, payload), is_known in zip(window, known):
                if is_known or meta.fingerprint in seen:
                    continue
                seen.add(meta.fingerprint)
                batch.append(ShareUpload(meta=meta, data=payload))
                batch_bytes += len(payload)
                result.wire_bytes += len(payload)
                result.transferred += 1
                if batch_bytes >= UPLOAD_BATCH_BYTES:
                    send_batch()
            window = []
            window_bytes = 0

        for seq, chunk in enumerate(chunks):
            share = share_sets[seq].shares[cloud_idx]
            meta = ShareMeta(
                fingerprint=fingerprint(share, domain="client"),
                share_size=len(share),
                secret_seq=chunk.seq,
                secret_size=chunk.size,
            )
            result.metas.append(meta)
            window.append((meta, share))
            window_bytes += len(share)
            if window_bytes >= UPLOAD_BATCH_BYTES:
                flush_window()
        flush_window()
        send_batch()

        # Charge simulated time with the canonical 4 MB-unit batch count
        # so the clock matches repro.bench.transfer.client_upload_walltime
        # exactly, including for heavily-deduplicated multi-window files.
        result.seconds = server.cloud.uplink.transfer_time(
            result.wire_bytes, batches=batch_count(result.wire_bytes)
        )
        return result

    # ------------------------------------------------------------------
    # restore path (download)
    # ------------------------------------------------------------------
    def fetch_file(
        self,
        user_id: str,
        lookup_key: bytes,
        chosen: Sequence[CDStoreServer],
        spares: Sequence[CDStoreServer],
    ) -> tuple[list[FileFetch], float]:
        """Fetch entry + recipe + shares from each chosen server.

        Fetches run concurrently (one per cloud worker).  When a chosen
        server throws one of :data:`FETCH_ERRORS` mid-restore (outage,
        missing share, corrupt container or recipe), the fetch fails over
        to the next unused spare reachable server; only when the spares
        are exhausted does the original error propagate.
        """
        pool = list(spares)
        pool_lock = threading.Lock()

        def fetch_one(server: CDStoreServer) -> FileFetch:
            while True:
                try:
                    entry = server.get_file_entry(user_id, lookup_key)
                    recipe = server.get_recipe(user_id, lookup_key)
                    shares = server.fetch_shares(
                        [item.fingerprint for item in recipe]
                    )
                except FETCH_ERRORS:
                    with pool_lock:
                        if not pool:
                            raise
                        server = pool.pop(0)
                    continue
                nbytes = sum(len(payload) for payload in shares.values())
                seconds = server.cloud.downlink.transfer_time(
                    nbytes, batches=batch_count(nbytes)
                )
                return FileFetch(
                    server=server,
                    entry=entry,
                    recipe=recipe,
                    shares=shares,
                    seconds=seconds,
                )

        fetches = self.map_servers(fetch_one, chosen)
        span = self._advance_clock([fetch.seconds for fetch in fetches])
        return fetches, span
