"""Full system with the DupLESS-style key server plugged in."""

import pytest

from repro.chunking import FixedChunker
from repro.crypto.drbg import DRBG
from repro.keyserver import KeyServer, generate_keypair
from repro.system.cdstore import CDStoreSystem


@pytest.fixture(scope="module")
def key_server():
    return KeyServer(keypair=generate_keypair(1024, rng=DRBG("sys-ks")))


@pytest.fixture
def system(key_server):
    return CDStoreSystem(n=4, k=3, salt=b"org", key_server=key_server)


class TestServerAidedSystem:
    def test_backup_restore_roundtrip(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        data = DRBG("sa-sys").random_bytes(40_000)
        client.upload("/f", data)
        assert client.download("/f") == data

    def test_restore_under_failure(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        data = DRBG("sa-fail").random_bytes(30_000)
        client.upload("/g", data)
        system.fail_cloud(2)
        assert client.download("/g") == data
        system.recover_cloud(2)

    def test_cross_user_dedup_still_works(self, system):
        """Server-aided keys are organisation-deterministic, so inter-user
        deduplication survives the key-server upgrade."""
        data = DRBG("sa-dedup").random_bytes(40_000)
        alice = system.client("alice", chunker=FixedChunker(4096))
        bob = system.client("bob", chunker=FixedChunker(4096))
        alice.upload("/a", data)
        stored_before = system.global_stats().physical_shares
        bob.upload("/b", data)
        assert system.global_stats().physical_shares == stored_before

    def test_restore_survives_key_server_outage(self, system):
        """Keys live inside AONT packages: restores never call the server."""
        client = system.client("alice", chunker=FixedChunker(4096))
        data = DRBG("sa-out").random_bytes(20_000)
        client.upload("/h", data)
        original = system.key_server.sign_blinded
        system.key_server.sign_blinded = None  # key server down
        try:
            assert client.download("/h") == data
        finally:
            system.key_server.sign_blinded = original

    def test_shares_differ_from_plain_caont_rs(self, key_server):
        """The two key modes must not produce mutually-deduplicable shares
        (otherwise the key server adds nothing)."""
        data = DRBG("sa-diff").random_bytes(20_000)
        aided = CDStoreSystem(n=4, k=3, salt=b"org", key_server=key_server)
        plain = CDStoreSystem(n=4, k=3, salt=b"org")
        aided.client("u", chunker=FixedChunker(4096)).upload("/x", data)
        plain.client("u", chunker=FixedChunker(4096)).upload("/x", data)
        aided.flush()
        plain.flush()
        aided_keys = set(aided.clouds[0].backend.list_keys("container-"))
        # Compare stored container bytes: they must differ.
        a0 = aided.clouds[0].backend
        p0 = plain.clouds[0].backend
        a_blobs = {a0.get_object(k) for k in a0.list_keys("container-")}
        p_blobs = {p0.get_object(k) for k in p0.list_keys("container-")}
        assert not (a_blobs & p_blobs)
        assert aided_keys  # sanity
