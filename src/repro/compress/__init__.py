"""Compression substrate (§4.7 "open issues").

The paper defers two storage-efficiency features to future work:
"Compression also effectively reduces storage space of both data [58] and
metadata (e.g., file recipes [41])."  This package implements both from
scratch:

* :mod:`repro.compress.lzss` — an LZSS dictionary coder (sliding window,
  hash-chain match finder);
* :mod:`repro.compress.huffman` — canonical Huffman entropy coding;
* :mod:`repro.compress.codec` — the composed ``lzss+huffman`` pipeline
  with a self-describing header, plus the recipe-compression helpers
  (Meister et al. [41] style) the CDStore server uses when constructed
  with ``recipe_compression=True``.

Important interaction with deduplication: *share* payloads are encrypted
(AONT output ≈ uniformly random) and do not compress, so CDStore applies
compression to metadata (file recipes) — where fingerprint entries share
long common prefixes across versions — and leaves shares untouched.
"""

from repro.compress.codec import (
    compress,
    compress_recipe,
    decompress,
    decompress_recipe,
)
from repro.compress.huffman import huffman_decode, huffman_encode
from repro.compress.lzss import lzss_compress, lzss_decompress

__all__ = [
    "compress",
    "compress_recipe",
    "decompress",
    "decompress_recipe",
    "huffman_decode",
    "huffman_encode",
    "lzss_compress",
    "lzss_decompress",
]
