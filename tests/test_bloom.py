"""Bloom filter: no false negatives, bounded false positives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import DRBG
from repro.errors import ParameterError
from repro.lsm.bloom import BloomFilter


class TestBloom:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            BloomFilter(0)
        with pytest.raises(ParameterError):
            BloomFilter(10, fp_rate=1.5)

    @settings(max_examples=20)
    @given(st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=50, unique=True))
    def test_no_false_negatives(self, keys):
        bloom = BloomFilter(len(keys))
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_bounded(self):
        rng = DRBG("bloom")
        bloom = BloomFilter(1000, fp_rate=0.01)
        members = [rng.random_bytes(16) for _ in range(1000)]
        for key in members:
            bloom.add(key)
        probes = [rng.random_bytes(16) for _ in range(5000)]
        fps = sum(1 for p in probes if p in bloom and p not in members)
        assert fps / 5000 < 0.05  # 5x slack over the 1% design point

    def test_len_counts_insertions(self):
        bloom = BloomFilter(10)
        bloom.add(b"a")
        bloom.add(b"b")
        assert len(bloom) == 2

    def test_serialisation_roundtrip(self):
        bloom = BloomFilter(100, fp_rate=0.02)
        keys = [f"key{i}".encode() for i in range(100)]
        for key in keys:
            bloom.add(key)
        restored = BloomFilter.from_bytes(bloom.to_bytes())
        assert all(key in restored for key in keys)
        assert len(restored) == 100
        assert restored.num_bits == bloom.num_bits

    def test_truncated_blob_raises(self):
        bloom = BloomFilter(10)
        with pytest.raises(ParameterError):
            BloomFilter.from_bytes(bloom.to_bytes()[:-4])
        with pytest.raises(ParameterError):
            BloomFilter.from_bytes(b"x" * 8)
