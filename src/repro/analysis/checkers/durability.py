"""DUR-001/DUR-002: publishes and acks must sit behind an fsync barrier.

Scope: modules under ``storage/`` or ``server/`` (plus any module whose
stem is one of those names, e.g. ``net/server.py``) — the layers that own
persistence and acknowledgement.  Within each function the checker builds
a line-ordered event trace:

* **write** — ``.write(...)`` / ``.writelines(...)`` (buffered handle) or
  ``.write_bytes(...)`` / ``.write_text(...)`` (whole-file Path API);
* **flush** — ``.flush()``;
* **fsync** — ``os.fsync(...)``;
* **publish** — ``os.rename``/``os.replace`` or the one-argument
  ``<path>.rename(...)``/``<path>.replace(...)`` Path form (the
  one-argument requirement keeps ``str.replace(old, new)`` out);
* **ack** — ``.sendall(...)``.

A publish (DUR-001) or ack (DUR-002) that appears after a write with no
``os.fsync`` in between is flagged; a buffered write additionally needs a
``flush()`` before the fsync, since fsyncing an unflushed Python file
object persists nothing.  The trace is per-function and line-ordered —
deliberately naive about branches, which is the right trade for a
codebase-specific checker: the durability-critical paths here are
straight-line (temp write → flush → fsync → rename).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.engine import FileContext, Finding

__all__ = ["check_durability"]

_BUFFERED_WRITES = frozenset({"write", "writelines"})
_WHOLE_FILE_WRITES = frozenset({"write_bytes", "write_text"})


def walk_shallow(fn: ast.AST):
    """``ast.walk`` that does not descend into nested function/class defs.

    Keeps each function's event trace its own: a helper closure's writes
    must not satisfy (or trip) the enclosing function's ordering.
    """
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(node))


@dataclass(frozen=True)
class _Event:
    line: int
    kind: str  # write-buffered | write-whole | flush | fsync | publish | ack
    label: str


def _classify(call: ast.Call) -> _Event | None:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    if attr in _BUFFERED_WRITES:
        return _Event(call.lineno, "write-buffered", attr)
    if attr in _WHOLE_FILE_WRITES:
        return _Event(call.lineno, "write-whole", attr)
    if attr == "flush":
        return _Event(call.lineno, "flush", attr)
    if attr == "fsync" and isinstance(func.value, ast.Name) and func.value.id == "os":
        return _Event(call.lineno, "fsync", "os.fsync")
    if attr in {"rename", "replace"}:
        if isinstance(func.value, ast.Name) and func.value.id == "os":
            return _Event(call.lineno, "publish", f"os.{attr}")
        if len(call.args) == 1 and not call.keywords:
            # Path.rename/Path.replace take one target; str.replace takes
            # two — arity is the cheap, reliable discriminator.
            return _Event(call.lineno, "publish", f".{attr}()")
    if attr == "sendall":
        return _Event(call.lineno, "ack", "sendall")
    return None


def _check_function(
    ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
) -> list[Finding]:
    events = sorted(
        (
            event
            for node in walk_shallow(fn)
            if isinstance(node, ast.Call) and (event := _classify(node)) is not None
        ),
        key=lambda e: e.line,
    )
    findings: list[Finding] = []
    for sink in events:
        if sink.kind not in {"publish", "ack"}:
            continue
        writes = [e for e in events if e.kind.startswith("write") and e.line < sink.line]
        if not writes:
            continue
        last_write = writes[-1]
        between = [e for e in events if last_write.line < e.line < sink.line]
        fsyncs = [e for e in between if e.kind == "fsync"]
        rule = "DUR-001" if sink.kind == "publish" else "DUR-002"
        noun = "publish" if sink.kind == "publish" else "ack"
        if not fsyncs:
            findings.append(
                ctx.finding(
                    sink.line,
                    rule,
                    (
                        f"{sink.label} {noun} reachable after "
                        f"{last_write.label} (line {last_write.line}) with no "
                        f"os.fsync barrier in between — a crash can "
                        f"{'publish a torn file' if noun == 'publish' else 'lose acknowledged data'}"
                    ),
                )
            )
        elif last_write.kind == "write-buffered" and not any(
            e.kind == "flush" and e.line < fsyncs[-1].line for e in between
        ):
            findings.append(
                ctx.finding(
                    sink.line,
                    rule,
                    (
                        f"os.fsync before this {noun} is not preceded by "
                        f"flush() of the buffered {last_write.label} "
                        f"(line {last_write.line}) — unflushed user-space "
                        f"buffers are not made durable by fsync"
                    ),
                )
            )
    return findings


def check_durability(ctx: FileContext) -> list[Finding]:
    if not ctx.in_scope("storage", "server"):
        return []
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            findings.extend(_check_function(ctx, node))
    return findings
