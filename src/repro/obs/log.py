"""Structured event logging: human one-liners or JSON lines.

The CLI's backup/restore summaries and the tracer's slow-request log
share this sink instead of ad-hoc ``print`` calls.  One event is one
line; the format is a constructor choice, not a per-call one:

* human (default): ``backup_file path=a.txt bytes=1024 ...``
* JSON lines (``--log-json``): ``{"event": "backup_file", "ts": ..., ...}``

Events carry whatever fields the caller attaches — tenant and trace ids
ride along where available, so a slow restore in the JSON log joins
against the span rings by ``trace_id``.
"""

from __future__ import annotations

import json
import sys
import time

__all__ = ["StructuredLog"]


def _render_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}".rstrip("0").rstrip(".")
    if isinstance(value, (list, tuple)):
        return ",".join(_render_value(v) for v in value)
    return str(value)


class StructuredLog:
    """One event sink; ``json_lines`` picks the serialisation."""

    def __init__(self, stream=None, json_lines: bool = False) -> None:
        self._stream = stream
        self.json_lines = json_lines

    @property
    def stream(self):
        # Resolved lazily so a log constructed at import time still
        # honours test-time capsys/stdout redirection.
        return self._stream if self._stream is not None else sys.stdout

    def event(self, event: str, **fields) -> None:
        """Emit one structured event line."""
        if self.json_lines:
            record = {"event": event, "ts": time.time()}
            record.update(fields)
            line = json.dumps(record, sort_keys=True, default=str)
        else:
            parts = [event]
            parts.extend(f"{key}={_render_value(value)}" for key, value in fields.items())
            line = " ".join(parts)
        print(line, file=self.stream, flush=True)
