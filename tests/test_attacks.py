"""Side-channel attacks: succeed against the strawman, fail against CDStore."""

import pytest

from repro.attacks import (
    NaiveGlobalDedupServer,
    run_confirmation_attack,
    run_ownership_attack,
)
from repro.cloud.network import Link
from repro.cloud.provider import CloudProvider
from repro.server.server import CDStoreServer

VICTIM_DATA = b"salary-spreadsheet-2015.xlsx contents" * 30


def make_cdstore_server() -> CDStoreServer:
    return CDStoreServer(0, CloudProvider("c", Link(10), Link(10)))


class TestConfirmationAttack:
    def test_succeeds_against_naive_global_dedup(self):
        result = run_confirmation_attack(NaiveGlobalDedupServer(), VICTIM_DATA)
        assert result.succeeded

    def test_fails_against_cdstore(self):
        result = run_confirmation_attack(make_cdstore_server(), VICTIM_DATA)
        assert not result.succeeded

    def test_cdstore_attacker_sees_own_uploads_only(self):
        """The attacker still gets correct dedup for its *own* data, so the
        defence does not break legitimate intra-user dedup."""
        from repro.crypto.hashing import fingerprint
        from repro.server.messages import ShareMeta, ShareUpload

        server = make_cdstore_server()
        own = b"attacker's own data" * 20
        fp = fingerprint(own, domain="client")
        meta = ShareMeta(fp, len(own), 0, len(own))
        server.upload_shares("attacker", [ShareUpload(meta=meta, data=own)])
        assert server.query_duplicates("attacker", [fp]) == [True]


class TestOwnershipAttack:
    def test_succeeds_against_naive_server(self):
        result = run_ownership_attack(NaiveGlobalDedupServer(), VICTIM_DATA)
        assert result.succeeded

    def test_fails_against_cdstore(self):
        result = run_ownership_attack(make_cdstore_server(), VICTIM_DATA)
        assert not result.succeeded
        assert "rejected" in result.detail


class TestNaiveServerSemantics:
    """The strawman must behave as §3.3 describes, or the contrast is moot."""

    def test_global_dedup_answers(self):
        server = NaiveGlobalDedupServer()
        server.upload("alice", b"fp1", b"data")
        assert server.query_duplicates("bob", [b"fp1", b"fp2"]) == [True, False]

    def test_unknown_fingerprint_needs_data(self):
        from repro.errors import NotFoundError

        server = NaiveGlobalDedupServer()
        with pytest.raises(NotFoundError):
            server.upload("alice", b"fp", None)

    def test_download_requires_registered_ownership(self):
        from repro.errors import NotFoundError

        server = NaiveGlobalDedupServer()
        server.upload("alice", b"fp", b"data")
        with pytest.raises(NotFoundError):
            server.download("mallory", b"fp")
