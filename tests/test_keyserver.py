"""Server-aided key generation: RSA, blinding, rate limits, codec."""

import pytest

from repro.crypto.drbg import DRBG
from repro.errors import CryptoError, IntegrityError, ParameterError
from repro.keyserver.client import KeyClient
from repro.keyserver.codec import ServerAidedCAONTRS
from repro.keyserver.rsa import RSAKeyPair, full_domain_hash, generate_keypair
from repro.keyserver.server import KeyServer, RateLimitError


@pytest.fixture(scope="module")
def keypair() -> RSAKeyPair:
    return generate_keypair(1024, rng=DRBG("test-rsa"))


class FrozenClock:
    """Manual clock so rate-limit tests are deterministic."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRSA:
    def test_keypair_shape(self, keypair):
        assert keypair.n.bit_length() == 1024
        assert keypair.e == 65537
        # d is a working inverse: sign/verify round-trips.
        value = 123456789
        assert keypair.verify_raw(value, keypair.sign_raw(value))

    def test_keygen_determinism_with_rng(self):
        a = generate_keypair(512, rng=DRBG("same"))
        b = generate_keypair(512, rng=DRBG("same"))
        assert a.n == b.n and a.d == b.d

    def test_bad_bits_raises(self):
        with pytest.raises(ParameterError):
            generate_keypair(100)
        with pytest.raises(ParameterError):
            generate_keypair(513)

    def test_sign_range_checked(self, keypair):
        with pytest.raises(CryptoError):
            keypair.sign_raw(0)
        with pytest.raises(CryptoError):
            keypair.sign_raw(keypair.n + 5)

    def test_fdh_in_range_and_deterministic(self, keypair):
        x = full_domain_hash(b"chunk", keypair.n)
        assert 1 <= x < keypair.n
        assert x == full_domain_hash(b"chunk", keypair.n)
        assert x != full_domain_hash(b"chunk2", keypair.n)


class TestKeyServer:
    def test_rate_limit_enforced(self, keypair):
        clock = FrozenClock()
        server = KeyServer(keypair=keypair, rate_per_second=1, burst=5, clock=clock)
        for _ in range(5):
            server.sign_blinded("attacker", 12345)
        with pytest.raises(RateLimitError):
            server.sign_blinded("attacker", 12345)
        assert server.requests_throttled == 1

    def test_bucket_refills_over_time(self, keypair):
        clock = FrozenClock()
        server = KeyServer(keypair=keypair, rate_per_second=2, burst=2, clock=clock)
        server.sign_blinded("u", 7)
        server.sign_blinded("u", 7)
        with pytest.raises(RateLimitError):
            server.sign_blinded("u", 7)
        clock.advance(1.0)  # 2 tokens refill
        server.sign_blinded("u", 7)
        server.sign_blinded("u", 7)

    def test_buckets_are_per_client(self, keypair):
        clock = FrozenClock()
        server = KeyServer(keypair=keypair, rate_per_second=1, burst=1, clock=clock)
        server.sign_blinded("a", 9)
        server.sign_blinded("b", 9)  # b unaffected by a's spending
        with pytest.raises(RateLimitError):
            server.sign_blinded("a", 9)

    def test_remaining_budget(self, keypair):
        clock = FrozenClock()
        server = KeyServer(keypair=keypair, rate_per_second=1, burst=10, clock=clock)
        assert server.remaining_budget("x") == 10
        server.sign_blinded("x", 5)
        assert server.remaining_budget("x") == pytest.approx(9)

    def test_blinded_range_checked(self, keypair):
        server = KeyServer(keypair=keypair)
        with pytest.raises(CryptoError):
            server.sign_blinded("u", 0)


class TestKeyClient:
    def test_keys_converge_across_clients(self, keypair):
        server = KeyServer(keypair=keypair)
        alice = KeyClient("alice", server, salt=b"org", rng=DRBG("a"))
        bob = KeyClient("bob", server, salt=b"org", rng=DRBG("b"))
        chunk = b"common content" * 50
        assert alice.derive_key(chunk) == bob.derive_key(chunk)

    def test_salt_scopes_keys(self, keypair):
        server = KeyServer(keypair=keypair)
        a = KeyClient("a", server, salt=b"org-a", rng=DRBG("a"))
        b = KeyClient("b", server, salt=b"org-b", rng=DRBG("b"))
        assert a.derive_key(b"chunk") != b.derive_key(b"chunk")

    def test_key_is_32_bytes_and_content_bound(self, keypair):
        server = KeyServer(keypair=keypair)
        client = KeyClient("c", server, rng=DRBG("c"))
        key = client.derive_key(b"chunk-1")
        assert len(key) == 32
        assert key != client.derive_key(b"chunk-2")

    def test_cache_spends_no_budget_on_reupload(self, keypair):
        clock = FrozenClock()
        server = KeyServer(keypair=keypair, rate_per_second=0.001, burst=1, clock=clock)
        client = KeyClient("c", server, rng=DRBG("c"))
        key1 = client.derive_key(b"chunk")
        key2 = client.derive_key(b"chunk")  # cached: no server call
        assert key1 == key2
        assert server.requests_served == 1

    def test_server_never_sees_the_hash(self, keypair):
        """Blinding: the value reaching the server differs from FDH(chunk)
        and differs between two derivations of the same chunk."""
        seen = []
        server = KeyServer(keypair=keypair)
        original = server.sign_blinded

        def spy(client_id, blinded):
            seen.append(blinded)
            return original(client_id, blinded)

        server.sign_blinded = spy
        a = KeyClient("a", server, rng=DRBG("a"))
        b = KeyClient("b", server, rng=DRBG("b"))
        chunk = b"secret chunk"
        a.derive_key(chunk)
        b.derive_key(chunk)
        x = full_domain_hash(chunk, keypair.n)
        assert x not in seen
        assert seen[0] != seen[1]

    def test_misbehaving_server_detected(self, keypair):
        server = KeyServer(keypair=keypair)
        server.sign_blinded = lambda client_id, blinded: 12345  # bogus
        client = KeyClient("c", server, rng=DRBG("c"))
        with pytest.raises(CryptoError):
            client.derive_key(b"chunk")


class TestServerAidedCodec:
    @pytest.fixture
    def codec(self, keypair):
        server = KeyServer(keypair=keypair)
        client = KeyClient("alice", server, salt=b"org", rng=DRBG("a"))
        return ServerAidedCAONTRS(4, 3, key_client=client)

    def test_roundtrip(self, codec):
        secret = DRBG("sa").random_bytes(5000)
        shares = codec.split(secret)
        assert codec.recover(shares.subset([1, 2, 3]), len(secret)) == secret

    @pytest.mark.parametrize("size", [0, 1, 31, 32, 100, 8192])
    def test_boundary_sizes(self, codec, size):
        secret = DRBG(f"sz{size}").random_bytes(size)
        shares = codec.split(secret)
        assert codec.recover(shares.subset([0, 1, 2]), size) == secret

    def test_deterministic_for_dedup(self, codec):
        secret = b"dedupable" * 100
        assert codec.split(secret).shares == codec.split(secret).shares

    def test_converges_across_clients(self, keypair):
        server = KeyServer(keypair=keypair)
        a = ServerAidedCAONTRS(4, 3, KeyClient("a", server, salt=b"o", rng=DRBG("a")))
        b = ServerAidedCAONTRS(4, 3, KeyClient("b", server, salt=b"o", rng=DRBG("b")))
        secret = b"cross-user chunk" * 40
        assert a.split(secret).shares == b.split(secret).shares

    def test_integrity_canary(self, codec):
        secret = b"integrity" * 50
        shares = codec.split(secret)
        bad = bytearray(shares.shares[1])
        bad[7] ^= 0xFF
        with pytest.raises(IntegrityError):
            codec.recover({0: shares.shares[0], 1: bytes(bad), 2: shares.shares[2]}, len(secret))

    def test_restore_works_with_key_server_down(self, codec):
        """Keys travel inside the AONT package: decode never contacts the
        server (availability argument of DESIGN/keyserver docs)."""
        secret = b"offline restore" * 30
        shares = codec.split(secret)
        codec.key_client.server.sign_blinded = None  # server "down"
        assert codec.recover(shares.subset([0, 1, 2]), len(secret)) == secret

    def test_dictionary_attack_throttled(self, keypair):
        clock = FrozenClock()
        server = KeyServer(keypair=keypair, rate_per_second=0.1, burst=20, clock=clock)
        attacker = KeyClient("attacker", server, salt=b"org", rng=DRBG("x"))
        confirmed = 0
        throttled = 0
        for i in range(100):
            try:
                attacker.derive_key(f"password-guess-{i}".encode())
                confirmed += 1
            except RateLimitError:
                throttled += 1
        assert confirmed <= 20  # burst only
        assert throttled >= 80
