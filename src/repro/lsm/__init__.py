"""LSM-tree key-value store — the LevelDB [26] substitute of §4.4.

CDStore servers keep their file and share indices in LevelDB, which
"maintains key-value pairs in a log-structured merge (LSM) tree [44],
supports fast random inserts, updates, and deletes, and uses a Bloom filter
[18] and a block cache to speed up lookups".  This package implements that
structure from scratch:

* :mod:`repro.lsm.wal` — write-ahead log for crash durability;
* :mod:`repro.lsm.memtable` — the in-memory sorted buffer;
* :mod:`repro.lsm.sstable` — immutable sorted-string-table files with
  per-table bloom filters and block index;
* :mod:`repro.lsm.bloom` — the bloom filter;
* :mod:`repro.lsm.cache` — an LRU block cache;
* :mod:`repro.lsm.db` — the :class:`LSMStore` façade tying them together
  (get/put/delete/scan, flush, compaction, snapshots, reopen-recovery).
"""

from repro.lsm.bloom import BloomFilter
from repro.lsm.cache import LRUCache
from repro.lsm.db import LSMStore
from repro.lsm.memtable import MemTable
from repro.lsm.sstable import SSTable

__all__ = ["BloomFilter", "LRUCache", "LSMStore", "MemTable", "SSTable"]
