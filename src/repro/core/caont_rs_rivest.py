"""CAONT-RS-Rivest: the authors' prior HotStorage'14 instantiation [37].

Identical to AONT-RS except the random key is replaced by the convergent
hash ``h = H(X)`` (optionally salted), making the transform deterministic
and therefore deduplicable.  Retains Rivest's per-word encryptions, which
is why the paper's new OAEP-based CAONT-RS outperforms it by 40-61 %
(Figure 5) — this class exists as that comparison baseline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.aont import (
    rivest_aont_decode,
    rivest_aont_encode,
    rivest_aont_encode_batch,
    rivest_package_size,
)
from repro.core.package_codec import PackageRSCodec
from repro.crypto.hashing import hash_key
from repro.errors import IntegrityError

__all__ = ["CAONTRSRivest"]


class CAONTRSRivest(PackageRSCodec):
    """(n, k) convergent AONT-RS built on Rivest's AONT.

    Deterministic: identical secrets (under the same ``salt``) produce
    identical shares.
    """

    name = "caont-rs-rivest"
    deterministic = True

    def __init__(
        self,
        n: int,
        k: int,
        salt: bytes = b"",
        per_word: bool = True,
        rs_matrix: str = "vandermonde",
    ) -> None:
        super().__init__(n, k, rs_matrix=rs_matrix)
        self.salt = bytes(salt)
        self._per_word = per_word

    def _make_package(self, secret: bytes) -> bytes:
        key = hash_key(secret, self.salt)
        return rivest_aont_encode(secret, key, per_word=self._per_word)

    def _make_packages(
        self, secrets: Sequence[bytes], keys: Sequence[bytes] | None = None
    ) -> np.ndarray:
        """Batch path: bulk masking only when the per-word cost model is off
        (see :meth:`repro.core.aont_rs.AONTRS._make_packages`).  Keys are
        convergent hashes, so no draw-order concern applies."""
        if self._per_word:
            return super()._make_packages(secrets)
        hash_keys = [hash_key(secret, self.salt) for secret in secrets]
        return rivest_aont_encode_batch(secrets, hash_keys)

    def _package_size(self, secret_size: int) -> int:
        return rivest_package_size(secret_size)

    def _open_package(self, package: bytes, secret_size: int) -> bytes:
        secret, key = rivest_aont_decode(package, secret_size)
        # Convergent check: beyond the canary, the recovered key must equal
        # the hash of the recovered secret (§3.2 integrity verification).
        if hash_key(secret, self.salt) != key:
            raise IntegrityError(
                "caont-rs-rivest: recovered key does not match H(secret)"
            )
        return secret
