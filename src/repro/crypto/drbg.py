"""Deterministic random byte generator (SHA-256 counter DRBG).

Two consumers need controllable randomness:

* the *non-convergent* baselines (AONT-RS, SSMS, RSSS, SSSS) embed random
  keys/pieces — in production those come from the OS, but experiments and
  tests must be reproducible, so every scheme accepts an optional RNG; and
* the synthetic workload generators (§5.2 substitution) must regenerate the
  exact same multi-terabyte-shaped traces from a small seed.

The construction is the classic hash-counter DRBG: ``block_i =
SHA-256(seed || i)``, concatenated and truncated.  It is *not* meant to be a
certified CSPRNG; the system uses ``os.urandom`` when no DRBG is supplied.
"""

from __future__ import annotations

import hashlib
import os
import struct

from repro.errors import ParameterError

__all__ = ["DRBG", "system_random_bytes"]


def system_random_bytes(length: int) -> bytes:
    """Operating-system randomness (the production default)."""
    return os.urandom(length)


class DRBG:
    """Seeded deterministic byte stream.

    >>> DRBG(b"seed").random_bytes(4) == DRBG(b"seed").random_bytes(4)
    True
    """

    def __init__(self, seed: bytes | str | int) -> None:
        if isinstance(seed, int):
            seed = str(seed).encode("ascii")
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        if not seed:
            raise ParameterError("DRBG seed must be non-empty")
        self._seed = bytes(seed)
        self._counter = 0
        self._buffer = b""

    def random_bytes(self, length: int) -> bytes:
        """Return the next ``length`` bytes of the stream."""
        if length < 0:
            raise ParameterError(f"negative length {length}")
        while len(self._buffer) < length:
            block = hashlib.sha256(
                self._seed + struct.pack(">Q", self._counter)
            ).digest()
            self._counter += 1
            self._buffer += block
        out, self._buffer = self._buffer[:length], self._buffer[length:]
        return out

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        if high < low:
            raise ParameterError(f"empty range [{low}, {high}]")
        span = high - low + 1
        # Rejection sampling over the smallest covering power of two.
        nbytes = (span - 1).bit_length() // 8 + 1
        limit = (256**nbytes // span) * span
        while True:
            value = int.from_bytes(self.random_bytes(nbytes), "big")
            if value < limit:
                return low + value % span

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return int.from_bytes(self.random_bytes(7), "big") / (1 << 56)

    def choice(self, seq):
        """Pick one element of a non-empty sequence."""
        if not seq:
            raise ParameterError("cannot choose from an empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def fork(self, label: str | bytes) -> "DRBG":
        """Derive an independent child stream (stable under label)."""
        if isinstance(label, str):
            label = label.encode("utf-8")
        return DRBG(hashlib.sha256(self._seed + b"/" + label).digest())
