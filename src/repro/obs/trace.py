"""Request tracing: trace ids, spans, ring buffers, slow-request log.

A **trace** follows one logical request — an upload, a restore, a
maintenance call — across every layer and process it touches.  The
model is deliberately small:

* a *trace id* (16 random bytes) is minted once, at the
  :class:`~repro.client.client.CDStoreClient` entry point;
* each unit of work along the way records a :class:`Span` — component,
  name, start time, duration, the trace id, and its parent span id —
  into the component's bounded :class:`SpanRecorder` ring;
* across the wire the ``(trace id, span id)`` pair rides the v2 trace
  extension (see ``docs/PROTOCOL.md``): the client proxy appends it to
  request frames, the dispatcher strips it and activates it for the
  handler — so a gateway calling replicas in the same thread propagates
  the context onward without any per-call plumbing.

Propagation *within* a process is a thread-local context
(:func:`current_context` / :func:`use_context`); code that hops threads
(the comm engine's per-cloud workers) captures the caller's context and
re-activates it in the worker.

A span slower than the tracer's threshold additionally emits one
structured ``slow_request`` event (JSON under ``--log-json``) and bumps
the ``obs_slow_requests_total`` counter — the "why was this restore
slow?" breadcrumb the ISSUE asks for.
"""

from __future__ import annotations

import os
import struct
import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.analysis.annotations import guarded_by
from repro.obs.log import StructuredLog
from repro.obs.registry import REGISTRY

__all__ = [
    "Span",
    "SpanRecorder",
    "TRACE_ID_SIZE",
    "Tracer",
    "ZERO_TRACE_ID",
    "current_context",
    "mint_span_id",
    "mint_trace_id",
    "use_context",
]

#: Trace ids are exactly this many random bytes (hex-rendered in spans).
TRACE_ID_SIZE = 16

#: The "no active trace" id: all zeroes.  It still crosses the wire when
#: the trace extension is negotiated (the trailer is fixed-size), but
#: recorders drop spans carrying it — untraced requests cost no ring
#: space.
ZERO_TRACE_ID = b"\x00" * TRACE_ID_SIZE

_SLOW_REQUESTS = REGISTRY.counter(
    "obs_slow_requests_total",
    "Spans that exceeded the tracer's slow-request threshold",
)


def mint_trace_id() -> bytes:
    return os.urandom(TRACE_ID_SIZE)


def mint_span_id() -> int:
    """A random nonzero u64 span id (zero means "no parent")."""
    while True:
        span_id = struct.unpack(">Q", os.urandom(8))[0]
        if span_id:
            return span_id


@dataclass(frozen=True)
class Span:
    """One finished unit of traced work."""

    trace_id: str  # hex
    span_id: int
    parent_id: int
    component: str  # "client" | "gateway" | "server" | ...
    name: str  # e.g. "download", "frame:GW_WINDOW"
    start: float  # epoch seconds
    duration: float  # seconds
    labels: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "component": self.component,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "labels": dict(self.labels),
        }


class SpanRecorder:
    """Bounded ring of finished spans (newest kept, oldest dropped)."""

    #: Lock discipline (``repro analyze``, LOCK-001): the ring is shared
    #: by every thread that finishes a span in this component.
    GUARDED_BY = guarded_by(_spans="_lock")

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=capacity)

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def for_trace(self, trace_id: str) -> list[Span]:
        with self._lock:
            return [span for span in self._spans if span.trace_id == trace_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# ---------------------------------------------------------------------------
# thread-local propagation
# ---------------------------------------------------------------------------

_ctx = threading.local()


def current_context() -> tuple[bytes, int]:
    """The calling thread's ``(trace_id, span_id)``; zeroes when untraced."""
    return getattr(_ctx, "trace", (ZERO_TRACE_ID, 0))


@contextmanager
def use_context(trace_id: bytes, span_id: int):
    """Activate a trace context for the calling thread (restores on exit).

    Used both by the tracer's own spans and by thread-hopping code (the
    comm engine re-activates the submitting thread's context inside its
    per-cloud workers, and the dispatcher activates the wire-carried
    context around each handler).
    """
    prev = getattr(_ctx, "trace", None)
    _ctx.trace = (trace_id, span_id)
    try:
        yield
    finally:
        if prev is None:
            del _ctx.trace
        else:
            _ctx.trace = prev


class Tracer:
    """Per-component span factory bound to one :class:`SpanRecorder`.

    ``slow_threshold`` seconds (``None`` disables) controls the
    structured slow-request log; ``enabled=False`` turns every span into
    a no-op context (the ``ObsSpec`` toggle).
    """

    def __init__(
        self,
        component: str,
        recorder: SpanRecorder | None = None,
        slow_threshold: float | None = 1.0,
        slow_log: StructuredLog | None = None,
        enabled: bool = True,
    ) -> None:
        self.component = component
        self.recorder = recorder if recorder is not None else SpanRecorder()
        self.slow_threshold = slow_threshold
        # Slow-request breadcrumbs default to stderr: servers print
        # nothing on stdout, and the CLI keeps its summaries separate.
        self.slow_log = (
            slow_log if slow_log is not None else StructuredLog(stream=sys.stderr)
        )
        self.enabled = enabled

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: bytes | None = None,
        parent_id: int | None = None,
        root: bool = False,
        **labels,
    ):
        """Record one span around the ``with`` body.

        ``root=True`` mints a fresh trace id when the thread has none
        (the client entry points); otherwise an untraced caller stays
        untraced and the span is dropped at record time.  The span's
        context is active (thread-local) inside the body, so nested
        spans and outbound proxy calls pick it up automatically.
        """
        if not self.enabled:
            yield None
            return
        inherited_trace, inherited_span = current_context()
        if trace_id is None:
            trace_id = inherited_trace
            if parent_id is None:
                parent_id = inherited_span
        elif parent_id is None:
            parent_id = 0
        if root and trace_id == ZERO_TRACE_ID:
            trace_id = mint_trace_id()
            parent_id = 0
        span_id = mint_span_id()
        start = time.time()
        clock = time.perf_counter()
        try:
            with use_context(trace_id, span_id):
                yield trace_id
        finally:
            duration = time.perf_counter() - clock
            if trace_id != ZERO_TRACE_ID:
                span = Span(
                    trace_id=trace_id.hex(),
                    span_id=span_id,
                    parent_id=parent_id,
                    component=self.component,
                    name=name,
                    start=start,
                    duration=duration,
                    labels=labels,
                )
                self.recorder.record(span)
                if (
                    self.slow_threshold is not None
                    and duration >= self.slow_threshold
                ):
                    _SLOW_REQUESTS.inc(component=self.component)
                    self.slow_log.event(
                        "slow_request",
                        component=self.component,
                        name=name,
                        trace_id=trace_id.hex(),
                        span_id=span_id,
                        duration_seconds=round(duration, 6),
                        threshold_seconds=self.slow_threshold,
                        **labels,
                    )

    def snapshot(self) -> list[dict]:
        """The ring's spans as JSON-safe dicts (for ``R_OBS_STATS``)."""
        return [span.to_dict() for span in self.recorder.spans()]
