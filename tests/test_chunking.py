"""Chunkers: fixed-size and Rabin content-defined."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking.fixed import FixedChunker
from repro.chunking.rabin import RabinChunker
from repro.crypto.drbg import DRBG
from repro.errors import ParameterError


class TestFixedChunker:
    def test_reconstruction(self):
        data = DRBG("fixed").random_bytes(10000)
        chunks = list(FixedChunker(4096).chunk_bytes(data))
        assert b"".join(c.data for c in chunks) == data
        assert [c.size for c in chunks] == [4096, 4096, 1808]

    def test_offsets_and_seqs(self):
        chunks = list(FixedChunker(100).chunk_bytes(b"z" * 250))
        assert [(c.offset, c.seq) for c in chunks] == [(0, 0), (100, 1), (200, 2)]

    def test_empty_input(self):
        assert list(FixedChunker(100).chunk_bytes(b"")) == []

    def test_bad_size(self):
        with pytest.raises(ParameterError):
            FixedChunker(0)

    def test_stream_equivalence(self):
        data = DRBG("stream").random_bytes(5000)
        chunker = FixedChunker(512)
        direct = [c.data for c in chunker.chunk_bytes(data)]
        streamed = [c.data for c in chunker.chunk_stream([data[:1000], data[1000:]])]
        assert direct == streamed


class TestRabinParameters:
    def test_avg_must_be_power_of_two(self):
        with pytest.raises(ParameterError):
            RabinChunker(avg_size=1000)

    def test_ordering_constraints(self):
        with pytest.raises(ParameterError):
            RabinChunker(avg_size=1024, min_size=2048, max_size=4096)
        with pytest.raises(ParameterError):
            RabinChunker(avg_size=1024, min_size=256, max_size=512)

    def test_window_constraints(self):
        with pytest.raises(ParameterError):
            RabinChunker(window=1)
        with pytest.raises(ParameterError):
            RabinChunker(avg_size=64, min_size=16, max_size=128, window=48)


class TestRabinFingerprints:
    @pytest.mark.slow
    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=0, max_size=400))
    def test_vectorised_equals_rolling(self, data):
        chunker = RabinChunker(avg_size=256, min_size=64, max_size=1024, window=48)
        assert np.array_equal(
            chunker.window_fingerprints(data), chunker.rolling_fingerprints(data)
        )

    def test_short_input_has_no_fingerprints(self):
        chunker = RabinChunker()
        assert chunker.window_fingerprints(b"short").size == 0


class TestRabinChunking:
    @pytest.fixture
    def chunker(self):
        return RabinChunker(avg_size=1024, min_size=256, max_size=4096, window=48)

    def test_reconstruction(self, chunker):
        data = DRBG("rabin").random_bytes(50000)
        chunks = list(chunker.chunk_bytes(data))
        assert b"".join(c.data for c in chunks) == data

    def test_size_bounds(self, chunker):
        data = DRBG("bounds").random_bytes(100000)
        chunks = list(chunker.chunk_bytes(data))
        sizes = [c.size for c in chunks]
        assert max(sizes) <= chunker.max_size
        assert all(s >= chunker.min_size for s in sizes[:-1])

    def test_average_in_expected_range(self, chunker):
        data = DRBG("avg").random_bytes(300000)
        sizes = [c.size for c in chunker.chunk_bytes(data)]
        avg = sum(sizes) / len(sizes)
        # Content-defined chunking with min/max clamps lands near the target.
        assert chunker.avg_size * 0.5 < avg < chunker.avg_size * 2.5

    def test_determinism(self, chunker):
        data = DRBG("det").random_bytes(30000)
        a = [c.data for c in chunker.chunk_bytes(data)]
        b = [c.data for c in chunker.chunk_bytes(data)]
        assert a == b

    def test_shift_resilience(self, chunker):
        """Prepending bytes must leave most chunk boundaries unchanged —
        the property fixed-size chunking lacks (§3.3)."""
        data = DRBG("shift").random_bytes(60000)
        original = {c.data for c in chunker.chunk_bytes(data)}
        shifted = list(chunker.chunk_bytes(DRBG("prefix").random_bytes(137) + data))
        shared = sum(1 for c in shifted if c.data in original)
        assert shared / len(shifted) > 0.6

    def test_fixed_chunking_is_not_shift_resilient(self):
        """Contrast case motivating variable-size chunking."""
        data = DRBG("contrast").random_bytes(60000)
        fixed = FixedChunker(1024)
        original = {c.data for c in fixed.chunk_bytes(data)}
        shifted = list(fixed.chunk_bytes(b"x" * 137 + data))
        shared = sum(1 for c in shifted if c.data in original)
        assert shared / len(shifted) < 0.1

    def test_empty_input(self, chunker):
        assert list(chunker.chunk_bytes(b"")) == []

    def test_tiny_input_single_chunk(self, chunker):
        chunks = list(chunker.chunk_bytes(b"tiny"))
        assert len(chunks) == 1
        assert chunks[0].data == b"tiny"

    def test_paper_default_configuration(self):
        chunker = RabinChunker()
        assert (chunker.avg_size, chunker.min_size, chunker.max_size) == (
            8192,
            2048,
            16384,
        )
