"""Storage backends: memory and local-directory object stores."""

import pytest

from repro.errors import NotFoundError, StorageError
from repro.storage.backend import LocalDirBackend, MemoryBackend


@pytest.fixture(params=["memory", "localdir"])
def backend(request, tmp_path):
    if request.param == "memory":
        return MemoryBackend()
    return LocalDirBackend(tmp_path / "objects")


class TestBackendContract:
    def test_put_get(self, backend):
        backend.put_object("key1", b"hello")
        assert backend.get_object("key1") == b"hello"

    def test_overwrite(self, backend):
        backend.put_object("k", b"one")
        backend.put_object("k", b"two")
        assert backend.get_object("k") == b"two"

    def test_get_missing_raises(self, backend):
        with pytest.raises(NotFoundError):
            backend.get_object("nope")

    def test_delete(self, backend):
        backend.put_object("k", b"v")
        backend.delete_object("k")
        assert not backend.exists("k")
        with pytest.raises(NotFoundError):
            backend.delete_object("k")

    def test_exists(self, backend):
        assert not backend.exists("k")
        backend.put_object("k", b"v")
        assert backend.exists("k")

    def test_list_keys_sorted_with_prefix(self, backend):
        for key in ("b-2", "a-1", "b-1"):
            backend.put_object(key, b"x")
        assert backend.list_keys() == ["a-1", "b-1", "b-2"]
        assert backend.list_keys("b-") == ["b-1", "b-2"]

    def test_object_size_and_stored_bytes(self, backend):
        backend.put_object("a", b"12345")
        backend.put_object("b", b"123")
        assert backend.object_size("a") == 5
        assert backend.stored_bytes == 8
        with pytest.raises(NotFoundError):
            backend.object_size("missing")

    def test_metering(self, backend):
        backend.put_object("a", b"12345")
        backend.get_object("a")
        assert backend.bytes_written == 5
        assert backend.bytes_read == 5
        assert backend.put_ops == 1
        assert backend.get_ops == 1

    def test_empty_object(self, backend):
        backend.put_object("empty", b"")
        assert backend.get_object("empty") == b""


class TestMemoryBackendExtras:
    def test_corrupt_flips_bytes(self):
        backend = MemoryBackend()
        backend.put_object("k", bytes(100))
        backend.corrupt("k", offset=10, flips=3)
        data = backend.get_object("k")
        assert data[10] == 0xFF and data[11] == 0xFF and data[12] == 0xFF
        assert data[0] == 0

    def test_corrupt_empty_raises(self):
        backend = MemoryBackend()
        backend.put_object("k", b"")
        with pytest.raises(StorageError):
            backend.corrupt("k")


class TestLocalDirExtras:
    def test_invalid_key_raises(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        with pytest.raises(StorageError):
            backend.put_object("", b"x")
        with pytest.raises(StorageError):
            backend.put_object(".hidden", b"x")

    def test_slash_keys_sanitised(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        backend.put_object("a/b/c", b"x")
        assert backend.get_object("a/b/c") == b"x"
        assert backend.list_keys("a/b") == ["a_b_c"]

    def test_persistence_across_instances(self, tmp_path):
        LocalDirBackend(tmp_path).put_object("k", b"v")
        assert LocalDirBackend(tmp_path).get_object("k") == b"v"
