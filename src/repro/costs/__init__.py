"""Monetary cost analysis (§5.6, Figure 9).

Reimplements the paper's cost-estimation tool: Amazon EC2/S3 pricing as of
September 2014 (tiered S3 storage, heavy-utilisation reserved instances),
applied to three systems — CDStore, an AONT-RS multi-cloud baseline
(same reliability/security, no deduplication), and a single-cloud
encrypted baseline (no redundancy, no deduplication).
"""

from repro.costs.analysis import (
    CostBreakdown,
    aont_rs_monthly_cost,
    cdstore_monthly_cost,
    cost_savings,
    single_cloud_monthly_cost,
    sweep_dedup_ratio,
    sweep_weekly_size,
)
from repro.costs.pricing import (
    EC2Instance,
    cheapest_instance_for,
    ec2_catalog,
    s3_monthly_cost,
)

__all__ = [
    "CostBreakdown",
    "EC2Instance",
    "aont_rs_monthly_cost",
    "cdstore_monthly_cost",
    "cheapest_instance_for",
    "cost_savings",
    "ec2_catalog",
    "s3_monthly_cost",
    "single_cloud_monthly_cost",
    "sweep_dedup_ratio",
    "sweep_weekly_size",
]
