"""Command-line interface: a persistent local CDStore deployment.

Gives the library the operational surface a downstream user expects:

.. code-block:: bash

    python -m repro init    --root ./store --n 4 --k 3 --salt my-org
    python -m repro backup  --root ./store --user alice /path/to/file
    python -m repro ls      --root ./store --user alice
    python -m repro restore --root ./store --user alice /path/to/file -o out.bin
    python -m repro delete  --root ./store --user alice /path/to/file
    python -m repro stats   --root ./store
    python -m repro cost    --weekly-tb 16 --dedup 10
    python -m repro serve   --root ./store --cloud 0 --port 9300

The deployment persists under ``--root``: one :class:`LocalDirBackend`
directory per simulated cloud and one LSM index directory per server, so
separate invocations see the same state (including deduplication against
earlier backups).

Network mode: ``repro serve`` hosts one cloud's server as a TCP service,
and ``repro init --cloud-spec tcp://host:port`` records that a cloud
lives behind such a service — every later command on that deployment
drives it through a :class:`~repro.net.client.RemoteServerProxy` over the
binary wire protocol, mixing local and remote clouds freely.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.chunking import ChunkerSpec, chunker_names
from repro.cloud.network import Link
from repro.cloud.provider import CloudProvider
from repro.config import CONFIG_FILE_NAME, CloudSpec, ReproConfig
from repro.errors import ReproError
from repro.obs.log import StructuredLog
from repro.storage.backend import LocalDirBackend
from repro.system.cdstore import CDStoreSystem
from repro.tenants import (
    TENANTS_FILE_NAME,
    Credentials,
    TenantQuota,
    TenantRecord,
    TenantRegistry,
)

__all__ = ["main", "build_parser"]

#: Environment variable the CLI reads the tenant shared secret from
#: (alternative to ``--secret-file``; never passed on the command line
#: where other local users could read it out of the process table).
SECRET_ENV = "REPRO_TENANT_SECRET"


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer.

    Validating here turns ``--pipeline-depth 0`` into a clear usage error
    at parse time instead of a :class:`ParameterError` surfacing from deep
    inside the comm engine mid-backup.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _chunker_arg(text: str) -> str:
    """argparse type: a chunker spec string, validated eagerly.

    Parses the spec *and* constructs the chunker once, so an unknown name,
    a bad parameter or an out-of-range value (``gear:avg=1000``) fails as
    an argparse usage error before any cloud is touched.  Returns the
    original string (the system re-resolves it).
    """
    try:
        ChunkerSpec.parse(text).create()
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def _port_arg(text: str) -> int:
    """argparse type: a TCP port in 1-65535."""
    try:
        port = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a port number, got {text!r}") from None
    if not 1 <= port <= 65535:
        raise argparse.ArgumentTypeError(f"port {port} outside 1-65535")
    return port


def _nonneg_int(text: str) -> int:
    """argparse type: an integer >= 0 (cloud indices)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {value}")
    return value


def _cloud_spec_arg(text: str) -> str:
    """argparse type: ``local`` or a validated ``tcp://host:port`` spec.

    Parsed eagerly (matching the ``--chunker`` validation style) so a
    malformed spec is a usage error at the prompt, not a
    :class:`ParameterError` surfacing from the proxy mid-backup.
    """
    try:
        CloudSpec.parse(text)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def _remote_spec_arg(text: str) -> str:
    """argparse type: a ``tcp://host:port`` spec (gateway endpoints and
    replicas are network services by definition — 'local' is rejected at
    the prompt, not from deep inside proxy construction)."""
    try:
        spec = CloudSpec.parse(text)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    if not spec.is_remote:
        raise argparse.ArgumentTypeError(
            f"expected a tcp://host:port spec, got {text!r}"
        )
    return text


def _nonneg_float(text: str) -> float:
    """argparse type: a float >= 0 (cache TTLs)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative number, got {value}")
    return value


def _load_config(root: Path) -> ReproConfig:
    return ReproConfig.from_file(root)


def _apply_obs(config: ReproConfig) -> dict:
    """Apply the deployment's :class:`~repro.config.ObsSpec` to this
    process and return the front-end tracing kwargs.

    The metrics kill switch is process-wide (the registry is shared by
    every layer), so serving processes honour ``obs.enabled`` here; the
    per-front-end tracing knobs travel as constructor kwargs.
    """
    from repro.obs.registry import REGISTRY

    obs = config.obs
    REGISTRY.enabled = obs.enabled
    return {
        "trace": obs.enabled and obs.trace,
        "span_ring": obs.span_ring_size,
        "slow_threshold": obs.slow_request_seconds,
    }


def _credentials_from(args: argparse.Namespace) -> Credentials | None:
    """Tenant credentials from ``--secret-file`` or the environment.

    The tenant id defaults to ``--user`` (the common case: each tenant
    backs up under its own id); ``--tenant`` overrides it for admin
    credentials driving another user's restore.
    """
    secret: bytes | None = None
    secret_file = getattr(args, "secret_file", None)
    if secret_file is not None:
        secret = Path(secret_file).read_bytes().strip()
    elif os.environ.get(SECRET_ENV):
        secret = os.environ[SECRET_ENV].encode("utf-8")
    if secret is None:
        return None
    tenant = getattr(args, "tenant", None) or getattr(args, "user", None)
    if not tenant:
        raise ReproError(
            f"a tenant secret was supplied ({SECRET_ENV} or --secret-file) "
            "but no tenant id; pass --tenant"
        )
    return Credentials(tenant_id=tenant, secret=secret)


def _load_system(root: Path, args: argparse.Namespace | None = None) -> CDStoreSystem:
    credentials = _credentials_from(args) if args is not None else None
    return CDStoreSystem.from_config(
        _load_config(root), root=root, credentials=credentials
    )


def _client_trace_id(client) -> str | None:
    """The trace id of the client's most recent root span, if any."""
    spans = client.spans.spans()
    return spans[-1].trace_id if spans else None


def _emit_summary(args: argparse.Namespace, event: str, human: str, **fields) -> None:
    """One operation summary: a JSON event under ``--log-json``, prose
    otherwise.  The JSON line carries every field (tenant and trace ids
    included) so log shippers need no prose parsing."""
    if getattr(args, "log_json", False):
        StructuredLog(json_lines=True).event(event, **fields)
    else:
        print(human)


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------


def cmd_init(args: argparse.Namespace) -> int:
    root = Path(args.root)
    config_path = root / CONFIG_FILE_NAME
    if config_path.exists():
        print(f"error: {root} already initialised", file=sys.stderr)
        return 1
    if args.cloud_spec and len(args.cloud_spec) != args.n:
        print(
            f"error: got {len(args.cloud_spec)} --cloud-spec values for "
            f"n={args.n} (pass one per cloud, 'local' or 'tcp://host:port')",
            file=sys.stderr,
        )
        return 1
    gateway = None
    if args.gateway is not None:
        gateway = {
            "endpoint": args.gateway,
            "cache_bytes": args.gateway_cache_bytes,
            "recipe_ttl": args.gateway_recipe_ttl,
            "shard_count": args.gateway_shard_count,
            "replicas": tuple(args.gateway_replica or ()),
        }
    elif (
        args.gateway_replica
        or args.gateway_cache_bytes != 256 << 20
        or args.gateway_recipe_ttl != 30.0
        or args.gateway_shard_count != 64
    ):
        print(
            "error: --gateway-* options require --gateway tcp://host:port",
            file=sys.stderr,
        )
        return 1
    try:
        config = ReproConfig(
            n=args.n,
            k=args.k,
            salt=args.salt,
            chunker=args.chunker,
            cloud_specs=tuple(args.cloud_spec) if args.cloud_spec else (),
            gateway=gateway,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    root.mkdir(parents=True, exist_ok=True)
    config.to_file(config_path)
    for i, spec in enumerate(config.cloud_specs):
        if not spec.is_remote:
            (root / f"cloud-{i}").mkdir(exist_ok=True)
    gateway_note = (
        f", gateway at {config.gateway.endpoint}" if config.gateway is not None else ""
    )
    print(f"initialised CDStore deployment at {root} "
          f"(n={config.n}, k={config.k}, chunker={config.chunker}, "
          f"{config.remote_count} remote cloud(s){gateway_note})")
    return 0


def cmd_backup(args: argparse.Namespace) -> int:
    system = _load_system(Path(args.root), args)
    try:
        source = Path(args.path)
        data = source.read_bytes()
        name = args.name or str(source)
        client = system.client(
            args.user,
            chunker=args.chunker,
            threads=args.threads,
            workers=args.workers,
            pipeline_depth=(
                "auto" if args.pipeline_depth is None else args.pipeline_depth
            ),
        )
        receipt = client.upload(name, data)
        client.flush()
        trace_id = _client_trace_id(client)
        depth_note = (
            f", pipeline depth {receipt.pipeline_depth}"
            f"{' (adaptive)' if args.pipeline_depth is None else ''}"
        )
        _emit_summary(
            args,
            "backup_complete",
            f"backed up {receipt.file_size} bytes as {name!r}: "
            f"{receipt.secret_count} secrets, "
            f"{receipt.transferred_share_bytes} share bytes transferred "
            f"(intra-user saving {receipt.intra_user_saving:.1%}{depth_note}) "
            f"[trace {trace_id}]",
            user=args.user,
            tenant=args.tenant or args.user,
            trace_id=trace_id,
            path=name,
            file_size=receipt.file_size,
            secret_count=receipt.secret_count,
            transferred_share_bytes=receipt.transferred_share_bytes,
            intra_user_saving=round(receipt.intra_user_saving, 4),
            pipeline_depth=receipt.pipeline_depth,
        )
        return 0
    finally:
        system.close()


def cmd_restore(args: argparse.Namespace) -> int:
    system = _load_system(Path(args.root), args)
    try:
        client = system.client(
            args.user,
            threads=args.threads,
            workers=args.workers,
            pipeline_depth=(
                "auto" if args.pipeline_depth is None else args.pipeline_depth
            ),
        )
        data = client.download(args.name)
        Path(args.output).write_bytes(data)
        trace_id = _client_trace_id(client)
        _emit_summary(
            args,
            "restore_complete",
            f"restored {len(data)} bytes to {args.output} [trace {trace_id}]",
            user=args.user,
            tenant=args.tenant or args.user,
            trace_id=trace_id,
            path=args.name,
            output=str(args.output),
            file_size=len(data),
        )
        return 0
    finally:
        system.close()


def cmd_ls(args: argparse.Namespace) -> int:
    system = _load_system(Path(args.root), args)
    try:
        for path in system.client(args.user).list_files():
            print(path)
        return 0
    finally:
        system.close()


def cmd_delete(args: argparse.Namespace) -> int:
    system = _load_system(Path(args.root), args)
    try:
        system.client(args.user).delete(args.name)
        if args.gc:
            freed = sum(server.collect_garbage() for server in system.servers)
            print(f"deleted {args.name!r}; GC reclaimed {freed} bytes")
        else:
            print(f"deleted {args.name!r}")
        return 0
    finally:
        system.close()


def build_cloud_server(
    root: str | Path,
    cloud_index: int,
    host: str = "127.0.0.1",
    port: int = 0,
    frame_budget: int | None = None,
    tenants_file: str | Path | None = None,
    use_async: bool = False,
    executor_size: int | None = None,
    max_connections: int | None = None,
    write_queue_cap: int | None = None,
):
    """Build the TCP server for one cloud of a local deployment.

    Factored out of :func:`cmd_serve` so tests (and embedders) can start
    and stop the server programmatically; the CLI wraps it in
    ``serve_forever``.

    ``use_async=True`` builds the multiplexed event-loop front-end
    (:class:`~repro.net.async_server.AsyncCDStoreTCPServer`) instead of
    the thread-per-connection server: same storage stack, same protocol
    behaviour, but thousands of connections multiplex onto one loop and
    a bounded executor (``executor_size`` threads), with per-connection
    outbound queues capped at ``write_queue_cap`` bytes and admission
    capped at ``max_connections``.  The remaining knobs only apply there.

    The serving process is **crash-only**: the server runs with a
    durable root (container journal + fsynced index commits before every
    ack), and construction *is* recovery — half-written temporaries are
    reaped, journaled containers republished and dangling index entries
    dropped before the port opens.  When ``tenants_file`` is given — or
    ``tenants.json`` exists under ``root`` — the connection handshake
    and per-tenant quotas are enforced.
    """
    from repro.net import AsyncCDStoreTCPServer, CDStoreTCPServer
    from repro.server.index import LSMIndex
    from repro.server.server import CDStoreServer, FETCH_BATCH_BYTES

    root = Path(root)

    config = _load_config(root)
    if not 0 <= cloud_index < config.n:
        raise ReproError(
            f"cloud index {cloud_index} outside this deployment's range "
            f"0-{config.n - 1} (n={config.n})"
        )
    spec = config.cloud_specs[cloud_index]
    if spec.is_remote:
        raise ReproError(
            f"cloud {cloud_index} of this deployment is remote "
            f"({spec}); serve it from the deployment that holds its data"
        )
    registry = None
    if tenants_file is not None:
        registry = TenantRegistry.from_file(tenants_file)
    elif (root / TENANTS_FILE_NAME).exists():
        registry = TenantRegistry.from_file(root / TENANTS_FILE_NAME)
    obs = _apply_obs(config)
    cloud = CloudProvider(
        name=f"cloud-{cloud_index}",
        uplink=Link(100.0),
        downlink=Link(100.0),
        backend=LocalDirBackend(root / f"cloud-{cloud_index}"),
    )
    durable_root = root / "state" / f"server-{cloud_index}"
    durable_root.mkdir(parents=True, exist_ok=True)
    server = CDStoreServer(
        server_id=cloud_index,
        cloud=cloud,
        index=LSMIndex(root / "indices" / f"server-{cloud_index}"),
        durable_root=durable_root,
        tenants=registry,
    )
    if use_async:
        extra = {}
        if executor_size is not None:
            extra["executor_size"] = executor_size
        if max_connections is not None:
            extra["max_connections"] = max_connections
        if write_queue_cap is not None:
            extra["write_queue_cap"] = write_queue_cap
        return AsyncCDStoreTCPServer(
            server,
            host=host,
            port=port,
            frame_budget=(
                frame_budget if frame_budget is not None else FETCH_BATCH_BYTES
            ),
            tenants=registry,
            **extra,
            **obs,
        )
    return CDStoreTCPServer(
        server,
        host=host,
        port=port,
        frame_budget=frame_budget if frame_budget is not None else FETCH_BATCH_BYTES,
        tenants=registry,
        **obs,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    tcp = build_cloud_server(
        Path(args.root),
        args.cloud,
        host=args.host,
        port=args.port,
        frame_budget=args.frame_budget,
        tenants_file=args.tenants,
        use_async=args.use_async,
        executor_size=args.executor_size,
        max_connections=args.max_connections,
        write_queue_cap=args.write_queue_cap,
    )
    recovery = tcp.server.last_recovery
    if recovery is not None and not recovery.clean:
        print(f"recovered after crash: "
              f"{len(recovery.reaped_temporaries)} temporaries reaped, "
              f"{len(recovery.republished_containers)} container(s) republished, "
              f"{recovery.dangling_share_entries + recovery.dangling_file_entries + recovery.dangling_intra_mappings} "
              f"dangling index entrie(s) dropped")
    tcp.start()
    host, port = tcp.address
    mode = "authenticated" if tcp.tenants is not None else "open"
    front_end = "async mux" if args.use_async else "thread-per-connection"
    print(f"serving cloud {args.cloud} at tcp://{host}:{port} "
          f"({mode} mode, {front_end} front-end, "
          f"frame budget {tcp.frame_budget} bytes; Ctrl-C to stop)")
    try:
        tcp.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        tcp.close()
        tcp.server.close()
    return 0


def build_gateway(
    root: str | Path,
    host: str = "127.0.0.1",
    port: int = 0,
    tenants_file: str | Path | None = None,
    credentials: Credentials | None = None,
    executor_size: int | None = None,
    max_connections: int | None = None,
    write_queue_cap: int | None = None,
):
    """Build the sharded read-gateway front-end for a deployment.

    Loads the deployment's :class:`~repro.config.GatewaySpec`, dials the
    serving replicas (``gateway.replicas`` when configured, otherwise the
    deployment's remote ``cloud_specs``) and mounts a
    :class:`~repro.gateway.GatewayService` behind the async mux
    front-end with ``server=None`` — the gateway answers only ping, auth
    and the two gateway frames, and rejects server-API frames with a
    typed protocol error.

    Replica proxies keep their **cloud index** as ``server_id``: the
    client's decoder keys share maps by dispersal share index, so a
    gateway that renumbered replicas would hand back undecodable shard
    streams.  Against authenticated replicas, pass admin ``credentials``
    — replica-side owner scoping would otherwise refuse the gateway
    cross-tenant fetches (the *client*-facing side enforces tenancy per
    connection exactly like ``repro serve``).
    """
    from repro.gateway import GatewayService
    from repro.net import AsyncCDStoreTCPServer, RemoteServerProxy
    from repro.server.server import FETCH_BATCH_BYTES

    root = Path(root)
    config = _load_config(root)
    gw = config.gateway
    if gw is None:
        raise ReproError(
            f"deployment {root} has no gateway configured "
            "(re-run `repro init` with --gateway, or edit cdstore.json)"
        )
    if gw.replicas:
        replica_specs = list(enumerate(gw.replicas))
    else:
        replica_specs = [
            (index, spec)
            for index, spec in enumerate(config.cloud_specs)
            if spec.is_remote
        ]
    bad = [str(spec) for _, spec in replica_specs if not spec.is_remote]
    if bad:
        raise ReproError(
            f"gateway replicas must be tcp://host:port specs, got {bad}"
        )
    if len(replica_specs) < config.k:
        raise ReproError(
            f"gateway needs at least k={config.k} serving replicas, "
            f"got {len(replica_specs)} (configure gateway.replicas or "
            "serve more clouds remotely)"
        )
    registry = None
    if tenants_file is not None:
        registry = TenantRegistry.from_file(tenants_file)
    elif (root / TENANTS_FILE_NAME).exists():
        registry = TenantRegistry.from_file(root / TENANTS_FILE_NAME)
    replicas = [
        RemoteServerProxy(
            str(spec),
            server_id=index,
            credentials=credentials,
            mux=config.mux,
        )
        for index, spec in replica_specs
    ]
    service = GatewayService(
        replicas,
        k=config.k,
        cache_bytes=gw.cache_bytes,
        recipe_ttl=gw.recipe_ttl,
        shard_count=gw.shard_count,
        own_replicas=True,
    )
    extra = {}
    if executor_size is not None:
        extra["executor_size"] = executor_size
    if max_connections is not None:
        extra["max_connections"] = max_connections
    if write_queue_cap is not None:
        extra["write_queue_cap"] = write_queue_cap
    return AsyncCDStoreTCPServer(
        None,
        host=host,
        port=port,
        frame_budget=FETCH_BATCH_BYTES,
        tenants=registry,
        gateway=service,
        **extra,
        **_apply_obs(config),
    )


def cmd_gateway(args: argparse.Namespace) -> int:
    tcp = build_gateway(
        Path(args.root),
        host=args.host,
        port=args.port,
        tenants_file=args.tenants,
        credentials=_credentials_from(args),
        executor_size=args.executor_size,
        max_connections=args.max_connections,
        write_queue_cap=args.write_queue_cap,
    )
    service = tcp.gateway
    tcp.start()
    host, port = tcp.address
    mode = "authenticated" if tcp.tenants is not None else "open"
    print(f"serving read gateway at tcp://{host}:{port} "
          f"({mode} mode, {len(service.ring.node_ids)} replica(s), "
          f"cache {service.cache.capacity_bytes} bytes; Ctrl-C to stop)")
    try:
        tcp.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
        stats = service.stats()
        print(f"cache: {stats['cache_hits']} hits, "
              f"{stats['cache_misses']} misses "
              f"({stats['cache_hit_ratio']:.1%} hit ratio)")
    finally:
        tcp.close()
        service.close()
    return 0


def cmd_tenant_add(args: argparse.Namespace) -> int:
    root = Path(args.root)
    _load_config(root)  # must be a deployment
    path = root / TENANTS_FILE_NAME
    registry = TenantRegistry.from_file(path) if path.exists() else TenantRegistry()
    secret = (
        Path(args.secret_file).read_bytes().strip()
        if args.secret_file is not None
        else os.environ.get(SECRET_ENV, "").encode("utf-8")
    )
    registry.add(
        TenantRecord(
            tenant_id=args.id,
            secret=secret,
            role=args.role,
            quota=TenantQuota(
                max_bytes=args.max_bytes,
                max_containers=args.max_containers,
                max_requests_per_sec=args.max_requests_per_sec,
            ),
        )
    )
    registry.to_file(path)
    print(f"added tenant {args.id!r} ({args.role}) to {path}; "
          "restart `repro serve` to apply")
    return 0


def cmd_tenant_list(args: argparse.Namespace) -> int:
    path = Path(args.root) / TENANTS_FILE_NAME
    if not path.exists():
        print("no tenant registry (open mode)")
        return 0
    for record in TenantRegistry.from_file(path).records():
        quota = record.quota
        limits = ", ".join(
            f"{name}={getattr(quota, name)}"
            for name in ("max_bytes", "max_containers", "max_requests_per_sec")
            if getattr(quota, name) is not None
        )
        print(f"{record.tenant_id}  role={record.role}"
              f"{'  ' + limits if limits else ''}")
    return 0


def _fetch_obs_snapshot(endpoint: str, args: argparse.Namespace) -> dict:
    """Dial a front-end and pull one versioned metrics snapshot."""
    from repro.net.client import RemoteServerProxy

    proxy = RemoteServerProxy(
        endpoint, server_id=0, credentials=_credentials_from(args)
    )
    try:
        return proxy.obs_stats()
    finally:
        proxy.close()


def _histogram_stats(series: dict) -> tuple[int, float]:
    return int(series.get("count", 0)), float(series.get("sum", 0.0))


def _render_obs_table(snapshot: dict) -> list[str]:
    """Human rendering of one obs snapshot (the ``repro stats`` table)."""
    lines = [
        f"component: {snapshot.get('component', '?')} "
        f"(server id {snapshot.get('server_id', '?')}, "
        f"snapshot v{snapshot.get('version', '?')})"
    ]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            for key, value in sorted(counters[name].items()):
                label = f"{{{key}}}" if key else ""
                lines.append(f"  {name}{label}  {value}")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            for key, value in sorted(gauges[name].items()):
                label = f"{{{key}}}" if key else ""
                lines.append(f"  {name}{label}  {value}")
    if histograms:
        lines.append("histograms (count / total s / mean s):")
        for name in sorted(histograms):
            for key, series in sorted(histograms[name].items()):
                label = f"{{{key}}}" if key else ""
                count, total = _histogram_stats(series)
                mean = total / count if count else 0.0
                lines.append(
                    f"  {name}{label}  {count} / {total:.4f} / {mean:.6f}"
                )
    spans = snapshot.get("spans", [])
    lines.append(f"spans in ring: {len(spans)}")
    return lines


def cmd_stats(args: argparse.Namespace) -> int:
    if args.endpoint is not None:
        snapshot = _fetch_obs_snapshot(args.endpoint, args)
        if args.as_json:
            print(json.dumps(snapshot, indent=2, sort_keys=True))
        elif args.prom:
            from repro.obs.registry import render_prometheus

            print(render_prometheus(snapshot), end="")
        else:
            for line in _render_obs_table(snapshot):
                print(line)
        return 0
    if args.root is None:
        print(
            "error: pass --root for storage stats, or a tcp://host:port "
            "endpoint for a live server's metrics",
            file=sys.stderr,
        )
        return 1
    system = _load_system(Path(args.root), args)
    try:
        print(f"clouds: {system.n} (k = {system.k})")
        # Per-cloud accounting degrades gracefully: stats is a read-only
        # diagnostic, so one unreachable remote cloud must not hide the
        # other clouds' numbers.
        total = 0
        lines = []
        for i, (cloud, server) in enumerate(zip(system.clouds, system.servers)):
            backend = getattr(cloud, "backend", None)
            try:
                server.flush()
                nbytes = cloud.stored_bytes
            except ReproError as exc:
                lines.append(f"  cloud-{i} ({cloud.name}): unreachable ({exc})")
                continue
            total += nbytes
            if backend is None:  # remote cloud: no local container listing
                lines.append(f"  cloud-{i} ({cloud.name}): {nbytes} bytes")
            else:
                lines.append(f"  cloud-{i}: {nbytes} bytes, "
                             f"{len(backend.list_keys('container-'))} containers")
        print(f"bytes stored across clouds: {total}")
        for line in lines:
            print(line)
        return 0
    finally:
        system.close()


def cmd_top(args: argparse.Namespace) -> int:
    """Refreshing live view of a front-end's hot metrics.

    Each round re-fetches the snapshot and prints gauges plus the
    per-frame-type request rates computed from counter deltas between
    rounds — a minimal ``top`` for one serving process.  ``--iterations``
    bounds the loop (tests drive it non-interactively); the default runs
    until Ctrl-C.
    """
    prev: dict | None = None
    prev_at: float | None = None
    rounds = 0
    try:
        while args.iterations is None or rounds < args.iterations:
            if rounds:
                time.sleep(args.interval)
            snapshot = _fetch_obs_snapshot(args.endpoint, args)
            now = time.monotonic()
            print(f"--- {args.endpoint} "
                  f"({snapshot.get('component', '?')}, round {rounds + 1}) ---")
            for name in sorted(snapshot.get("gauges", {})):
                for key, value in sorted(snapshot["gauges"][name].items()):
                    label = f"{{{key}}}" if key else ""
                    print(f"  {name}{label}  {value}")
            frames = snapshot.get("histograms", {}).get("net_dispatch_seconds", {})
            if frames:
                print("  frame rates (req/s, mean ms):")
                old = (
                    prev.get("histograms", {}).get("net_dispatch_seconds", {})
                    if prev is not None
                    else {}
                )
                elapsed = now - prev_at if prev_at is not None else None
                for key, series in sorted(frames.items()):
                    count, total = _histogram_stats(series)
                    old_count, old_total = _histogram_stats(old.get(key, {}))
                    delta = count - old_count
                    rate = (
                        delta / elapsed if elapsed and elapsed > 0 else float(delta)
                    )
                    mean_ms = (total / count * 1000.0) if count else 0.0
                    print(f"    {key or 'all'}  {rate:.1f}/s  {mean_ms:.3f} ms")
            prev, prev_at = snapshot, now
            rounds += 1
    except KeyboardInterrupt:
        pass
    return 0


def cmd_tenant_stats(args: argparse.Namespace) -> int:
    """Per-tenant durable usage rows (quota accounting + rate limiting)."""
    from repro.obs.registry import REGISTRY

    root = Path(args.root)
    _load_config(root)  # must be a deployment
    path = root / TENANTS_FILE_NAME
    if not path.exists():
        print("no tenant registry (open mode)")
        return 0
    registry = TenantRegistry.from_file(path)
    system = _load_system(root, args)
    try:
        limited = REGISTRY.snapshot()["counters"].get(
            "dispatch_rate_limited_total", {}
        )
        print(f"{'tenant':<20} {'role':<7} {'bytes':>14} "
              f"{'containers':>11} {'rate_limited':>13}")
        for record in registry.records():
            total_bytes = containers = 0
            skipped = 0
            for server in system.servers:
                # Remote proxies expose no tenant-usage frame; their rows
                # come from running tenant-stats next to the serving
                # process (the usage ledger is per-server state).
                usage_fn = getattr(server, "tenant_usage", None)
                if usage_fn is None:
                    skipped += 1
                    continue
                usage = usage_fn(record.tenant_id)
                total_bytes += usage.bytes_stored
                containers += usage.containers
            hits = limited.get(f"tenant={record.tenant_id}", 0)
            note = f"  ({skipped} remote cloud(s) not counted)" if skipped else ""
            print(f"{record.tenant_id:<20} {record.role:<7} {total_bytes:>14} "
                  f"{containers:>11} {hits:>13}{note}")
        return 0
    finally:
        system.close()


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.engine import RULE_DOCS, run_analysis

    if args.rules:
        for rule, doc in sorted(RULE_DOCS.items()):
            print(f"{rule}: {doc}")
        return 0
    findings = run_analysis(args.paths or ["src"])
    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"repro analyze: {len(findings)} finding(s)", file=sys.stderr
        )
        return 1
    return 0


def cmd_cost(args: argparse.Namespace) -> int:
    from repro.costs import cost_savings

    tb = 1000**4
    row = cost_savings(args.weekly_tb * tb, args.dedup)
    print(f"weekly {args.weekly_tb} TB, dedup {args.dedup}x, 26-week retention:")
    print(f"  CDStore:      ${row.cdstore.total_usd:>10,.0f}/mo "
          f"(storage ${row.cdstore.storage_usd:,.0f} + "
          f"VMs ${row.cdstore.vm_usd:,.0f}, {row.cdstore.instances[0]})")
    print(f"  AONT-RS:      ${row.aont_rs.total_usd:>10,.0f}/mo")
    print(f"  single cloud: ${row.single_cloud.total_usd:>10,.0f}/mo")
    print(f"  saving vs AONT-RS:      {row.saving_vs_aont_rs:.1%}")
    print(f"  saving vs single cloud: {row.saving_vs_single_cloud:.1%}")
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CDStore: multi-cloud backup via convergent dispersal",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    chunker_help = (
        f"chunker spec: one of {{{', '.join(chunker_names())}}}, optionally "
        "with parameters, e.g. 'gear:avg=8192,min=2048,max=16384'; 'gear' "
        "(FastCDC-style) ingests several times faster than 'rabin' with "
        "equivalent dedup; clients only deduplicate against backups made "
        "with the same chunker"
    )

    p = sub.add_parser("init", help="create a deployment directory")
    p.add_argument("--root", required=True)
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--k", type=int, default=3)
    p.add_argument("--salt", default="")
    p.add_argument(
        "--chunker", type=_chunker_arg, default="rabin",
        help=f"deployment-wide default {chunker_help}",
    )
    p.add_argument(
        "--cloud-spec", type=_cloud_spec_arg, action="append", default=None,
        metavar="SPEC",
        help="where each cloud lives: 'local' (a directory under --root) "
             "or 'tcp://host:port' (a `repro serve` process); repeat once "
             "per cloud, in cloud order — persisted deployment-wide",
    )
    p.add_argument(
        "--gateway", type=_remote_spec_arg, default=None, metavar="SPEC",
        help="tcp://host:port of the deployment's read gateway (`repro "
             "gateway` serves it there); clients then restore through it "
             "with automatic direct-quorum fallback",
    )
    p.add_argument(
        "--gateway-cache-bytes", type=_positive_int, default=256 << 20,
        dest="gateway_cache_bytes", metavar="BYTES",
        help="gateway hot-container cache bound in bytes of cached share "
             "payload (default 256 MB; requires --gateway)",
    )
    p.add_argument(
        "--gateway-recipe-ttl", type=_nonneg_float, default=30.0,
        dest="gateway_recipe_ttl", metavar="SECONDS",
        help="gateway resolution-cache TTL; 0 revalidates recipes on "
             "every resolve (default 30; requires --gateway)",
    )
    p.add_argument(
        "--gateway-shard-count", type=_positive_int, default=64,
        dest="gateway_shard_count", metavar="N",
        help="virtual nodes per replica on the gateway's consistent-hash "
             "ring (default 64; requires --gateway)",
    )
    p.add_argument(
        "--gateway-replica", type=_remote_spec_arg, action="append",
        default=None, dest="gateway_replica", metavar="SPEC",
        help="serving replica the gateway fetches from; repeat in cloud "
             "order (defaults to the deployment's remote cloud specs; "
             "requires --gateway)",
    )
    p.set_defaults(func=cmd_init)

    p = sub.add_parser(
        "serve",
        help="serve one cloud of this deployment over TCP",
        description="Host cloud N's CDStore server as a network service: "
                    "clients whose deployments name this address in a "
                    "tcp:// cloud spec talk to it over the binary wire "
                    "protocol. Runs until interrupted.",
    )
    p.add_argument("--root", required=True)
    p.add_argument(
        "--cloud", type=_nonneg_int, required=True,
        help="cloud index to serve (0-based)",
    )
    p.add_argument(
        "--port", type=_port_arg, required=True,
        help="TCP port to listen on (1-65535)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--frame-budget", type=_positive_int, default=None, dest="frame_budget",
        help="cap (bytes) on one fetch-shares reply frame and on the "
             "server-side working set of a streamed fetch (default 4 MB)",
    )
    p.add_argument(
        "--tenants", default=None, metavar="PATH",
        help="tenant registry JSON enabling authenticated multi-tenant "
             f"mode (defaults to {TENANTS_FILE_NAME} under --root when "
             "present; omit both for open mode)",
    )
    p.add_argument(
        "--async", dest="use_async", action="store_true",
        help="use the multiplexed event-loop front-end: thousands of "
             "connections share one loop and a bounded worker pool "
             "instead of one thread per connection",
    )
    p.add_argument(
        "--executor-size", type=_positive_int, default=None,
        dest="executor_size", metavar="N",
        help="worker threads executing requests behind the async "
             "front-end (default 8; only with --async)",
    )
    p.add_argument(
        "--max-connections", type=_positive_int, default=None,
        dest="max_connections", metavar="N",
        help="connection cap for the async front-end; excess connects "
             "are refused with a typed overload error (default 1000; "
             "only with --async)",
    )
    p.add_argument(
        "--write-queue-cap", type=_positive_int, default=None,
        dest="write_queue_cap", metavar="BYTES",
        help="per-connection outbound queue cap; clients that stop "
             "reading past this backlog are evicted (default 16 MB; "
             "only with --async)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "gateway",
        help="serve this deployment's sharded read gateway",
        description="Host the read gateway the deployment's config names "
                    "in its gateway spec: clients resolve a backup once, "
                    "then stream restore windows whose shards the gateway "
                    "fetches from the serving replicas through a "
                    "byte-bounded hot-container cache. Runs until "
                    "interrupted.",
    )
    p.add_argument("--root", required=True)
    p.add_argument(
        "--port", type=_port_arg, required=True,
        help="TCP port to listen on (1-65535)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--tenants", default=None, metavar="PATH",
        help="tenant registry JSON enabling authenticated multi-tenant "
             f"mode (defaults to {TENANTS_FILE_NAME} under --root when "
             "present; omit both for open mode)",
    )
    p.add_argument(
        "--tenant", default=None,
        help="admin tenant id the gateway authenticates as against "
             "multi-tenant replicas (owner scoping would refuse a "
             "plain tenant's cross-tenant fetches)",
    )
    p.add_argument(
        "--secret-file", default=None, dest="secret_file", metavar="PATH",
        help="file holding the gateway's tenant shared secret "
             f"(alternatively set ${SECRET_ENV}); omit against open-mode "
             "replicas",
    )
    p.add_argument(
        "--executor-size", type=_positive_int, default=None,
        dest="executor_size", metavar="N",
        help="worker threads executing gateway requests (default 8)",
    )
    p.add_argument(
        "--max-connections", type=_positive_int, default=None,
        dest="max_connections", metavar="N",
        help="connection cap; excess connects are refused with a typed "
             "overload error (default 1000)",
    )
    p.add_argument(
        "--write-queue-cap", type=_positive_int, default=None,
        dest="write_queue_cap", metavar="BYTES",
        help="per-connection outbound queue cap; clients that stop "
             "reading past this backlog are evicted (default 16 MB)",
    )
    p.set_defaults(func=cmd_gateway)

    p = sub.add_parser("backup", help="back up a file")
    p.add_argument("--root", required=True)
    p.add_argument("--user", required=True)
    p.add_argument("path")
    p.add_argument("--name", help="stored name (defaults to the path)")
    p.add_argument(
        "--chunker", type=_chunker_arg, default=None,
        help=f"override the deployment's {chunker_help}",
    )
    p.add_argument(
        "--threads", type=_positive_int, default=1,
        help="encode/transfer threads; >1 uploads to all clouds "
             "concurrently (§4.6)",
    )
    p.add_argument(
        "--workers", choices=["thread", "process"], default="thread",
        help="encode-pool flavour: 'process' escapes the GIL and scales "
             "encoding with cores; 'thread' avoids fork/pickling overhead",
    )
    p.add_argument(
        "--pipeline-depth", type=_positive_int, default=None, dest="pipeline_depth",
        help="streaming transfer-stage depth: max encode slabs in flight "
             "between encoding and the per-cloud upload queues; 1 runs the "
             "stages serially (encode everything, then upload); unset "
             "derives the depth from the measured encode/wire rates and "
             "records it in the backup summary",
    )
    p.add_argument(
        "--log-json", action="store_true", dest="log_json",
        help="emit the operation summary as one structured JSON line "
             "(tenant and trace ids included) instead of prose",
    )
    p.set_defaults(func=cmd_backup)

    p = sub.add_parser("restore", help="restore a file")
    p.add_argument("--root", required=True)
    p.add_argument("--user", required=True)
    p.add_argument("name")
    p.add_argument("-o", "--output", required=True)
    p.add_argument(
        "--threads", type=_positive_int, default=1,
        help="transfer threads; >1 fetches from the k clouds concurrently",
    )
    p.add_argument(
        "--workers", choices=["thread", "process"], default="thread",
        help="encode-pool flavour for re-encoding paths (see backup)",
    )
    p.add_argument(
        "--pipeline-depth", type=_positive_int, default=None, dest="pipeline_depth",
        help="streaming restore depth: max 4 MB share windows in flight "
             "between the per-cloud fetch queues and decoding; 1 fetches "
             "the whole file before the first decode; unset picks the "
             "adaptive default",
    )
    p.add_argument(
        "--log-json", action="store_true", dest="log_json",
        help="emit the operation summary as one structured JSON line "
             "(tenant and trace ids included) instead of prose",
    )
    p.set_defaults(func=cmd_restore)

    p = sub.add_parser("ls", help="list a user's backups")
    p.add_argument("--root", required=True)
    p.add_argument("--user", required=True)
    p.set_defaults(func=cmd_ls)

    p = sub.add_parser("delete", help="delete a backup")
    p.add_argument("--root", required=True)
    p.add_argument("--user", required=True)
    p.add_argument("name")
    p.add_argument("--gc", action="store_true", help="run garbage collection")
    p.set_defaults(func=cmd_delete)

    p = sub.add_parser(
        "stats",
        help="deployment storage statistics, or a live server's metrics",
        description="With --root: storage totals per cloud. With a "
                    "tcp://host:port endpoint: fetch the front-end's "
                    "versioned observability snapshot (per-frame latency "
                    "histograms, queue/cache gauges, span ring) over the "
                    "admin-gated stats frame.",
    )
    p.add_argument(
        "endpoint", nargs="?", type=_remote_spec_arg, default=None,
        help="tcp://host:port of a `repro serve`/`repro gateway` "
             "front-end to query for live metrics",
    )
    p.add_argument("--root", default=None)
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the raw snapshot as JSON (endpoint mode)",
    )
    p.add_argument(
        "--prom", action="store_true",
        help="emit Prometheus text exposition (endpoint mode)",
    )
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "top",
        help="refreshing live metrics view of a serving front-end",
        description="Poll a front-end's metrics snapshot every --interval "
                    "seconds and print gauges plus per-frame-type request "
                    "rates (counter deltas between rounds). Runs until "
                    "Ctrl-C, or for --iterations rounds.",
    )
    p.add_argument("endpoint", type=_remote_spec_arg)
    p.add_argument(
        "--interval", type=_nonneg_float, default=2.0,
        help="seconds between refreshes (default 2)",
    )
    p.add_argument(
        "--iterations", type=_positive_int, default=None,
        help="stop after this many rounds (default: run until Ctrl-C)",
    )
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "tenant-stats",
        help="per-tenant durable usage and rate-limit accounting",
        description="Render one row per registered tenant: bytes stored "
                    "and containers sealed (the durable quota ledger each "
                    "server keeps) plus rate-limited request counts from "
                    "the metrics registry.",
    )
    p.add_argument("--root", required=True)
    p.set_defaults(func=cmd_tenant_stats)

    # Every command that drives remote clouds accepts tenant credentials;
    # adding the flags in one loop keeps the surfaces identical.
    for cmd_parser in (sub.choices[name]
                       for name in ("backup", "restore", "ls", "delete",
                                    "stats", "top", "tenant-stats")):
        cmd_parser.add_argument(
            "--tenant", default=None,
            help="tenant id to authenticate as against multi-tenant "
                 "`repro serve` clouds (defaults to --user)",
        )
        cmd_parser.add_argument(
            "--secret-file", default=None, dest="secret_file", metavar="PATH",
            help="file holding the tenant shared secret (alternatively set "
                 f"${SECRET_ENV}); omit against open-mode servers",
        )

    p = sub.add_parser(
        "tenant",
        help="manage the tenant registry of a deployment",
        description="Maintain tenants.json under --root: the registry "
                    "`repro serve` loads to enforce authenticated, "
                    "quota-limited multi-tenant mode.",
    )
    tenant_sub = p.add_subparsers(dest="tenant_command", required=True)
    tp = tenant_sub.add_parser("add", help="add a tenant to the registry")
    tp.add_argument("--root", required=True)
    tp.add_argument("--id", required=True, help="tenant id")
    tp.add_argument(
        "--secret-file", default=None, dest="secret_file", metavar="PATH",
        help=f"file holding the shared secret (or set ${SECRET_ENV})",
    )
    tp.add_argument(
        "--role", choices=["tenant", "admin"], default="tenant",
        help="admin tenants may run maintenance (scrub, GC, repair) and "
             "read cross-tenant aggregates",
    )
    tp.add_argument("--max-bytes", type=_positive_int, default=None,
                    dest="max_bytes", help="storage quota in bytes")
    tp.add_argument("--max-containers", type=_positive_int, default=None,
                    dest="max_containers", help="sealed-container quota")
    tp.add_argument("--max-requests-per-sec", type=float, default=None,
                    dest="max_requests_per_sec", help="request rate limit")
    tp.set_defaults(func=cmd_tenant_add)
    tp = tenant_sub.add_parser("list", help="list registered tenants")
    tp.add_argument("--root", required=True)
    tp.set_defaults(func=cmd_tenant_list)

    p = sub.add_parser(
        "analyze",
        help="run the invariant checkers over the source tree",
        description="Static analysis purpose-built for this codebase: lock "
                    "discipline (LOCK-001), durability ordering (DUR-00x), "
                    "wire-frame exhaustiveness (WIRE-00x), resource "
                    "lifecycle (LIFE-001) and worker-spec picklability "
                    "(PICKLE-001). Prints `path:line: RULE-NNN message` per "
                    "finding and exits 1 if any survive suppression "
                    "(`# analysis: ignore[RULE-NNN] -- why`).",
    )
    p.add_argument(
        "paths", nargs="*",
        help="files or directories to analyse (default: src)",
    )
    p.add_argument(
        "--rules", action="store_true",
        help="list the rule ids and what they check, then exit",
    )
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("cost", help="monthly cost comparison (§5.6)")
    p.add_argument("--weekly-tb", type=float, default=16.0)
    p.add_argument("--dedup", type=float, default=10.0)
    p.set_defaults(func=cmd_cost)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like a
        # well-behaved UNIX tool.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
