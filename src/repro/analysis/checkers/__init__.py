"""Checker registry for ``repro analyze``.

Adding a checker: write ``check_*`` in a module here, append it to
:data:`FILE_CHECKERS` (runs once per parsed file) or
:data:`PROJECT_CHECKERS` (runs once over the whole file set), and give
its rule id a one-liner in :data:`repro.analysis.engine.RULE_DOCS` — a
test asserts the docs and the README stay in sync with the registry.
"""

from __future__ import annotations

from repro.analysis.checkers.durability import check_durability
from repro.analysis.checkers.lifecycle import check_lifecycle
from repro.analysis.checkers.locks import check_lock_discipline
from repro.analysis.checkers.obs_docs import check_obs_docs
from repro.analysis.checkers.picklable import check_picklable
from repro.analysis.checkers.wire_surface import check_wire_surface

__all__ = [
    "FILE_CHECKERS",
    "PROJECT_CHECKERS",
    "check_durability",
    "check_lifecycle",
    "check_lock_discipline",
    "check_obs_docs",
    "check_picklable",
    "check_wire_surface",
]

FILE_CHECKERS = [
    check_lock_discipline,
    check_durability,
    check_lifecycle,
    check_picklable,
]

PROJECT_CHECKERS = [
    check_wire_surface,
    check_obs_docs,
]
