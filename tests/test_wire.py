"""Wire-protocol codec: round-trip properties and rejection behaviour.

Every frame type round-trips through its encode/decode pair under
hypothesis-generated payloads, and the decoders reject truncation,
trailing garbage, oversized frames and bad magic with
:class:`~repro.errors.ProtocolError` — the frame layer must never let a
malformed peer drive an allocation or a silent misparse.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dedup.stats import DedupStats
from repro.errors import (
    CloudUnavailableError,
    IntegrityError,
    NotFoundError,
    ProtocolError,
    ReproError,
    StorageError,
)
from repro.net import wire
from repro.server.index import FileEntry
from repro.server.messages import FileManifest, RecipeEntry, ShareMeta, ShareUpload
from repro.storage.container import ContainerRef

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

fingerprints = st.binary(min_size=32, max_size=32)
user_ids = st.text(min_size=0, max_size=40)
small_bytes = st.binary(max_size=256)


@st.composite
def share_metas(draw):
    return ShareMeta(
        fingerprint=draw(fingerprints),
        share_size=draw(st.integers(0, 2**32 - 1)),
        secret_seq=draw(st.integers(0, 2**40)),
        secret_size=draw(st.integers(0, 2**32 - 1)),
    )


@st.composite
def share_uploads(draw):
    data = draw(small_bytes)
    meta = draw(share_metas())
    return ShareUpload(meta=meta, data=data)


@st.composite
def recipe_entries(draw):
    return RecipeEntry(
        fingerprint=draw(fingerprints),
        secret_size=draw(st.integers(0, 2**32 - 1)),
    )


@st.composite
def file_manifests(draw):
    return FileManifest(
        lookup_key=draw(small_bytes),
        path_share=draw(small_bytes),
        file_size=draw(st.integers(0, 2**50)),
        secret_count=draw(st.integers(0, 2**40)),
    )


@st.composite
def file_entries(draw):
    return FileEntry(
        recipe_ref=ContainerRef(
            container_id=f"container-{draw(st.integers(0, 10**9)):010d}",
            entry_index=draw(st.integers(0, 2**31)),
        ),
        path_share=draw(small_bytes),
        file_size=draw(st.integers(0, 2**50)),
        secret_count=draw(st.integers(0, 2**40)),
    )


def entries_equal(a: FileEntry, b: FileEntry) -> bool:
    return (
        a.recipe_ref == b.recipe_ref
        and a.path_share == b.path_share
        and a.file_size == b.file_size
        and a.secret_count == b.secret_count
    )


# ---------------------------------------------------------------------------
# request round-trips
# ---------------------------------------------------------------------------


class TestRequestRoundTrips:
    @given(user=user_ids, fps=st.lists(fingerprints, max_size=8))
    def test_query_duplicates(self, user, fps):
        blob = wire.encode_query_duplicates(user, fps)
        assert wire.decode_query_duplicates(blob) == (user, fps)

    @given(user=user_ids, uploads=st.lists(share_uploads(), max_size=5))
    def test_upload_shares(self, user, uploads):
        blob = wire.encode_upload_shares(user, uploads)
        got_user, got = wire.decode_upload_shares(blob)
        assert got_user == user
        assert got == uploads

    @given(user=user_ids, manifest=file_manifests(),
           metas=st.lists(share_metas(), max_size=5))
    def test_finalize_file(self, user, manifest, metas):
        blob = wire.encode_finalize_file(user, manifest, metas)
        got_user, got_manifest, got_metas = wire.decode_finalize_file(blob)
        assert got_user == user
        assert got_manifest == manifest
        assert got_metas == metas

    @given(user=user_ids, key=small_bytes)
    def test_user_key(self, user, key):
        assert wire.decode_user_key(wire.encode_user_key(user, key)) == (user, key)

    @given(user=user_ids, key=small_bytes, bypass=st.booleans())
    def test_get_recipe(self, user, key, bypass):
        blob = wire.encode_get_recipe(user, key, bypass)
        assert wire.decode_get_recipe(blob) == (user, key, bypass)

    @given(user=user_ids)
    def test_user(self, user):
        assert wire.decode_user(wire.encode_user(user)) == user

    @given(fps=st.lists(fingerprints, max_size=8))
    def test_fetch_shares(self, fps):
        assert wire.decode_fetch_shares(wire.encode_fetch_shares(fps)) == fps

    @given(fp=fingerprints, data=small_bytes)
    def test_replace_share(self, fp, data):
        blob = wire.encode_replace_share(fp, data)
        assert wire.decode_replace_share(blob) == (fp, data)

    @given(user=user_ids, key=small_bytes,
           entries=st.lists(recipe_entries(), max_size=5))
    def test_rebuild_recipe(self, user, key, entries):
        blob = wire.encode_rebuild_recipe(user, key, entries)
        assert wire.decode_rebuild_recipe(blob) == (user, key, entries)

    def test_ping_pong(self):
        assert wire.decode_ping(wire.encode_ping()) == (wire.WIRE_VERSION, 0)
        assert wire.decode_pong(wire.encode_pong(3)) == (wire.WIRE_VERSION, 3, 0)

    def test_ping_pong_trace_flags(self):
        # The flags byte only appears when nonzero — a zero-flag PING is
        # byte-identical to the pre-extension encoding.
        assert len(wire.encode_ping(2, 0)) == len(wire.encode_ping(2)) == 2
        assert len(wire.encode_ping(2, wire.FLAG_TRACE)) == 3
        version, flags = wire.decode_ping(wire.encode_ping(2, wire.FLAG_TRACE))
        assert (version, flags) == (2, wire.FLAG_TRACE)
        version, sid, flags = wire.decode_pong(
            wire.encode_pong(7, 2, wire.FLAG_TRACE)
        )
        assert (version, sid, flags) == (2, 7, wire.FLAG_TRACE)


# ---------------------------------------------------------------------------
# response round-trips
# ---------------------------------------------------------------------------


class TestResponseRoundTrips:
    @given(values=st.lists(st.booleans(), max_size=20))
    def test_bools(self, values):
        assert wire.decode_bools(wire.encode_bools(values)) == values

    @given(entry=file_entries())
    def test_file_entry(self, entry):
        got = wire.decode_file_entry(wire.encode_file_entry(entry))
        assert entries_equal(got, entry)

    @given(entries=st.lists(recipe_entries(), max_size=8))
    def test_recipe(self, entries):
        assert wire.decode_recipe(wire.encode_recipe(entries)) == entries

    @given(listing=st.lists(st.tuples(small_bytes, file_entries()), max_size=5))
    def test_file_list(self, listing):
        got = wire.decode_file_list(wire.encode_file_list(listing))
        assert len(got) == len(listing)
        for (got_key, got_entry), (key, entry) in zip(got, listing):
            assert got_key == key
            assert entries_equal(got_entry, entry)

    @given(batch=st.lists(st.tuples(fingerprints, small_bytes), max_size=8))
    def test_share_batch(self, batch):
        assert wire.decode_share_batch(wire.encode_share_batch(batch)) == batch

    @given(total=st.integers(0, 2**32 - 1))
    def test_shares_end(self, total):
        assert wire.decode_shares_end(wire.encode_shares_end(total)) == total

    @given(value=st.integers(-(2**62), 2**62))
    def test_int(self, value):
        assert wire.decode_int(wire.encode_int(value)) == value

    @given(fps=st.lists(fingerprints, max_size=8))
    def test_fp_list(self, fps):
        assert wire.decode_fp_list(wire.encode_fp_list(fps)) == fps

    @given(values=st.lists(st.integers(0, 2**40), min_size=8, max_size=8))
    def test_stats(self, values):
        stats = DedupStats(
            logical_data=values[0], logical_shares=values[1],
            transferred_shares=values[2], physical_shares=values[3],
            secrets_total=values[4], shares_total=values[5],
            shares_transferred=values[6], shares_stored=values[7],
        )
        got = wire.decode_stats(wire.encode_stats(stats))
        assert got.snapshot().__dict__ == stats.snapshot().__dict__

    @given(backups=st.lists(st.tuples(user_ids, small_bytes), max_size=5))
    def test_backup_list(self, backups):
        assert wire.decode_backup_list(wire.encode_backup_list(backups)) == backups


# ---------------------------------------------------------------------------
# typed error frames
# ---------------------------------------------------------------------------


class TestErrorFrames:
    @pytest.mark.parametrize("exc_type", [
        CloudUnavailableError, NotFoundError, StorageError, ProtocolError,
        IntegrityError, ReproError,
    ])
    def test_exception_class_round_trips(self, exc_type):
        rebuilt = wire.decode_error(wire.encode_error(exc_type("boom 42")))
        assert type(rebuilt) is exc_type
        assert "boom 42" in str(rebuilt)

    def test_subclass_maps_to_itself_not_base(self):
        rebuilt = wire.decode_error(wire.encode_error(CloudUnavailableError("x")))
        assert type(rebuilt) is CloudUnavailableError

    def test_unknown_code_degrades_to_protocol_error(self):
        blob = bytes([200]) + (0).to_bytes(4, "big")
        assert isinstance(wire.decode_error(blob), ProtocolError)


# ---------------------------------------------------------------------------
# framing + rejection
# ---------------------------------------------------------------------------


class TestFraming:
    @given(frame_type=st.integers(0, 255), payload=st.binary(max_size=512))
    def test_frame_round_trip(self, frame_type, payload):
        blob = wire.encode_frame(frame_type, payload)
        assert wire.decode_frames(blob) == [(frame_type, payload)]

    @given(frames=st.lists(
        st.tuples(st.integers(0, 255), st.binary(max_size=64)), max_size=5))
    def test_frame_stream_round_trip(self, frames):
        blob = b"".join(wire.encode_frame(t, p) for t, p in frames)
        assert wire.decode_frames(blob) == frames

    def test_truncated_stream_rejected(self):
        blob = wire.encode_frame(wire.T_PING, wire.encode_ping())
        with pytest.raises(ProtocolError):
            wire.decode_frames(blob[:-1])

    def test_bad_magic_rejected(self):
        blob = wire.encode_frame(wire.T_PING, b"")
        with pytest.raises(ProtocolError, match="magic"):
            wire.decode_frames(b"\x00\x00" + blob[2:])

    def test_oversized_incoming_frame_rejected_before_allocation(self):
        header = wire.FRAME_HEADER.pack(0xCD5E, wire.T_PING, 2**31)
        with pytest.raises(ProtocolError, match="cap"):
            wire.decode_frames(header + b"x" * 16)

    def test_oversized_outgoing_frame_rejected(self):
        with pytest.raises(ProtocolError, match="cap"):
            wire.encode_frame(wire.R_OK, b"x" * 32, max_frame=16)

    @given(garbage=st.binary(min_size=1, max_size=64))
    @settings(max_examples=50)
    def test_garbage_payloads_never_misparse(self, garbage):
        """Every decoder either raises ProtocolError or returns a value —
        it must never raise anything else (no struct.error leaks, no
        unbounded allocation from a hostile count field)."""
        decoders = [
            wire.decode_query_duplicates, wire.decode_upload_shares,
            wire.decode_finalize_file, wire.decode_user_key,
            wire.decode_get_recipe, wire.decode_user,
            wire.decode_fetch_shares, wire.decode_replace_share,
            wire.decode_rebuild_recipe, wire.decode_bools,
            wire.decode_recipe, wire.decode_file_list,
            wire.decode_share_batch, wire.decode_shares_end,
            wire.decode_int, wire.decode_fp_list, wire.decode_stats,
            wire.decode_backup_list, wire.decode_error,
        ]
        for decode in decoders:
            try:
                decode(garbage)
            except ProtocolError:
                pass

    def test_trailing_garbage_rejected(self):
        blob = wire.encode_query_duplicates("alice", []) + b"\x00"
        with pytest.raises(ProtocolError, match="trailing"):
            wire.decode_query_duplicates(blob)

    @given(count=st.integers(2**20, 2**32 - 1))
    @settings(max_examples=20)
    def test_hostile_count_fields_cannot_allocate(self, count):
        """A count field promising millions of entries hits the bounds
        check on the first missing byte instead of looping."""
        blob = count.to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            wire.decode_fetch_shares(blob)


# ---------------------------------------------------------------------------
# v2 (mux) framing + version negotiation
# ---------------------------------------------------------------------------


def exact_reader(blob: bytes):
    """A ``recv_exact``-shaped reader over an in-memory byte string."""
    pos = 0

    def recv_exact(n: int) -> bytes:
        nonlocal pos
        if pos + n > len(blob):
            raise ConnectionError("EOF mid-frame")
        out = blob[pos:pos + n]
        pos += n
        return out

    return recv_exact


class TestMuxFraming:
    def test_header_sizes(self):
        # v2 inserts exactly one u32 request-id word after the type byte.
        assert wire.FRAME_HEADER.size == 7
        assert wire.MUX_FRAME_HEADER.size == 11

    @given(
        frame_type=st.integers(0, 255),
        request_id=st.integers(0, wire.REQUEST_ID_MAX),
        payload=st.binary(max_size=512),
    )
    def test_mux_frame_round_trip(self, frame_type, request_id, payload):
        blob = wire.encode_mux_frame(frame_type, request_id, payload)
        assert wire.read_frame_mux(exact_reader(blob)) == (
            frame_type, request_id, payload,
        )

    @given(request_id=st.integers(0, wire.REQUEST_ID_MAX))
    def test_versioned_encode_matches_plain_encoders(self, request_id):
        v1 = wire.encode_frame_v(1, wire.R_OK, request_id, b"x")
        v2 = wire.encode_frame_v(2, wire.R_OK, request_id, b"x")
        assert v1 == wire.encode_frame(wire.R_OK, b"x")  # id dropped on v1
        assert v2 == wire.encode_mux_frame(wire.R_OK, request_id, b"x")
        assert wire.read_frame_v(exact_reader(v1), 1) == (wire.R_OK, 0, b"x")
        assert wire.read_frame_v(exact_reader(v2), 2) == (
            wire.R_OK, request_id, b"x",
        )

    @pytest.mark.parametrize("request_id", [-1, wire.REQUEST_ID_MAX + 1])
    def test_request_id_outside_u32_rejected(self, request_id):
        with pytest.raises(ProtocolError, match="request id"):
            wire.encode_mux_frame(wire.T_PING, request_id)

    def test_mux_bad_magic_rejected(self):
        blob = wire.encode_mux_frame(wire.T_PING, 1, b"")
        with pytest.raises(ProtocolError, match="magic"):
            wire.read_frame_mux(exact_reader(b"\x00\x00" + blob[2:]))

    def test_mux_oversized_length_rejected_before_allocation(self):
        header = wire.MUX_FRAME_HEADER.pack(0xCD5E, wire.T_PING, 1, 2**31)
        with pytest.raises(ProtocolError, match="cap"):
            wire.read_frame_mux(exact_reader(header + b"x" * 16))

    def test_mux_truncated_frame_rejected(self):
        blob = wire.encode_mux_frame(wire.T_PING, 1, b"abc")
        with pytest.raises(ConnectionError):
            wire.read_frame_mux(exact_reader(blob[:-1]))

    @given(peer=st.integers(0, 2**16 - 1))
    def test_negotiation_clamps_both_directions(self, peer):
        agreed = wire.negotiate_version(peer)
        assert 1 <= agreed <= wire.WIRE_VERSION
        if peer <= 1:
            assert agreed == 1  # old (or nonsense-zero) peers keep v1
        if peer >= wire.WIRE_VERSION:
            assert agreed == wire.WIRE_VERSION

    def test_ping_pong_carry_versions(self):
        assert wire.decode_ping(wire.encode_ping(1)) == (1, 0)
        version, server_id, flags = wire.decode_pong(wire.encode_pong(9, version=1))
        assert (version, server_id, flags) == (1, 9, 0)
