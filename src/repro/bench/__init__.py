"""Experiment drivers shared by ``benchmarks/`` and ``examples/``.

Each module regenerates one of the paper's tables/figures (see the
experiment index in DESIGN.md):

* :mod:`repro.bench.table1` — secret-sharing comparison (Table 1);
* :mod:`repro.bench.encoding` — encoding-speed sweeps (Figure 5);
* :mod:`repro.bench.dedup` — two-stage dedup trace simulation (Figure 6);
* :mod:`repro.bench.transfer` — transfer-speed models (Table 2, Figures
  7-8);
* :mod:`repro.bench.reporting` — tiny table-printing helpers.

The cost analysis (Figure 9) lives in :mod:`repro.costs`.
"""

from repro.bench.dedup import TwoStageSimulator, WeeklyDedupRow, simulate_two_stage
from repro.bench.encoding import encoding_speed, sweep_n, sweep_threads
from repro.bench.reporting import format_table
from repro.bench.table1 import scheme_comparison
from repro.bench.transfer import (
    aggregate_upload_speeds,
    baseline_transfer_speeds,
    client_upload_walltime,
    cloud_speed_table,
    trace_transfer_speeds,
)

__all__ = [
    "TwoStageSimulator",
    "WeeklyDedupRow",
    "aggregate_upload_speeds",
    "baseline_transfer_speeds",
    "client_upload_walltime",
    "cloud_speed_table",
    "encoding_speed",
    "format_table",
    "scheme_comparison",
    "simulate_two_stage",
    "sweep_n",
    "sweep_threads",
    "trace_transfer_speeds",
]
