"""LSM store: dict-equivalence, flush/compaction, recovery, snapshots."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.lsm.db import LSMStore
from repro.lsm.memtable import TOMBSTONE, MemTable


class TestMemTable:
    def test_put_get_delete(self):
        mem = MemTable()
        mem.put(b"a", b"1")
        assert mem.get(b"a") == b"1"
        mem.delete(b"a")
        assert mem.get(b"a") is TOMBSTONE
        assert mem.get(b"other") is None

    def test_byte_accounting(self):
        mem = MemTable()
        mem.put(b"key", b"value")
        assert mem.approximate_bytes == 8
        mem.put(b"key", b"v")
        assert mem.approximate_bytes == 4
        mem.delete(b"key")
        assert mem.approximate_bytes == 3

    def test_sorted_items(self):
        mem = MemTable()
        for key in (b"c", b"a", b"b"):
            mem.put(key, key)
        assert [k for k, _ in mem.sorted_items()] == [b"a", b"b", b"c"]


class TestLSMStore:
    def test_basic_crud(self, tmp_path):
        with LSMStore(tmp_path) as db:
            db.put(b"k", b"v")
            assert db.get(b"k") == b"v"
            assert b"k" in db
            db.delete(b"k")
            assert db.get(b"k") is None
            assert b"k" not in db

    @settings(max_examples=15, suppress_health_check=[HealthCheck.function_scoped_fixture], deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([b"put", b"del"]),
                st.binary(min_size=1, max_size=8),
                st.binary(max_size=16),
            ),
            max_size=60,
        )
    )
    def test_dict_equivalence(self, tmp_path, ops):
        """Random op sequences must match a plain dict, across flushes."""
        import shutil, uuid

        directory = tmp_path / uuid.uuid4().hex
        reference: dict[bytes, bytes] = {}
        with LSMStore(directory, memtable_bytes=200) as db:
            for op, key, value in ops:
                if op == b"put":
                    db.put(key, value)
                    reference[key] = value
                else:
                    db.delete(key)
                    reference.pop(key, None)
            for key, value in reference.items():
                assert db.get(key) == value
            assert dict(db.items()) == reference
        shutil.rmtree(directory)

    def test_flush_creates_sstables(self, tmp_path):
        with LSMStore(tmp_path, memtable_bytes=1 << 20) as db:
            for i in range(100):
                db.put(f"k{i}".encode(), b"v" * 10)
            assert db.table_count == 0
            db.flush()
            assert db.table_count == 1
            assert db.get(b"k42") == b"v" * 10

    def test_automatic_flush_on_threshold(self, tmp_path):
        with LSMStore(tmp_path, memtable_bytes=500) as db:
            for i in range(100):
                db.put(f"key{i:04d}".encode(), b"x" * 20)
            assert db.table_count >= 1

    def test_newest_table_wins(self, tmp_path):
        with LSMStore(tmp_path) as db:
            db.put(b"k", b"old")
            db.flush()
            db.put(b"k", b"new")
            db.flush()
            assert db.get(b"k") == b"new"

    def test_tombstone_masks_older_sstable(self, tmp_path):
        with LSMStore(tmp_path) as db:
            db.put(b"k", b"v")
            db.flush()
            db.delete(b"k")
            db.flush()
            assert db.get(b"k") is None
            assert b"k" not in dict(db.items())

    def test_compaction_drops_tombstones(self, tmp_path):
        with LSMStore(tmp_path) as db:
            for i in range(20):
                db.put(f"k{i}".encode(), b"v")
            db.flush()
            for i in range(0, 20, 2):
                db.delete(f"k{i}".encode())
            db.flush()
            db.compact()
            assert db.table_count == 1
            expected = {f"k{i}".encode(): b"v" for i in range(1, 20, 2)}
            assert dict(db.items()) == expected

    def test_auto_compaction_at_threshold(self, tmp_path):
        with LSMStore(tmp_path, memtable_bytes=100, compact_at=3) as db:
            for i in range(200):
                db.put(f"key{i:05d}".encode(), b"x" * 10)
            assert db.table_count < 8

    def test_reopen_recovers_everything(self, tmp_path):
        with LSMStore(tmp_path, memtable_bytes=300) as db:
            for i in range(50):
                db.put(f"k{i}".encode(), f"v{i}".encode())
        with LSMStore(tmp_path) as db2:
            for i in range(50):
                assert db2.get(f"k{i}".encode()) == f"v{i}".encode()

    def test_crash_recovery_via_wal(self, tmp_path):
        db = LSMStore(tmp_path)
        db.put(b"durable", b"yes")
        db._wal.close()  # crash before flush
        recovered = LSMStore(tmp_path)
        assert recovered.get(b"durable") == b"yes"
        recovered.close()

    def test_snapshot(self, tmp_path):
        with LSMStore(tmp_path / "db") as db:
            db.put(b"a", b"1")
            db.snapshot(tmp_path / "snap")
            db.put(b"b", b"2")
        files = list((tmp_path / "snap").glob("sst-*.db"))
        assert files, "snapshot must contain SSTables"

    def test_operations_after_close_raise(self, tmp_path):
        db = LSMStore(tmp_path)
        db.close()
        with pytest.raises(StorageError):
            db.put(b"k", b"v")
        with pytest.raises(StorageError):
            db.get(b"k")

    def test_len(self, tmp_path):
        with LSMStore(tmp_path) as db:
            db.put(b"a", b"1")
            db.put(b"b", b"2")
            db.delete(b"a")
            assert len(db) == 1


class TestRangeScan:
    """Bounded items() scans: prefix bounds pushed into the LSM iterator."""

    def test_prefix_upper_bound(self):
        from repro.lsm.db import prefix_upper_bound

        assert prefix_upper_bound(b"abc") == b"abd"
        assert prefix_upper_bound(b"a\xff") == b"b"
        assert prefix_upper_bound(b"\xff\xff") is None
        assert prefix_upper_bound(b"") is None

    def test_bounded_scan_merges_memtable_and_sstables(self, tmp_path):
        with LSMStore(tmp_path) as db:
            for i in range(50):
                db.put(f"a{i:03d}".encode(), b"old")
            db.flush()
            for i in range(0, 50, 2):
                db.put(f"a{i:03d}".encode(), b"new")  # overwrite in memtable
            db.delete(b"a001")
            db.put(b"b000", b"other-prefix")
            got = dict(db.items(lower=b"a", upper=b"b"))
            assert b"b000" not in got
            assert b"a001" not in got
            assert got[b"a000"] == b"new"
            assert got[b"a003"] == b"old"
            assert len(got) == 49
            # Unbounded scan still sees everything.
            assert len(dict(db.items())) == 50

    def test_bounded_scan_matches_filtered_full_scan(self, tmp_path):
        with LSMStore(tmp_path, memtable_bytes=1 << 10) as db:
            for i in range(300):
                db.put(f"k{i:04d}".encode(), bytes([i % 256]) * 8)
            lower, upper = b"k0100", b"k0200"
            expect = [
                (k, v) for k, v in db.items() if lower <= k < upper
            ]
            assert list(db.items(lower=lower, upper=upper)) == expect
            assert len(expect) == 100

    def test_bounded_scan_skips_blocks(self, tmp_path, monkeypatch):
        from repro.lsm.sstable import SSTable

        with LSMStore(tmp_path, memtable_bytes=1 << 30) as db:
            for i in range(2000):
                db.put(f"k{i:05d}".encode(), b"v" * 40)
            db.flush()
            reads = []
            original = SSTable.read_block

            def counting(self, off, length):
                reads.append((off, length))
                return original(self, off, length)

            monkeypatch.setattr(SSTable, "read_block", counting)
            list(db.items())
            full_reads = len(reads)
            reads.clear()
            narrow = list(db.items(lower=b"k00100", upper=b"k00200"))
            assert len(narrow) == 100
            assert len(reads) < full_reads / 4

    def test_lsm_index_prefix_scan(self, tmp_path):
        from repro.server.index import LSMIndex

        index = LSMIndex(tmp_path / "idx")
        index.put(b"f:one", b"1")
        index.put(b"f:two", b"2")
        index.put(b"s:xyz", b"3")
        index.put(b"u:abc", b"4")
        assert dict(index.items(b"f:")) == {b"f:one": b"1", b"f:two": b"2"}
        assert dict(index.items(b"s:")) == {b"s:xyz": b"3"}
        assert len(dict(index.items())) == 4
        index.close()
