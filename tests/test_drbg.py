"""Deterministic random byte generator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.drbg import DRBG, system_random_bytes
from repro.errors import ParameterError


class TestDeterminism:
    def test_same_seed_same_stream(self):
        assert DRBG("s").random_bytes(100) == DRBG("s").random_bytes(100)

    def test_different_seeds_differ(self):
        assert DRBG("a").random_bytes(32) != DRBG("b").random_bytes(32)

    def test_stream_is_continuous(self):
        one = DRBG("s")
        first, second = one.random_bytes(10), one.random_bytes(10)
        whole = DRBG("s").random_bytes(20)
        assert first + second == whole

    def test_seed_types(self):
        assert DRBG(b"x").random_bytes(8) == DRBG(b"x").random_bytes(8)
        DRBG("str-seed")
        DRBG(12345)

    def test_empty_seed_raises(self):
        with pytest.raises(ParameterError):
            DRBG(b"")


class TestFork:
    def test_forks_are_independent_and_stable(self):
        root = DRBG("root")
        a1 = root.fork("a").random_bytes(16)
        b1 = root.fork("b").random_bytes(16)
        assert a1 != b1
        assert DRBG("root").fork("a").random_bytes(16) == a1

    def test_fork_does_not_consume_parent_stream(self):
        one = DRBG("root")
        one.fork("child")
        assert one.random_bytes(8) == DRBG("root").random_bytes(8)


class TestDistributionHelpers:
    @given(st.integers(-100, 100), st.integers(0, 200))
    def test_randint_bounds(self, low, span):
        high = low + span
        rng = DRBG("bounds")
        for _ in range(20):
            value = rng.randint(low, high)
            assert low <= value <= high

    def test_randint_empty_range_raises(self):
        with pytest.raises(ParameterError):
            DRBG("x").randint(5, 4)

    def test_randint_covers_range(self):
        rng = DRBG("coverage")
        seen = {rng.randint(0, 3) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_random_unit_interval(self):
        rng = DRBG("float")
        values = [rng.random() for _ in range(100)]
        assert all(0 <= v < 1 for v in values)
        assert 0.2 < sum(values) / len(values) < 0.8

    def test_choice(self):
        rng = DRBG("choice")
        items = ["a", "b", "c"]
        assert all(rng.choice(items) in items for _ in range(20))
        with pytest.raises(ParameterError):
            rng.choice([])

    def test_shuffle_is_permutation(self):
        rng = DRBG("shuffle")
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_negative_length_raises(self):
        with pytest.raises(ParameterError):
            DRBG("x").random_bytes(-1)


def test_system_random_bytes():
    assert len(system_random_bytes(16)) == 16
    assert system_random_bytes(16) != system_random_bytes(16)
