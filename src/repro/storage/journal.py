"""Redo journal for in-flight (unsealed) container entries.

The durability hole in the original design: :class:`~repro.storage.
container.ContainerManager` packs shares into 4 MB write buffers and only
publishes a container when a buffer fills or ``flush()`` runs — so a
share the server already acknowledged could sit purely in RAM.  Crash-only
operation forbids that: **nothing is acked before it is durable**.

Rather than seal a container per ack (which would destroy the 4 MB
packing the paper's container design exists for), every ``append`` is
first written to this journal and the server group-commits (one
``flush`` + ``fsync``) per upload batch before the wire ack goes out.
On boot, replay reconstructs every journaled entry — with the *same*
``(container_id, entry_index)`` the acks promised — and publishes the
containers immediately.  A torn tail record (the normal crash signature)
fails its CRC and is dropped, exactly like the LSM write-ahead log.

Record format (big-endian), one record per appended entry::

    u32 crc32 | u32 length | payload
    payload := u32 cid_len | cid | u32 entry_index | u8 kind
             | u32 user_len | user | u32 key_len | key | data
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import StorageError

__all__ = ["ContainerJournal", "JournalEntry"]

_HEADER = struct.Struct(">II")
_U32 = struct.Struct(">I")


@dataclass(frozen=True)
class JournalEntry:
    """One replayed append: everything needed to rebuild the entry."""

    container_id: str
    entry_index: int
    kind: int
    user_id: str
    key: bytes
    payload: bytes


class ContainerJournal:
    """Append-only, CRC-framed redo log with explicit group commit."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Long-lived handle owned by the journal, closed in close().
        self._fh = open(self.path, "ab")  # noqa: SIM115
        self._dirty = False

    # ------------------------------------------------------------------
    def record(
        self,
        container_id: str,
        entry_index: int,
        kind: int,
        user_id: str,
        key: bytes,
        payload: bytes,
    ) -> None:
        """Buffer one append record; durable only after :meth:`commit`."""
        if self._fh.closed:
            raise StorageError("container journal is closed")
        cid = container_id.encode("utf-8")
        user = user_id.encode("utf-8")
        body = b"".join(
            [
                _U32.pack(len(cid)),
                cid,
                _U32.pack(entry_index),
                struct.pack(">B", kind),
                _U32.pack(len(user)),
                user,
                _U32.pack(len(key)),
                key,
                payload,
            ]
        )
        self._fh.write(_HEADER.pack(zlib.crc32(body), len(body)) + body)
        self._dirty = True

    def commit(self) -> None:
        """Group commit: every record so far becomes crash-durable."""
        if self._fh.closed:
            raise StorageError("container journal is closed")
        if not self._dirty:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._dirty = False

    # ------------------------------------------------------------------
    def replay(self) -> Iterator[JournalEntry]:
        """Yield every intact record; stop silently at a torn tail."""
        if not self.path.exists():
            return
        with open(self.path, "rb") as fh:
            while True:
                header = fh.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return
                crc, length = _HEADER.unpack(header)
                body = fh.read(length)
                if len(body) < length or zlib.crc32(body) != crc:
                    return  # torn tail: the crash interrupted this record
                try:
                    yield self._parse(body)
                except (struct.error, UnicodeDecodeError, IndexError):
                    return  # framed but malformed: treat as tail corruption

    @staticmethod
    def _parse(body: bytes) -> JournalEntry:
        pos = 0

        def take(n: int) -> bytes:
            nonlocal pos
            if pos + n > len(body):
                raise IndexError("journal record truncated")
            out = body[pos : pos + n]
            pos += n
            return out

        cid = take(_U32.unpack(take(4))[0]).decode("utf-8")
        entry_index = _U32.unpack(take(4))[0]
        kind = take(1)[0]
        user = take(_U32.unpack(take(4))[0]).decode("utf-8")
        key = take(_U32.unpack(take(4))[0])
        payload = body[pos:]
        return JournalEntry(
            container_id=cid,
            entry_index=entry_index,
            kind=kind,
            user_id=user,
            key=key,
            payload=payload,
        )

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Truncate (every journaled container has been published)."""
        self._fh.close()
        self._fh = open(self.path, "wb")  # noqa: SIM115 -- long-lived, closed in close()
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._dirty = False

    @property
    def size(self) -> int:
        """Current on-disk journal size (0 after a reset)."""
        if self._fh.closed:
            return self.path.stat().st_size if self.path.exists() else 0
        self._fh.flush()
        return self.path.stat().st_size

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "ContainerJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
