"""Observability: metrics registry, request tracing, structured logging.

The serving stack (encode pools → comm engine → mux wire → async
front-end → gateway → crash-only server) is instrumented through this
package.  Three subsystems, deliberately dependency-free (they import
nothing from the serving layers, so every layer can import them):

* :mod:`repro.obs.registry` — process-wide metrics registry: labeled
  counters, gauges and fixed-bucket latency histograms with a lock-free
  per-thread fast path, a versioned snapshot, and Prometheus text
  rendering.  The process default lives at
  :data:`~repro.obs.registry.REGISTRY`.
* :mod:`repro.obs.trace` — request tracing: trace ids minted at
  :class:`~repro.client.client.CDStoreClient` entry points, carried in
  the wire v2 trace extension, recorded as :class:`~repro.obs.trace.
  Span` rows in bounded per-component ring buffers, with a structured
  slow-request log above a configurable threshold.
* :mod:`repro.obs.log` — structured event logging (human one-liners by
  default, JSON lines on request) shared by the CLI summaries and the
  slow-request log.

Every registered metric name is catalogued in ``docs/OBSERVABILITY.md``;
the OBS-001 checker (``repro analyze``) cross-checks the two so the
catalogue cannot drift from the code.
"""

from repro.obs.log import StructuredLog
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.trace import (
    TRACE_ID_SIZE,
    ZERO_TRACE_ID,
    Span,
    SpanRecorder,
    Tracer,
    current_context,
    mint_span_id,
    mint_trace_id,
    use_context,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "REGISTRY",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "StructuredLog",
    "TRACE_ID_SIZE",
    "Tracer",
    "ZERO_TRACE_ID",
    "current_context",
    "mint_span_id",
    "mint_trace_id",
    "render_prometheus",
    "use_context",
]
