"""SUP-001 fixture: a bare suppression silences nothing.

The comment below carries no ``-- justification``, so SUP-001 fires on
it *and* the LOCK-001 finding it tried to hide survives.
"""

import threading


class Counter:
    GUARDED_BY = {"_value": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def bump(self):
        self._value += 1  # analysis: ignore[LOCK-001]
