"""WIRE-001..005: every wire frame type is handled everywhere, once.

A project-level checker: it needs ``net/wire.py`` (the constant
registry), ``net/server.py`` (dispatch), ``net/client.py`` (proxy),
``server/protocol.py`` (the declared API surface) and the repository
README (human-facing frame table) in one view.  For each ``wire.py`` in
the analysed set it locates the sibling server/client modules in the
same directory, the nearest ``README.md`` walking up from the wire
module on disk, and any analysed ``protocol.py`` declaring a
``typing.Protocol`` class.

* WIRE-001 — a ``T_*``/``R_*`` constant never referenced in the server
  module: the dispatch (or its response encoding) cannot cover it.
* WIRE-002 — a constant never referenced in the client module: the proxy
  can neither send nor expect it.
* WIRE-003 — a constant whose short name (``T_FETCH_SHARES`` →
  ``FETCH_SHARES``) is missing from the README frame table.
* WIRE-004 — two constants share one wire byte value (dispatch
  shadowing: the second can never be selected).
* WIRE-005 — the wire surface and the declared server-API surface have
  drifted: a Protocol method with no ``METHOD_FRAMES`` mapping (and not
  in ``LOCAL_ONLY_METHODS``), a ``METHOD_FRAMES`` key the Protocol never
  declares, or a ``T_*`` request frame that is neither control machinery
  (``CONTROL_FRAMES``) nor mapped to any method.  Only runs when the
  wire module actually declares ``METHOD_FRAMES``, so single-surface
  fixtures stay exercisable.

References are whole-word textual matches, which is exactly the right
strength here: ``wire.T_PING`` and ``T_PING`` both count, a constant
mentioned only in a comment counts too — and that is fine, because the
point is "adding a frame forces you to visit every surface", and a
comment claiming handling is at least a visited, reviewable claim.
Missing sibling files are skipped rather than flagged so fixtures can
exercise one surface at a time.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.engine import FileContext, Finding, Project

__all__ = ["check_wire_surface"]


def _frame_constants(ctx: FileContext) -> list[tuple[str, int, int]]:
    """Module-level ``(name, value, lineno)`` for every T_*/R_* int const."""
    out: list[tuple[str, int, int]] = []
    for stmt in ctx.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if (
                isinstance(target, ast.Name)
                and (target.id.startswith("T_") or target.id.startswith("R_"))
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, int)
            ):
                out.append((target.id, stmt.value.value, stmt.lineno))
    return out


def _word_present(word: str, text: str) -> bool:
    return re.search(rf"\b{re.escape(word)}\b", text) is not None


def _nearest_readme(wire_path: Path) -> Path | None:
    for parent in wire_path.resolve().parents:
        candidate = parent / "README.md"
        if candidate.is_file():
            return candidate
    return None


def _module_assignment(ctx: FileContext, var_name: str) -> ast.expr | None:
    """The value expression of a module-level ``NAME = ...`` (ann or not)."""
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(target, ast.Name) and target.id == var_name
                for target in stmt.targets
            ):
                return stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == var_name
                and stmt.value is not None
            ):
                return stmt.value
    return None


def _method_frames(ctx: FileContext) -> dict[str, tuple[str, int]] | None:
    """``METHOD_FRAMES`` as ``{method: (frame constant name, key lineno)}``."""
    value = _module_assignment(ctx, "METHOD_FRAMES")
    if not isinstance(value, ast.Dict):
        return None
    out: dict[str, tuple[str, int]] = {}
    for key, val in zip(value.keys, value.values):
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(val, ast.Name)
        ):
            out[key.value] = (val.id, key.lineno)
    return out


def _referenced_names(ctx: FileContext, var_name: str) -> set[str]:
    """Constant *names* inside e.g. ``CONTROL_FRAMES = frozenset({T_PING})``."""
    value = _module_assignment(ctx, var_name)
    if value is None:
        return set()
    return {
        node.id
        for node in ast.walk(value)
        if isinstance(node, ast.Name) and node.id != "frozenset"
    }


def _string_members(ctx: FileContext, var_name: str) -> set[str]:
    """String literals inside e.g. ``LOCAL_ONLY_METHODS = frozenset({"close"})``."""
    value = _module_assignment(ctx, var_name)
    if value is None:
        return set()
    return {
        node.value
        for node in ast.walk(value)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def _protocol_class(ctx: FileContext) -> ast.ClassDef | None:
    """The first module-level class subclassing ``typing.Protocol``."""
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.ClassDef) and any(
            (isinstance(base, ast.Name) and base.id == "Protocol")
            or (isinstance(base, ast.Attribute) and base.attr == "Protocol")
            for base in stmt.bases
        ):
            return stmt
    return None


def _check_protocol_surface(project: Project, wire: FileContext) -> list[Finding]:
    """WIRE-005: METHOD_FRAMES <-> Protocol <-> T_* request frames agree."""
    frames = _method_frames(wire)
    if frames is None:
        return []
    findings: list[Finding] = []

    control = _referenced_names(wire, "CONTROL_FRAMES")
    local_only = _string_members(wire, "LOCAL_ONLY_METHODS")
    mapped = {frame_name for frame_name, _ in frames.values()}

    # Every request frame must be either connection machinery or the
    # carrier of some API method — an unmapped T_* can never dispatch.
    for name, _value, lineno in _frame_constants(wire):
        if name.startswith("T_") and name not in control and name not in mapped:
            findings.append(
                wire.finding(
                    lineno,
                    "WIRE-005",
                    f"request frame {name} is neither in CONTROL_FRAMES nor "
                    f"mapped by METHOD_FRAMES — no server-API method can be "
                    f"dispatched to it",
                )
            )

    protocol_ctx = protocol_cls = None
    for ctx in project.find("/protocol.py"):
        cls = _protocol_class(ctx)
        if cls is not None:
            protocol_ctx, protocol_cls = ctx, cls
            break
    if protocol_cls is None or protocol_ctx is None:
        return findings

    methods = {
        stmt.name: stmt.lineno
        for stmt in protocol_cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and not stmt.name.startswith("_")
    }

    for method, lineno in sorted(methods.items()):
        if method in local_only or method in frames:
            continue
        findings.append(
            protocol_ctx.finding(
                lineno,
                "WIRE-005",
                f"Protocol method {method} has no METHOD_FRAMES mapping in "
                f"{wire.display_path} and is not in LOCAL_ONLY_METHODS — "
                f"decide its wire frame or declare it local-only",
            )
        )
    for method, (frame_name, lineno) in sorted(frames.items()):
        if method not in methods:
            findings.append(
                wire.finding(
                    lineno,
                    "WIRE-005",
                    f"METHOD_FRAMES maps {method!r} (to {frame_name}) but "
                    f"{protocol_cls.name} in {protocol_ctx.display_path} "
                    f"declares no such method",
                )
            )
    for method in sorted(local_only.intersection(frames)):
        findings.append(
            wire.finding(
                frames[method][1],
                "WIRE-005",
                f"{method!r} is in LOCAL_ONLY_METHODS yet has a "
                f"METHOD_FRAMES mapping — it cannot be both local-only "
                f"and wire-reachable",
            )
        )
    return findings


def _check_one_wire(project: Project, wire: FileContext) -> list[Finding]:
    constants = _frame_constants(wire)
    if not constants:
        return []
    findings: list[Finding] = []

    by_value: dict[int, list[tuple[str, int]]] = {}
    for name, value, lineno in constants:
        by_value.setdefault(value, []).append((name, lineno))
    for value, entries in sorted(by_value.items()):
        if len(entries) > 1:
            names = ", ".join(name for name, _ in entries)
            findings.append(
                wire.finding(
                    entries[-1][1],
                    "WIRE-004",
                    f"frame byte 0x{value:02X} is assigned to {names} — "
                    f"dispatch on the shared value shadows all but one",
                )
            )

    wire_dir = str(Path(wire.display_path).parent)
    siblings = {
        Path(ctx.display_path).name: ctx
        for ctx in project.files
        if str(Path(ctx.display_path).parent) == wire_dir
    }
    surfaces = [
        ("WIRE-001", siblings.get("server.py"), "server dispatch"),
        ("WIRE-002", siblings.get("client.py"), "client proxy"),
    ]
    for rule, sibling, role in surfaces:
        if sibling is None:
            continue
        for name, _value, lineno in constants:
            if not _word_present(name, sibling.source):
                findings.append(
                    wire.finding(
                        lineno,
                        rule,
                        f"frame constant {name} is never referenced by the "
                        f"{role} ({sibling.display_path}) — the frame cannot "
                        f"be handled there",
                    )
                )

    readme = _nearest_readme(wire.path)
    if readme is not None:
        readme_text = readme.read_text()
        for name, _value, lineno in constants:
            short = name.split("_", 1)[1] if "_" in name else name
            if not _word_present(short, readme_text):
                findings.append(
                    wire.finding(
                        lineno,
                        "WIRE-003",
                        f"frame {name} ({short}) is missing from the "
                        f"frame table in {readme.name}",
                    )
                )

    findings.extend(_check_protocol_surface(project, wire))
    return findings


def check_wire_surface(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for wire in project.find("/wire.py"):
        findings.extend(_check_one_wire(project, wire))
    return findings
