"""LRU cache used for LSM blocks and containers."""

import pytest

from repro.errors import ParameterError
from repro.lsm.cache import LRUCache


class TestLRUCache:
    def test_capacity_validation(self):
        with pytest.raises(ParameterError):
            LRUCache(0)

    def test_basic_get_put(self):
        cache = LRUCache(10)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_overwrite_updates_size(self):
        cache = LRUCache(10, size_of=len)
        cache.put("k", b"xxxx")
        cache.put("k", b"yy")
        assert cache.size == 2

    def test_byte_bounded_capacity(self):
        cache = LRUCache(100, size_of=len)
        cache.put("a", b"x" * 60)
        cache.put("b", b"y" * 60)  # exceeds 100 -> evicts a
        assert "a" not in cache
        assert "b" in cache

    def test_pop_removes_without_eviction_callback(self):
        evicted = []
        cache = LRUCache(100, size_of=len,
                         on_evict=lambda k, v: evicted.append(k))
        cache.put("a", b"x" * 10)
        assert cache.pop("a") == b"x" * 10
        assert cache.pop("a") is None  # idempotent on absent keys
        assert "a" not in cache
        assert cache.size == 0
        assert evicted == []  # on_evict is for capacity pressure only

    def test_eviction_callback(self):
        evicted = []
        cache = LRUCache(1, on_evict=lambda k, v: evicted.append((k, v)))
        cache.put("a", 1)
        cache.put("b", 2)
        assert evicted == [("a", 1)]

    def test_hit_rate_stats(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.size == 0

    def test_oversized_value_evicts_itself_gracefully(self):
        cache = LRUCache(4, size_of=len)
        cache.put("big", b"x" * 100)
        assert len(cache) == 0  # cannot retain something over capacity
