"""Write-ahead log: replay, torn-tail recovery."""

from repro.lsm.wal import OP_DELETE, OP_PUT, WriteAheadLog


class TestWal:
    def test_replay_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append_put(b"k1", b"v1")
            wal.append_delete(b"k2")
            wal.append_put(b"k3", b"v3" * 100)
        records = list(WriteAheadLog(path).replay())
        assert records == [
            (OP_PUT, b"k1", b"v1"),
            (OP_DELETE, b"k2", b""),
            (OP_PUT, b"k3", b"v3" * 100),
        ]

    def test_missing_file_replays_nothing(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "new.log")
        wal.close()
        (tmp_path / "new.log").unlink()
        assert list(wal.replay()) == []

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append_put(b"good", b"1")
            wal.append_put(b"torn", b"2")
        # Truncate mid-record: crash during the second write.
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])
        records = list(WriteAheadLog(path).replay())
        assert records == [(OP_PUT, b"good", b"1")]

    def test_corrupt_crc_stops_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append_put(b"a", b"1")
            wal.append_put(b"b", b"2")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # corrupt last record's payload
        path.write_bytes(bytes(blob))
        records = list(WriteAheadLog(path).replay())
        assert records == [(OP_PUT, b"a", b"1")]

    def test_reset_truncates(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append_put(b"x", b"y")
        wal.reset()
        wal.append_put(b"z", b"w")
        wal.close()
        assert list(WriteAheadLog(path).replay()) == [(OP_PUT, b"z", b"w")]

    def test_append_after_close_raises(self, tmp_path):
        from repro.errors import StorageError
        import pytest

        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        with pytest.raises(StorageError):
            wal.append_put(b"k", b"v")
