"""LOCK-001: guarded attributes must be mutated under their declared lock.

Classes opt in by declaring a class-level ``GUARDED_BY = guarded_by(...)``
map (see :mod:`repro.analysis.annotations`).  The checker then walks every
method and flags mutations of a guarded ``self.<attr>`` that are not
lexically inside a ``with self.<lock>:`` block.

Exemptions, in declaration order of trust:

* ``__init__``/``__new__``/``__del__`` — construction and teardown happen
  before/after the object is shared (happens-before publication);
* methods named ``*_locked`` — the codebase's naming convention for
  "caller holds the lock";
* methods decorated ``@requires_lock("<lock>")`` — the declarative form
  of the same contract;
* methods decorated with a decorator named ``locked``/``_locked`` — the
  ``CDStoreServer`` idiom where the decorator itself takes ``self._lock``;
* attributes mapped to :data:`~repro.analysis.annotations.EXTERNAL` —
  synchronisation lives one layer up, nothing to check here.
"""

from __future__ import annotations

import ast

from repro.analysis.annotations import EXTERNAL
from repro.analysis.engine import FileContext, Finding

__all__ = ["check_lock_discipline"]

#: Method names on a guarded attribute that mutate it in place.
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "put",
        "remove",
        "rotate",
        "setdefault",
        "sort",
        "update",
        "write",
    }
)

_SKIP_METHODS = frozenset({"__init__", "__new__", "__del__"})


def _guarded_map(cls: ast.ClassDef) -> dict[str, str] | None:
    """Extract ``GUARDED_BY = guarded_by(attr="_lock", ...)`` if present.

    Accepts either the ``guarded_by(...)`` call form or a plain dict
    literal with string keys/values — both are statically readable.
    """
    for stmt in cls.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "GUARDED_BY" for t in stmt.targets
        ):
            continue
        value = stmt.value
        out: dict[str, str] = {}
        if isinstance(value, ast.Call):
            for kw in value.keywords:
                if kw.arg is not None and isinstance(kw.value, ast.Constant):
                    out[kw.arg] = str(kw.value.value)
                elif kw.arg is not None and isinstance(kw.value, ast.Name):
                    # `guarded_by(index=EXTERNAL)` — resolve the sentinel.
                    out[kw.arg] = EXTERNAL if kw.value.id == "EXTERNAL" else kw.value.id
        elif isinstance(value, ast.Dict):
            for key, val in zip(value.keys, value.values):
                if isinstance(key, ast.Constant) and isinstance(val, ast.Constant):
                    out[str(key.value)] = str(val.value)
        return {a: lock for a, lock in out.items() if lock != EXTERNAL} or None
    return None


def _decorator_name(node: ast.expr) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _method_initial_locks(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str] | None:
    """Locks a method body may assume held, or None if the method is exempt."""
    if fn.name in _SKIP_METHODS or fn.name.endswith("_locked"):
        return None
    held: set[str] = set()
    for deco in fn.decorator_list:
        name = _decorator_name(deco)
        if name == "requires_lock" and isinstance(deco, ast.Call):
            for arg in deco.args:
                if isinstance(arg, ast.Constant):
                    held.add(str(arg.value))
        elif name in {"locked", "_locked"}:
            # The CDStoreServer wrapper idiom: the decorator body runs the
            # method inside `with self._lock:`.
            held.add("_lock")
    return held


def _self_attr_base(node: ast.expr) -> str | None:
    """Peel ``self.X``, ``self.X[...]``, ``self.X.y`` down to ``X``."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if isinstance(node, ast.Attribute) and (
            isinstance(node.value, ast.Name) and node.value.id == "self"
        ):
            return node.attr
        node = node.value
    return None


def _with_locks(stmt: ast.With | ast.AsyncWith, lock_names: set[str]) -> set[str]:
    taken: set[str] = set()
    for item in stmt.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in lock_names
        ):
            taken.add(expr.attr)
    return taken


class _MethodWalker:
    """Walks one method, tracking the lexically-held lock set."""

    def __init__(
        self,
        ctx: FileContext,
        cls_name: str,
        guarded: dict[str, str],
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        held: set[str],
    ) -> None:
        self.ctx = ctx
        self.cls_name = cls_name
        self.guarded = guarded
        self.fn = fn
        self.lock_names = set(guarded.values())
        self.findings: list[Finding] = []
        self._walk_block(fn.body, held)

    def _walk_block(self, stmts: list[ast.stmt], held: set[str]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, held)

    def _walk_stmt(self, stmt: ast.stmt, held: set[str]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._check_expr(item.context_expr, held)
            self._walk_block(stmt.body, held | _with_locks(stmt, self.lock_names))
        elif isinstance(stmt, (ast.If, ast.While)):
            self._check_expr(stmt.test, held)
            self._walk_block(stmt.body, held)
            self._walk_block(stmt.orelse, held)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_expr(stmt.iter, held)
            self._check_target(stmt.target, held)
            self._walk_block(stmt.body, held)
            self._walk_block(stmt.orelse, held)
        elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            self._walk_block(stmt.body, held)
            for handler in stmt.handlers:
                self._walk_block(handler.body, held)
            self._walk_block(stmt.orelse, held)
            self._walk_block(stmt.finalbody, held)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Closures are assumed to run where they are defined; a closure
            # scheduled to run elsewhere should be a *_locked helper or use
            # @requires_lock at its eventual call site's discipline.
            self._walk_block(stmt.body, held)
        else:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        self._check_target(target, held)
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        self._check_target(target, held)
                elif isinstance(node, ast.Call):
                    self._check_call(node, held)

    def _check_expr(self, expr: ast.expr, held: set[str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._check_call(node, held)

    def _check_target(self, target: ast.expr, held: set[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_target(elt, held)
            return
        attr = _self_attr_base(target)
        if attr is not None:
            self._flag_if_unheld(target, attr, held)

    def _check_call(self, call: ast.Call, held: set[str]) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            attr = _self_attr_base(func.value)
            if attr is not None:
                self._flag_if_unheld(call, attr, held)

    def _flag_if_unheld(self, node: ast.AST, attr: str, held: set[str]) -> None:
        lock = self.guarded.get(attr)
        if lock is None or lock in held:
            return
        self.findings.append(
            self.ctx.finding(
                node,
                "LOCK-001",
                (
                    f"{self.cls_name}.{self.fn.name} mutates '{attr}' "
                    f"(guarded by 'self.{lock}') outside `with self.{lock}:` "
                    f"— take the lock or mark the method "
                    f'@requires_lock("{lock}")'
                ),
            )
        )


def check_lock_discipline(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        guarded = _guarded_map(node)
        if not guarded:
            continue
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            held = _method_initial_locks(stmt)
            if held is None:
                continue
            findings.extend(
                _MethodWalker(ctx, node.name, guarded, stmt, held).findings
            )
    return findings
