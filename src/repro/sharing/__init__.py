"""Secret-sharing algorithms surveyed in §2 / Table 1 of the paper.

Every scheme implements the :class:`~repro.sharing.base.SecretSharingScheme`
interface: an ``(n, k, r)`` algorithm splits a secret into ``n`` shares such
that any ``k`` reconstruct it and no ``r`` reveal anything about it.

==========  =====================  ==============================
scheme      confidentiality ``r``  storage blowup
==========  =====================  ==============================
SSSS [54]   k - 1                  n
IDA  [50]   0                      n / k
RSSS [16]   configurable           n / (k - r)
SSMS [34]   k - 1 (computational)  n/k + n * keysize/secretsize
AONT-RS     k - 1 (computational)  (n/k) * (1 + keysize/secretsize)
==========  =====================  ==============================

AONT-RS and the convergent variants live in :mod:`repro.core` (they are the
paper's focus); this package holds the classical baselines plus the shared
interface and registry.
"""

from repro.sharing.base import SecretSharingScheme, ShareSet
from repro.sharing.ida_scheme import IDAScheme
from repro.sharing.registry import available_schemes, create_scheme, register_scheme
from repro.sharing.rsss import RSSS
from repro.sharing.ssms import SSMS
from repro.sharing.ssss import SSSS

__all__ = [
    "SecretSharingScheme",
    "ShareSet",
    "SSSS",
    "IDAScheme",
    "RSSS",
    "SSMS",
    "available_schemes",
    "create_scheme",
    "register_scheme",
]
