"""Parallel multi-cloud communication engine (the "comm module", §4.6).

The paper's client "uploads to all clouds concurrently via multi-threading",
so wall-clock transfer cost is the per-cloud *maximum*, not the sum.  This
module gives the client that concurrency:

* a persistent **per-cloud worker** (one thread per cloud connection) that
  owns all traffic to its server, so operations against different clouds
  overlap while traffic to one cloud stays ordered;
* a pluggable **encode pool** (``threads`` workers, ``workers`` flavour)
  that encodes *slabs* of secrets with the batched codec kernels while
  earlier slabs are already in flight — encoding overlaps transfer within
  one upload, the pipelining of Figure 4(a);
* a **streaming transfer stage** (``pipeline_depth > 1``): encode slabs
  flow into a bounded per-cloud upload queue the moment they finish, so
  wire time hides behind encoding even with a single encode thread, and
  at most ``pipeline_depth`` slabs of shares are ever materialised — a
  slow cloud applies backpressure to the encode stage instead of letting
  shares pile up unboundedly;
* a windowed upload path per cloud: shares accumulate into 4 MB windows
  (§4.1 batching), each window is intra-user-dedup-queried (§3.3 stage 1)
  and its unique shares uploaded, while later secrets are still encoding;
* a **windowed restore path**: per-window share maps stream through the
  same bounded queue (:meth:`stream_share_windows`), so the client's
  batched decode starts before the last share arrives, with failover to a
  spare reachable cloud at *per-window* granularity — a cloud that stalls
  or corrupts mid-restore costs one window's retry, not the whole file;
* simulated wall-clock accounting: with an attached
  :class:`~repro.cloud.network.SimClock`, a parallel engine advances by the
  makespan over per-cloud transfer times and a serial engine by their sum.
  Streaming does not double-charge the clock: windows on one cloud
  serialise on that cloud's link (their canonical 4 MB-unit sum equals the
  whole-file charge), while the clouds overlap.

With ``threads == 1`` and ``pipeline_depth == 1`` every operation runs
inline on the caller's thread with byte-identical wire behaviour, so
single-threaded uses stay deterministic and pool-free.

Thread pool vs process pool
---------------------------

``workers="thread"`` (default) encodes slabs on a
:class:`~concurrent.futures.ThreadPoolExecutor`.  Threads share the
client's address space, so there is no pickling cost and pre-built codecs
(e.g. the server-aided CAONT-RS bound to a live key server) work
unchanged — but CPython's GIL serialises the Python-level bookkeeping
between the GIL-releasing hashlib/OpenSSL calls, so throughput plateaus
near single-thread speed.  Threads win for small uploads, for codecs
without a picklable spec, and when encoding merely needs to overlap
*transfer* (the §4.6 pipelining) rather than scale with cores.

``workers="process"`` encodes slabs on a
:class:`~repro.client.workers.ProcessEncodePool`: each worker process
rebuilds the codec once from the dispersal's picklable spec, caches it,
and encodes whole slabs with the vectorised batch kernels, so encoding
escapes the GIL and scales with cores like the paper's C++ prototype
(Figure 5a).  The price is one fork per worker and one pickling
round-trip per slab — and on platforms with
``multiprocessing.shared_memory`` only the *reply* (shares back) is
pickled: slab payloads are written once into per-slab shared segments
that workers read in place, unlinked by the slab-release hook the moment
every cloud drained the slab.  Noise for multi-megabyte backups, overhead
for tiny ones.  Processes win for bulk encoding on
multi-core hosts.  A dispersal whose ``spec()`` is None (pre-built codec
objects) silently falls back to the thread pool, keeping behaviour
correct everywhere.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence, TypeVar

from repro.analysis.annotations import guarded_by
from repro.chunking.base import Chunk
from repro.client.workers import (
    ProcessEncodePool,
    SharedSlabTransport,
    SlabbedShareSets,
    WORKER_MODES,
    shared_slabs_available,
    slab_spans,
)
from repro.cloud.network import MB, SimClock, batch_count, makespan
from repro.core.convergent import ConvergentDispersal
from repro.crypto.hashing import fingerprint
from repro.errors import (
    CloudUnavailableError,
    ParameterError,
    ProtocolError,
    StorageError,
)
from repro.obs.registry import REGISTRY
from repro.obs.trace import ZERO_TRACE_ID, current_context, use_context
from repro.server.index import FileEntry
from repro.server.messages import RecipeEntry, ShareMeta, ShareUpload
from repro.server.server import CDStoreServer

__all__ = [
    "CommEngine",
    "CloudUploadResult",
    "CloudUploader",
    "FETCH_ERRORS",
    "FileSource",
    "PIPELINE_DEPTH_AUTO",
    "SlotShares",
    "UPLOAD_BATCH_BYTES",
    "WindowShares",
    "choose_pipeline_depth",
]

#: Client-side upload batch size (§4.1: "batch the shares ... in a 4MB
#: buffer and upload the buffer when it is full").
UPLOAD_BATCH_BYTES = 4 << 20

#: Unacked upload batches a :class:`CloudUploader` keeps in flight when
#: its server supports pipelined acks (``upload_shares_async``, the mux
#: proxy).  Bounds client memory to this many serialized batches while
#: removing the round-trip stall between consecutive batches.
UPLOAD_ACK_WINDOW = 4

#: Sentinel ``pipeline_depth`` value: derive the depth from the measured
#: encode-rate/wire-rate ratio at the first upload (see
#: :func:`choose_pipeline_depth`).  The CLI passes this when
#: ``--pipeline-depth`` is unset; an explicit integer always wins.
PIPELINE_DEPTH_AUTO = "auto"

#: Depth used by an adaptive engine before any upload has measured the
#: rates (e.g. a download-only client): the old CLI default.
_AUTO_FALLBACK_DEPTH = 4

#: Secrets encoded by the adaptive-depth probe (re-encoded by the real
#: pipeline moments later — convergent encoding is deterministic, so the
#: probe costs a few chunks of CPU and changes nothing on the wire).
_PROBE_SECRETS = 4

# Comm-pipeline stage timings (docs/OBSERVABILITY.md): one observation
# per encode slab / upload batch / restore-window slot fetch, so the
# three histograms together show which §4.6 stage bounds a transfer.
_WINDOW_ENCODE_SECONDS = REGISTRY.histogram(
    "client_window_encode_seconds",
    "Wall time encoding one slab of secrets into shares",
)
_WINDOW_UPLOAD_SECONDS = REGISTRY.histogram(
    "client_window_upload_seconds",
    "Wall time putting one 4 MB upload batch on a cloud's wire",
)
_WINDOW_RESTORE_SECONDS = REGISTRY.histogram(
    "client_window_restore_seconds",
    "Wall time fetching one restore window's shares from one cloud",
)
_FAILOVERS = REGISTRY.counter(
    "client_failovers_total",
    "Restore slots that replaced a failed cloud with a promoted spare",
)


def _carry_context(fn: Callable[..., T]) -> Callable[..., T]:
    """Bind the calling thread's trace context into a pool submission.

    Thread-local context does not follow work onto the engine's worker
    threads; this captures ``(trace_id, span_id)`` at submit time and
    re-activates it in the worker, so per-cloud traffic stays attributed
    to the client span that caused it.  Untraced callers get ``fn`` back
    unwrapped — the hot path costs one tuple compare.
    """
    trace_id, span_id = current_context()
    if trace_id == ZERO_TRACE_ID:
        return fn

    def run(*args, **kwargs):
        with use_context(trace_id, span_id):
            return fn(*args, **kwargs)

    return run


def choose_pipeline_depth(
    encode_rate: float, wire_rate: float, floor: int = 2, ceiling: int = 8
) -> int:
    """Pick a streaming depth from measured encode and wire rates.

    When encoding outruns the wire by a factor ``r``, up to ``~r`` encoded
    windows pile up behind the slowest cloud for every window it drains,
    so a budget of ``round(r) + 1`` in-flight slabs keeps the encode stage
    busy without letting shares accumulate unboundedly; when the wire
    outruns encoding (``r < 1``) two slots already give full overlap (one
    encoding, one on the wire).  The result is clamped to
    ``[floor, ceiling]`` — depth buys diminishing overlap and linear
    memory, so the ceiling caps the window the same way the CLI's old
    fixed default did.
    """
    if encode_rate <= 0 or wire_rate <= 0:
        raise ParameterError("rates must be positive to choose a depth")
    ratio = encode_rate / wire_rate
    return max(floor, min(ceiling, int(round(ratio)) + 1))

#: Errors meaning "this server cannot currently supply usable data" — an
#: outage, missing objects (NotFoundError is a StorageError), a corrupt
#: container, or a malformed recipe.  The restore path fails over to a
#: spare cloud or skips the source rather than aborting the download.
FETCH_ERRORS = (CloudUnavailableError, ProtocolError, StorageError)

T = TypeVar("T")


@dataclass
class CloudUploadResult:
    """Outcome of one file upload on one cloud connection."""

    #: Per-secret share metadata in sequence order (drives finalisation).
    metas: list[ShareMeta] = field(default_factory=list)
    #: Share bytes that actually crossed the wire after intra-user dedup.
    wire_bytes: int = 0
    #: Number of shares transferred (non-duplicates).
    transferred: int = 0
    #: Upload RPCs actually issued (diagnostic; the simulated clock
    #: charges the canonical 4 MB-unit count from ``batch_count``).
    batches: int = 0
    #: Simulated seconds on this cloud's uplink.
    seconds: float = 0.0


class CloudUploader:
    """Stateful per-cloud upload stage: dedup-query + batch + transfer.

    One instance per cloud connection per file.  :meth:`feed` accepts the
    next secret's share the moment it exists (streaming), accumulating 4 MB
    query windows and the persistent §4.1 upload buffer exactly as the
    pre-streaming whole-file pass did — the wire traffic is byte-identical
    regardless of how the feed is sliced into slabs.  :meth:`finish`
    flushes the tails and charges the canonical simulated transfer time.
    """

    def __init__(self, server: CDStoreServer, cloud_idx: int, user_id: str) -> None:
        self.server = server
        self.cloud_idx = cloud_idx
        self.user_id = user_id
        self.result = CloudUploadResult()
        self._seen: set[bytes] = set()
        self._window: list[tuple[ShareMeta, bytes]] = []
        self._window_bytes = 0
        # The 4 MB upload buffer persists across query windows (§4.1: the
        # buffer holds *unique* shares and is uploaded only when full).
        self._batch: list[ShareUpload] = []
        self._batch_bytes = 0
        # Pipelined-ack capability: the mux proxy exposes
        # upload_shares_async; in-process servers and serial proxies do
        # not, and keep the one-round-trip-per-batch path.
        self._upload_async = getattr(server, "upload_shares_async", None)
        self._inflight: deque = deque()

    def _send_batch(self) -> None:
        if not self._batch:
            return
        batch, self._batch = self._batch, []
        self._batch_bytes = 0
        clock = time.perf_counter()
        if self._upload_async is not None:
            # Pipelined: put the batch on the wire and only *wait* when
            # the ack window is full, so consecutive batches (and the
            # next window's dedup query) overlap the server's apply.  A
            # failed batch surfaces here or in finish(); losing the tail
            # of the window is safe because upload_shares is idempotent
            # and the dedup index is only advanced by acked finalize.
            while len(self._inflight) >= UPLOAD_ACK_WINDOW:
                self._inflight.popleft().result()
            self._inflight.append(self._upload_async(self.user_id, batch))
        else:
            self.server.upload_shares(self.user_id, batch)
        # Pipelined sends observe only the enqueue (+ any ack-window
        # stall) — that *is* the wall time this batch cost the client.
        _WINDOW_UPLOAD_SECONDS.observe(time.perf_counter() - clock)
        self.result.batches += 1

    def _drain_acks(self) -> None:
        while self._inflight:
            self._inflight.popleft().result()

    def _flush_window(self) -> None:
        if not self._window:
            return
        known = self.server.query_duplicates(
            self.user_id, [meta.fingerprint for meta, _ in self._window]
        )
        for (meta, payload), is_known in zip(self._window, known):
            if is_known or meta.fingerprint in self._seen:
                continue
            self._seen.add(meta.fingerprint)
            self._batch.append(ShareUpload(meta=meta, data=payload))
            self._batch_bytes += len(payload)
            self.result.wire_bytes += len(payload)
            self.result.transferred += 1
            if self._batch_bytes >= UPLOAD_BATCH_BYTES:
                self._send_batch()
        self._window = []
        self._window_bytes = 0

    def feed(self, chunk: Chunk, share: bytes) -> None:
        """Accept the share of the next secret in sequence order."""
        meta = ShareMeta(
            fingerprint=fingerprint(share, domain="client"),
            share_size=len(share),
            secret_seq=chunk.seq,
            secret_size=chunk.size,
        )
        self.result.metas.append(meta)
        self._window.append((meta, share))
        self._window_bytes += len(share)
        if self._window_bytes >= UPLOAD_BATCH_BYTES:
            self._flush_window()

    def finish(self) -> CloudUploadResult:
        """Flush tails and charge simulated time for the whole upload.

        The clock is charged with the canonical 4 MB-unit batch count so it
        matches :func:`repro.bench.transfer.client_upload_walltime` exactly,
        including for heavily-deduplicated multi-window files.
        """
        self._flush_window()
        self._send_batch()
        self._drain_acks()
        self.result.seconds = self.server.cloud.uplink.transfer_time(
            self.result.wire_bytes, batches=batch_count(self.result.wire_bytes)
        )
        return self.result


@dataclass
class FileSource:
    """One restore slot: the server currently serving it + its metadata.

    Failover replaces all three fields in place (each server has its own
    recipe — share fingerprints are per-cloud), so later windows read from
    the promoted spare while earlier, already-decoded windows keep the
    shares the original server supplied.
    """

    slot: int
    server: CDStoreServer
    entry: FileEntry
    recipe: list[RecipeEntry]


@dataclass
class SlotShares:
    """One slot's contribution to one restore window (a point-in-time
    snapshot — failover in a later window does not mutate it)."""

    server: CDStoreServer
    recipe: list[RecipeEntry]
    shares: dict[bytes, bytes]


@dataclass
class WindowShares:
    """Shares of secrets ``[start, end)`` from every restore slot."""

    start: int
    end: int
    slots: list[SlotShares]


class CommEngine:
    """Persistent per-cloud worker pool driving all client ⇄ server traffic.

    Parameters
    ----------
    servers:
        The client's server list.  The *list object* is shared (not copied)
        so in-place replacements — e.g. after
        :meth:`~repro.system.cdstore.CDStoreSystem.wipe_cloud` — are seen
        by the engine immediately.
    threads:
        Encode-pool width; with ``pipeline_depth == 1``, ``threads == 1``
        disables all pools and runs inline.
    workers:
        Encode-pool flavour: ``"thread"`` (default) or ``"process"``.  See
        the module docstring for when each wins.
    clock:
        Optional simulated clock advanced by transfer times (makespan when
        parallel, sum when serial).
    pipeline_depth:
        Maximum pipeline windows (encode slabs on upload, share windows on
        restore) in flight between stages.  ``1`` (default) reproduces the
        pre-streaming serial-phase behaviour byte-for-byte; values above 1
        enable the streaming transfer stage — per-cloud workers overlap
        wire time with encoding/decoding even at ``threads == 1``, with
        memory bounded to ``pipeline_depth`` windows.
        :data:`PIPELINE_DEPTH_AUTO` (``"auto"``) derives the depth from a
        timed encode probe against the slowest uplink's modelled rate at
        the first upload (see :func:`choose_pipeline_depth`); the chosen
        value is reported through :attr:`effective_depth` and recorded in
        the upload receipt.
    """

    #: Lock discipline (``repro analyze``, LOCK-001): pool construction
    #: and teardown race when an engine is shared across caller threads,
    #: so the pool handles are only swapped under ``_init_lock``.
    GUARDED_BY = guarded_by(
        _encode_pool="_init_lock",
        _process_pool="_init_lock",
        _cloud_workers="_init_lock",
    )

    def __init__(
        self,
        servers: list[CDStoreServer],
        threads: int = 1,
        workers: str = "thread",
        clock: SimClock | None = None,
        pipeline_depth: int | str = 1,
    ) -> None:
        if threads < 1:
            raise ParameterError(f"threads must be >= 1, got {threads}")
        if pipeline_depth != PIPELINE_DEPTH_AUTO and (
            not isinstance(pipeline_depth, int) or pipeline_depth < 1
        ):
            raise ParameterError(
                f"pipeline_depth must be >= 1 or {PIPELINE_DEPTH_AUTO!r}, "
                f"got {pipeline_depth!r}"
            )
        if workers not in WORKER_MODES:
            raise ParameterError(
                f"unknown workers mode {workers!r}; expected one of {WORKER_MODES}"
            )
        self.servers = servers
        self.threads = threads
        self.workers = workers
        self.clock = clock
        self.pipeline_depth = pipeline_depth
        #: Depth an adaptive engine settled on (None until the first
        #: upload's probe runs); fixed-depth engines resolve immediately.
        self._resolved_depth: int | None = (
            pipeline_depth if pipeline_depth != PIPELINE_DEPTH_AUTO else None
        )
        self._encode_pool: ThreadPoolExecutor | None = None
        self._process_pool: ProcessEncodePool | None = None
        self._cloud_workers: list[ThreadPoolExecutor] | None = None
        self._init_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def adaptive(self) -> bool:
        """Whether the streaming depth is derived from measured rates."""
        return self.pipeline_depth == PIPELINE_DEPTH_AUTO

    @property
    def parallel(self) -> bool:
        """Whether per-cloud workers drive transfers concurrently."""
        return self.threads > 1 or self.adaptive or self.pipeline_depth > 1

    @property
    def streaming(self) -> bool:
        """Whether the bounded streaming transfer stage is active."""
        return self.adaptive or self.pipeline_depth > 1

    @property
    def effective_depth(self) -> int:
        """The streaming depth in force: the configured integer, or — for
        an adaptive engine — the probed value (falling back to the old
        fixed CLI default until an upload has measured the rates)."""
        if self._resolved_depth is not None:
            return self._resolved_depth
        return _AUTO_FALLBACK_DEPTH

    def _resolve_depth(
        self, dispersal: ConvergentDispersal, chunks: list[Chunk]
    ) -> int:
        """Resolve the adaptive depth once, from a timed encode probe.

        Encodes the first few chunks to measure the encode rate, takes the
        slowest uplink's modelled bandwidth as the wire rate, and caches
        :func:`choose_pipeline_depth`'s answer for the engine's lifetime
        (rates are a property of codec + link, not of one file).
        """
        if self._resolved_depth is not None:
            return self._resolved_depth
        sample = chunks[: min(len(chunks), _PROBE_SECRETS)]
        sample_bytes = sum(chunk.size for chunk in sample)
        if not sample or not sample_bytes:
            self._resolved_depth = _AUTO_FALLBACK_DEPTH
            return self._resolved_depth
        started = time.perf_counter()
        dispersal.encode_batch([chunk.data for chunk in sample])
        elapsed = max(time.perf_counter() - started, 1e-9)
        encode_rate = sample_bytes / elapsed
        wire_rate = min(
            server.cloud.uplink.bandwidth_mbps * MB for server in self.servers
        )
        self._resolved_depth = choose_pipeline_depth(encode_rate, wire_rate)
        return self._resolved_depth

    def _ensure_workers(self) -> None:
        with self._init_lock:  # engines may be shared across caller threads
            if self._cloud_workers is None:
                self._encode_pool = ThreadPoolExecutor(
                    max_workers=self.threads, thread_name_prefix="cdstore-encode"
                )
                self._cloud_workers = [
                    ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix=f"cdstore-cloud-{i}"
                    )
                    for i in range(len(self.servers))
                ]

    def _ensure_process_pool(self) -> ProcessEncodePool:
        """Create (and eagerly fork) the encode processes on first use.

        Deferred to the first process-encoded upload so download-only and
        metadata traffic never pays the forks; the pool is warmed before
        this upload's cloud-worker submissions go out, while the engine
        threads are idle.  Lazy slab submissions from cloud-worker threads
        are safe afterwards: submitting to a warm pool never forks.
        """
        with self._init_lock:
            if self._process_pool is None:
                pool = ProcessEncodePool(self.threads)
                pool.warm()
                self._process_pool = pool
            return self._process_pool

    def close(self) -> None:
        """Shut the worker pools down (idempotent)."""
        with self._init_lock:  # must not race a concurrent _ensure_workers
            if self._encode_pool is not None:
                self._encode_pool.shutdown(wait=True)
                self._encode_pool = None
            if self._process_pool is not None:
                self._process_pool.close()
                self._process_pool = None
            if self._cloud_workers is not None:
                for pool in self._cloud_workers:
                    pool.shutdown(wait=True)
                self._cloud_workers = None

    def __enter__(self) -> "CommEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # generic fan-out
    # ------------------------------------------------------------------
    @staticmethod
    def _gather(futures: list[Future]) -> list:
        """Await *every* future, then re-raise the first failure.

        Waiting for all of them before raising means no background worker
        is still mutating server state when the caller sees the error, and
        no sibling exception goes unretrieved.
        """
        results = []
        first_error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def _slot(self, server: CDStoreServer) -> int | None:
        for i, candidate in enumerate(self.servers):
            if candidate is server:
                return i
        return None

    def _pool_for(self, server: CDStoreServer) -> ThreadPoolExecutor:
        """The dedicated worker of ``server``'s cloud (encode pool if none)."""
        assert self._cloud_workers is not None and self._encode_pool is not None
        slot = self._slot(server)
        return self._cloud_workers[slot] if slot is not None else self._encode_pool

    def map_servers(
        self,
        fn: Callable[[CDStoreServer], T],
        servers: Sequence[CDStoreServer],
    ) -> list[T]:
        """Apply ``fn`` to each server, concurrently when parallel.

        Each call runs on the target server's dedicated cloud worker, so
        concurrent ``map_servers`` traffic to one cloud stays ordered.
        Results come back in ``servers`` order; all calls complete before
        the first exception (in that order) propagates.
        """
        if not self.parallel or len(servers) < 2:
            return [fn(server) for server in servers]
        self._ensure_workers()
        task = _carry_context(fn)
        futures = [self._pool_for(server).submit(task, server) for server in servers]
        return self._gather(futures)

    def _advance_clock(self, durations: list[float]) -> float:
        """Charge transfer times to the clock; returns the elapsed span."""
        span = makespan(durations) if self.parallel else sum(durations)
        if self.clock is not None:
            self.clock.advance(span)
        return span

    # ------------------------------------------------------------------
    # upload path (backup)
    # ------------------------------------------------------------------
    def _submit_encode_slabs(
        self, dispersal: ConvergentDispersal, chunks: list[Chunk]
    ) -> tuple[SlabbedShareSets, SharedSlabTransport | None]:
        """Fan chunker output into encode slabs on the configured pool.

        Chunks are grouped into contiguous slabs sized for the pool (see
        :func:`repro.client.workers.slab_spans`); each slab encodes with
        the batched codec kernels.  Process workers are used when
        configured *and* the dispersal has a picklable spec; otherwise the
        slab runs on the thread pool.

        Process-encoded slabs ship their payload through shared memory
        when the platform allows: the secrets are written once into a
        per-slab segment and the worker addresses ``(offset, length)``
        spans, so the task pickle stays tiny.  The returned transport (or
        None) owns those segments; the slab queue's release hook unlinks
        each segment as soon as every cloud has drained its slab, and the
        caller must :meth:`~SharedSlabTransport.close` the transport after
        the upload to sweep error paths.

        When streaming, slabs are submitted lazily: at most
        ``pipeline_depth`` beyond the slowest cloud worker, each dropped
        from memory once every cloud has drained it.
        """
        assert self._encode_pool is not None
        spans = slab_spans([chunk.size for chunk in chunks], self.threads)
        slab_of = {start: idx for idx, (start, _end) in enumerate(spans)}
        pool = None
        transport = None
        if self.workers == "process" and dispersal.spec() is not None:
            pool = self._ensure_process_pool()
            if shared_slabs_available():
                transport = SharedSlabTransport()

        def encode_slab(secrets: list[bytes]):
            clock = time.perf_counter()
            share_sets = dispersal.encode_batch(secrets)
            _WINDOW_ENCODE_SECONDS.observe(time.perf_counter() - clock)
            return share_sets

        def submit(start: int, end: int) -> Future:
            secrets = [chunk.data for chunk in chunks[start:end]]
            if pool is None:
                # Thread-pool slabs time the encode in-worker; process
                # slabs run out-of-process where the registry's cells
                # are not ours, so they go unobserved.
                return self._encode_pool.submit(_carry_context(encode_slab), secrets)
            if transport is None:
                return pool.submit(dispersal, secrets)
            name, layout = transport.publish(slab_of[start], secrets)
            return pool.submit_shared(dispersal, name, layout)

        release = transport.release if transport is not None else None
        try:
            if self.streaming:
                view = SlabbedShareSets(
                    spans=spans,
                    submit=submit,
                    depth=self.effective_depth,
                    consumers=len(self.servers),
                    release=release,
                )
            else:
                view = SlabbedShareSets(
                    [submit(s, e) for s, e in spans],
                    spans,
                    consumers=len(self.servers),
                    release=release,
                )
        except BaseException:
            # An eager submit raised before the caller could own the
            # transport: sweep the segments already published, or they
            # stay linked until interpreter exit.
            if transport is not None:
                transport.close()
            raise
        return view, transport

    def upload_file(
        self,
        user_id: str,
        dispersal: ConvergentDispersal,
        chunks: list[Chunk],
    ) -> tuple[list[CloudUploadResult], float]:
        """Pipeline one file's shares onto every cloud.

        Returns per-cloud results (index ``i`` ↔ cloud ``i``) plus the
        simulated wall-clock span of the transfer stage.
        """
        n = len(self.servers)
        if self.adaptive and chunks:
            self._resolve_depth(dispersal, chunks)
        if self.parallel and len(chunks) > 1:
            self._ensure_workers()
            assert self._cloud_workers is not None
            encoded, transport = self._submit_encode_slabs(dispersal, chunks)
            try:
                task = _carry_context(self._upload_to_cloud)
                futures = [
                    self._cloud_workers[idx].submit(
                        task, idx, user_id, chunks, encoded
                    )
                    for idx in range(n)
                ]
                results = self._gather(futures)
            finally:
                # Normally every segment was already unlinked by the
                # release hook; on error paths this sweeps the stragglers
                # (their encodes were abandoned with the upload).
                if transport is not None:
                    transport.close()
        else:
            uploaders = [
                CloudUploader(self.servers[idx], idx, user_id) for idx in range(n)
            ]
            # Inline path: encode one slab at a time and feed every cloud's
            # uploader before encoding the next, so even the serial client
            # holds at most one slab of shares (wire-identical to encoding
            # the whole file up front — the 4 MB windows accumulate the
            # same byte sequence either way).
            spans = slab_spans([chunk.size for chunk in chunks], 1)
            for start, end in spans:
                clock = time.perf_counter()
                share_sets = dispersal.encode_batch(
                    [chunk.data for chunk in chunks[start:end]]
                )
                _WINDOW_ENCODE_SECONDS.observe(time.perf_counter() - clock)
                for uploader in uploaders:
                    for seq in range(start, end):
                        uploader.feed(
                            chunks[seq],
                            share_sets[seq - start].shares[uploader.cloud_idx],
                        )
            results = [uploader.finish() for uploader in uploaders]
        span = self._advance_clock([result.seconds for result in results])
        return results, span

    def _upload_to_cloud(
        self,
        cloud_idx: int,
        user_id: str,
        chunks: list[Chunk],
        share_sets: SlabbedShareSets,
    ) -> CloudUploadResult:
        """One cloud worker's upload: drain the slab stream into the wire.

        Consuming through :meth:`SlabbedShareSets.stream` blocks only on
        the slab being encoded right now — transfer of already-encoded
        windows overlaps the encoding of later ones, and (when streaming)
        draining a slab releases its memory and admits the next slab into
        the bounded pipeline window.
        """
        uploader = CloudUploader(self.servers[cloud_idx], cloud_idx, user_id)
        with share_sets.stream() as stream:
            for seq, share_set in stream:
                uploader.feed(chunks[seq], share_set.shares[cloud_idx])
        return uploader.finish()

    # ------------------------------------------------------------------
    # restore path (download)
    # ------------------------------------------------------------------
    def fetch_sources(
        self,
        user_id: str,
        lookup_key: bytes,
        chosen: Sequence[CDStoreServer],
        spares: list[CDStoreServer],
    ) -> list[FileSource]:
        """Fetch entry + recipe from each chosen server, with failover.

        ``spares`` is consumed *in place*: a spare promoted here is no
        longer available to later failovers or to the caller's §3.2
        share-widening fallback (it is now a chosen source).
        """
        pool_lock = threading.Lock()

        def fetch_one(server: CDStoreServer) -> tuple[CDStoreServer, FileEntry, list]:
            while True:
                try:
                    entry = server.get_file_entry(user_id, lookup_key)
                    recipe = server.get_recipe(user_id, lookup_key)
                except FETCH_ERRORS:
                    with pool_lock:
                        if not spares:
                            raise
                        server = spares.pop(0)
                    _FAILOVERS.inc()
                    continue
                return server, entry, recipe

        results = self.map_servers(fetch_one, chosen)
        return [
            FileSource(slot=slot, server=server, entry=entry, recipe=recipe)
            for slot, (server, entry, recipe) in enumerate(results)
        ]

    def _promote_spare(
        self,
        user_id: str,
        lookup_key: bytes,
        source: FileSource,
        spares: list[CDStoreServer],
        pool_lock: threading.Lock,
        expect: tuple[int, int] | None,
    ) -> None:
        """Replace ``source``'s server with the next usable spare.

        The spare must supply a readable entry + recipe that agree with the
        cross-checked ``expect = (file_size, secret_count)`` — a lying or
        stale spare is skipped exactly like an unreachable one.  Raises the
        in-flight fetch error when the spares are exhausted (bare ``raise``:
        this runs inside the caller's except block).
        """
        with pool_lock:
            # Held for the whole promotion: failover is rare, and holding
            # the lock makes the (server, entry, recipe) swap atomic with
            # respect to concurrent window fetches snapshotting the source.
            while True:
                if not spares:
                    raise
                candidate = spares.pop(0)
                try:
                    entry = candidate.get_file_entry(user_id, lookup_key)
                    recipe = candidate.get_recipe(user_id, lookup_key)
                except FETCH_ERRORS:
                    continue
                if expect is not None:
                    file_size, secret_count = expect
                    if (
                        entry.file_size != file_size
                        or entry.secret_count != secret_count
                        or len(recipe) != secret_count
                    ):
                        continue
                source.server, source.entry, source.recipe = candidate, entry, recipe
                _FAILOVERS.inc()
                return

    def _fetch_window_shares(
        self,
        user_id: str,
        lookup_key: bytes,
        source: FileSource,
        start: int,
        end: int | None,
        spares: list[CDStoreServer],
        pool_lock: threading.Lock,
        expect: tuple[int, int] | None,
    ) -> SlotShares:
        """One slot's shares for secrets ``[start, end)`` (with failover).

        ``end=None`` means the slot's whole recipe.  On a fetch error the
        slot's server is replaced by a promoted spare and the *same window*
        retried against the spare's own recipe — per-window granularity:
        windows already decoded are unaffected, later windows go straight
        to the replacement.
        """
        while True:
            with pool_lock:  # consistent (server, recipe) snapshot
                server, recipe = source.server, source.recipe
            stop = len(recipe) if end is None else end
            try:
                fingerprints = [recipe[i].fingerprint for i in range(start, stop)]
                shares = server.fetch_shares(fingerprints)
            except (*FETCH_ERRORS, IndexError):
                # IndexError: the recipe is shorter than the agreed window —
                # as unusable as a corrupt one.
                self._promote_spare(
                    user_id, lookup_key, source, spares, pool_lock, expect
                )
                continue
            return SlotShares(server=server, recipe=recipe, shares=shares)

    def stream_share_windows(
        self,
        user_id: str,
        lookup_key: bytes,
        sources: list[FileSource],
        windows: Sequence[tuple[int, int]],
        spares: list[CDStoreServer],
        expect: tuple[int, int] | None = None,
    ) -> Iterator[WindowShares]:
        """Stream per-window share maps from every restore slot.

        Yields :class:`WindowShares` in window order.  When the engine is
        parallel, up to ``pipeline_depth`` windows are in flight on the
        per-cloud workers while the caller decodes the current one — the
        restore mirror of the upload pipelining; otherwise windows are
        fetched inline one at a time.  ``spares`` is shared, mutable state:
        per-window failover consumes from it (see :meth:`fetch_sources`).

        On exhaustion the engine charges its clock the canonical per-slot
        transfer times (makespan when parallel, sum when serial) — the same
        total a whole-file fetch would charge, because each slot's windows
        serialise on that cloud's downlink.
        """
        pool_lock = threading.Lock()
        totals = [0] * len(sources)

        def fetch(source: FileSource, slot: int, start: int, end: int) -> SlotShares:
            clock = time.perf_counter()
            got = self._fetch_window_shares(
                user_id, lookup_key, source, start, end, spares, pool_lock, expect
            )
            _WINDOW_RESTORE_SECONDS.observe(time.perf_counter() - clock)
            totals[slot] += sum(len(payload) for payload in got.shares.values())
            return got

        def charge() -> None:
            durations = [
                source.server.cloud.downlink.transfer_time(
                    totals[slot], batches=batch_count(totals[slot])
                )
                for slot, source in enumerate(sources)
            ]
            self._advance_clock(durations)

        if not self.parallel:
            for start, end in windows:
                slots = [
                    fetch(source, slot, start, end)
                    for slot, source in enumerate(sources)
                ]
                yield WindowShares(start=start, end=end, slots=slots)
            charge()
            return

        self._ensure_workers()

        task = _carry_context(fetch)

        def submit(window_idx: int) -> list[Future]:
            start, end = windows[window_idx]
            return [
                self._pool_for(source.server).submit(task, source, slot, start, end)
                for slot, source in enumerate(sources)
            ]

        pending: deque[list[Future]] = deque()
        next_window = 0
        try:
            while next_window < min(self.effective_depth, len(windows)):
                pending.append(submit(next_window))
                next_window += 1
            for start, end in windows:
                slots = self._gather(pending.popleft())
                if next_window < len(windows):
                    pending.append(submit(next_window))
                    next_window += 1
                yield WindowShares(start=start, end=end, slots=slots)
            charge()
        finally:
            # On error or early abandonment, drain in-flight fetches so no
            # worker is left mutating shared state and no sibling exception
            # goes unretrieved.
            for futures in pending:
                for future in futures:
                    future.cancel()
                    try:
                        future.result()
                    except BaseException:
                        pass

