"""CRSSS: the convergent ramp-scheme instantiation of [37]."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crsss import CRSSS
from repro.crypto.drbg import DRBG
from repro.errors import IntegrityError, ParameterError


class TestRoundtrip:
    @pytest.mark.parametrize("n,k,r", [(4, 3, 1), (4, 3, 2), (6, 4, 2), (5, 2, 1)])
    def test_every_k_subset(self, n, k, r):
        scheme = CRSSS(n, k, r)
        secret = DRBG("crsss").random_bytes(3000)
        shares = scheme.split(secret)
        for subset in combinations(range(n), k):
            assert scheme.recover(shares.subset(list(subset)), len(secret)) == secret

    @pytest.mark.parametrize("size", [0, 1, 2, 33, 1000])
    def test_odd_sizes(self, size):
        scheme = CRSSS(4, 3, 1)
        secret = DRBG(f"s{size}").random_bytes(size)
        shares = scheme.split(secret)
        assert scheme.recover(shares.subset([1, 2, 3]), size) == secret

    @settings(max_examples=25)
    @given(st.binary(min_size=0, max_size=500))
    def test_property_roundtrip(self, secret):
        scheme = CRSSS(4, 3, 2)
        shares = scheme.split(secret)
        assert scheme.recover(shares.subset([0, 2, 3]), len(secret)) == secret


class TestConvergence:
    def test_identical_secrets_identical_shares(self):
        scheme = CRSSS(4, 3, 1, salt=b"org")
        secret = b"dedup me" * 100
        assert scheme.split(secret).shares == scheme.split(secret).shares

    def test_cross_instance_convergence(self):
        secret = b"chunk" * 200
        a = CRSSS(4, 3, 1, salt=b"org").split(secret)
        b = CRSSS(4, 3, 1, salt=b"org").split(secret)
        assert a.shares == b.shares

    def test_salt_scopes(self):
        secret = b"chunk" * 200
        assert (
            CRSSS(4, 3, 1, salt=b"a").split(secret).shares
            != CRSSS(4, 3, 1, salt=b"b").split(secret).shares
        )

    def test_default_r_is_k_minus_1(self):
        assert CRSSS(4, 3).r == 2


class TestIntegrityAndErrors:
    def test_corrupt_share_detected(self):
        scheme = CRSSS(4, 3, 1)
        secret = b"integrity" * 100
        shares = scheme.split(secret)
        bad = bytearray(shares.shares[0])
        bad[10] ^= 0xFF
        with pytest.raises(IntegrityError):
            scheme.recover(
                {0: bytes(bad), 1: shares.shares[1], 2: shares.shares[2]},
                len(secret),
            )

    def test_r_zero_rejected(self):
        with pytest.raises(ParameterError):
            CRSSS(4, 3, 0)

    def test_registry_and_facade(self):
        from repro.core.convergent import ConvergentDispersal
        from repro.sharing.registry import create_scheme

        scheme = create_scheme("crsss", 4, 3, salt=b"org")
        assert isinstance(scheme, CRSSS)
        cd = ConvergentDispersal(4, 3, scheme="crsss", salt=b"org")
        secret = b"facade" * 50
        shares = cd.encode(secret)
        assert cd.decode(shares.subset([0, 1, 3]), len(secret)) == secret


class TestBlowupTradeoff:
    def test_blowup_matches_rsss_formula(self):
        # n / (k - r), the ramp-scheme row of Table 1.
        secret = DRBG("b").random_bytes(9000)
        assert CRSSS(4, 3, 1).split(secret).storage_blowup == pytest.approx(2.0)
        assert CRSSS(4, 3, 2).split(secret).storage_blowup == pytest.approx(4.0)

    def test_caont_rs_wins_at_equal_confidentiality(self):
        """The reason CDStore builds on AONT-RS rather than RSSS: at
        r = k - 1, CAONT-RS's blowup ≈ n/k while CRSSS's is n."""
        from repro.core.caont_rs import CAONTRS

        secret = DRBG("w").random_bytes(8192)
        crsss = CRSSS(4, 3, 2).split(secret).storage_blowup
        caont = CAONTRS(4, 3).split(secret).storage_blowup
        assert caont < crsss / 2
