"""Rabin's IDA wrapped in the secret-sharing interface (Table 1 row 2).

IDA offers the minimum storage blowup ``n/k`` with confidentiality degree
r = 0: any single share reveals linear combinations of the secret.  It is
listed here so the Table 1 benchmark can measure all schemes uniformly; the
underlying codec lives in :mod:`repro.erasure.ida`.
"""

from __future__ import annotations

from repro.erasure.ida import InformationDispersal
from repro.sharing.base import SecretSharingScheme, ShareSet

__all__ = ["IDAScheme"]


class IDAScheme(SecretSharingScheme):
    """(n, k) information dispersal; r = 0, blowup n/k."""

    name = "ida"
    # IDA has no randomness at all, so identical secrets do give identical
    # shares — but it provides no confidentiality, which is why CDStore does
    # not use it directly.
    deterministic = True

    def __init__(self, n: int, k: int) -> None:
        super().__init__(n, k, r=0)
        self._ida = InformationDispersal(n, k)

    def split(self, secret: bytes) -> ShareSet:
        shares = tuple(self._ida.disperse(secret))
        return ShareSet(shares=shares, secret_size=len(secret), scheme=self.name)

    def recover(self, shares: dict[int, bytes], secret_size: int) -> bytes:
        self._check_recover_args(shares, secret_size)
        return self._ida.reconstruct(shares, secret_size)

    def expected_blowup(self, secret_size: int) -> float:
        """Blowup n/k, up to per-share padding to a multiple of k."""
        if secret_size == 0:
            return float("inf")
        share = self._ida.share_size(secret_size)
        return self.n * share / secret_size
