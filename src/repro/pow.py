"""Proof of ownership (PoW) — Halevi et al. [27].

The ownership side channel of §3.3 (convince the cloud you own a file by
presenting its fingerprint) has two known fixes:

* CDStore's **two-stage deduplication** — never grant cross-user dedup on
  a client-supplied identifier (what the system implements); or
* **proof of ownership** — before linking a user to an existing file, the
  server challenges it to prove possession of the *content*, not just an
  identifier.  This module implements that protocol over the Merkle
  substrate, so the two defences can be compared experimentally (see
  ``tests/test_pow.py``).

Protocol:

1. the first uploader's file is summarised by a Merkle root (kept
   server-side with the stored object);
2. a claimant announces the file identifier; the server draws ``spot_checks``
   random leaf indices (server-chosen randomness — the claimant cannot
   precompute);
3. the claimant answers with the challenged blocks + authentication paths;
4. the server verifies each path against the stored root.

A claimant holding only a fingerprint answers with probability ≤
``(known_fraction)^spot_checks``; one holding the full file always passes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import DRBG, system_random_bytes
from repro.errors import NotFoundError, ParameterError
from repro.merkle import MerkleTree, verify_path

__all__ = ["PowChallenge", "PowResponse", "PowServer", "PowProver"]


@dataclass(frozen=True)
class PowChallenge:
    """Server → claimant: prove possession of these blocks."""

    file_id: bytes
    indices: tuple[int, ...]
    nonce: bytes


@dataclass(frozen=True)
class PowResponse:
    """Claimant → server: challenged blocks with Merkle paths."""

    file_id: bytes
    nonce: bytes
    proofs: tuple[tuple[bytes, tuple[tuple[bool, bytes], ...]], ...]


class PowServer:
    """Holds Merkle roots of stored files; challenges and verifies claims.

    Multi-tenant deployments pass a ``tenant_id`` to every call: file ids
    are then namespaced per tenant, so one tenant can neither probe
    whether another tenant stored a given file id (``knows`` /
    ``challenge`` answer exactly as for a file that was never uploaded)
    nor satisfy a challenge issued under a different tenant's scope.
    ``tenant_id=None`` keeps the original single-namespace behaviour.
    """

    def __init__(self, spot_checks: int = 8, block_size: int = 4096, rng: DRBG | None = None) -> None:
        if spot_checks < 1:
            raise ParameterError("need at least one spot check")
        self.spot_checks = spot_checks
        self.block_size = block_size
        self._rng = rng
        # (tenant-scoped) id -> (root, leaves)
        self._files: dict[bytes, tuple[bytes, int]] = {}
        # nonce -> (challenge, tenant scope it was issued under)
        self._pending: dict[bytes, tuple[PowChallenge, str | None]] = {}

    @staticmethod
    def _key(file_id: bytes, tenant_id: str | None) -> bytes:
        if tenant_id is None:
            return b"\x00" + file_id
        return b"\x01" + tenant_id.encode("utf-8") + b"\x00" + file_id

    def _random_bytes(self, length: int) -> bytes:
        if self._rng is not None:
            return self._rng.random_bytes(length)
        return system_random_bytes(length)

    def _randint(self, low: int, high: int) -> int:
        if self._rng is not None:
            return self._rng.randint(low, high)
        span = high - low + 1
        return low + int.from_bytes(system_random_bytes(8), "big") % span

    # ------------------------------------------------------------------
    def register(self, file_id: bytes, data: bytes, tenant_id: str | None = None) -> None:
        """First upload: store the file's Merkle root (per tenant scope)."""
        tree = MerkleTree(data, block_size=self.block_size)
        self._files[self._key(file_id, tenant_id)] = (tree.root, tree.leaf_count)

    def knows(self, file_id: bytes, tenant_id: str | None = None) -> bool:
        return self._key(file_id, tenant_id) in self._files

    def challenge(self, file_id: bytes, tenant_id: str | None = None) -> PowChallenge:
        """Issue a fresh challenge for a dedup claim on ``file_id``.

        The same "unknown file id" answer covers both never-uploaded
        files and files another tenant uploaded — existence itself is
        the side channel tenant scoping closes.
        """
        key = self._key(file_id, tenant_id)
        if key not in self._files:
            raise NotFoundError("unknown file id; upload normally")
        _, leaves = self._files[key]
        indices = tuple(
            self._randint(0, leaves - 1) for _ in range(min(self.spot_checks, leaves))
        )
        challenge = PowChallenge(
            file_id=file_id, indices=indices, nonce=self._random_bytes(16)
        )
        self._pending[challenge.nonce] = (challenge, tenant_id)
        return challenge

    def verify(self, response: PowResponse, tenant_id: str | None = None) -> bool:
        """Check a claimant's response; one-shot per challenge nonce.

        Fails for a response presented under a different tenant scope
        than its challenge was issued for, even if the proofs are valid.
        """
        pending = self._pending.pop(response.nonce, None)
        if pending is None:
            return False
        challenge, issued_for = pending
        if issued_for != tenant_id or challenge.file_id != response.file_id:
            return False
        if len(response.proofs) != len(challenge.indices):
            return False
        root, _ = self._files[self._key(challenge.file_id, tenant_id)]
        return all(
            verify_path(root, block, list(path))
            for block, path in response.proofs
        )


class PowProver:
    """Claimant side: answers challenges from the file content."""

    def __init__(self, data: bytes, block_size: int = 4096) -> None:
        self._tree = MerkleTree(data, block_size=block_size)

    def respond(self, challenge: PowChallenge) -> PowResponse:
        proofs = []
        for index in challenge.indices:
            if index >= self._tree.leaf_count:
                block, path = b"", ()
            else:
                block, raw_path = self._tree.prove(index)
                path = tuple(raw_path)
            proofs.append((block, path))
        return PowResponse(
            file_id=challenge.file_id,
            nonce=challenge.nonce,
            proofs=tuple(proofs),
        )
