"""Workload generators: determinism and paper-calibrated dedup bands."""

import pytest

from repro.bench.dedup import simulate_two_stage
from repro.errors import WorkloadError
from repro.workloads import FSLWorkload, VMWorkload, materialize
from repro.workloads.base import ChunkRecord


class TestChunkRecord:
    def test_positive_size_required(self):
        with pytest.raises(WorkloadError):
            ChunkRecord(fingerprint=b"f" * 32, size=0)

    def test_materialize_repeats_fingerprint(self):
        record = ChunkRecord(fingerprint=b"ab", size=5)
        assert materialize(record) == b"ababa"

    def test_materialize_preserves_identity(self):
        a = ChunkRecord(b"x" * 32, 100)
        b = ChunkRecord(b"x" * 32, 100)
        c = ChunkRecord(b"y" * 32, 100)
        assert materialize(a) == materialize(b)
        assert materialize(a) != materialize(c)


class TestFSLWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        return FSLWorkload(users=4, weeks=6, chunks_per_user=300)

    def test_determinism(self):
        a = FSLWorkload(users=2, weeks=2, chunks_per_user=50)
        b = FSLWorkload(users=2, weeks=2, chunks_per_user=50)
        sa = a.snapshot(a.users[0], 2)
        sb = b.snapshot(b.users[0], 2)
        assert sa.chunks == sb.chunks

    def test_snapshot_out_of_range(self, workload):
        with pytest.raises(WorkloadError):
            workload.snapshot(workload.users[0], 0)
        with pytest.raises(WorkloadError):
            workload.snapshot(workload.users[0], 99)
        with pytest.raises(WorkloadError):
            workload.snapshot("ghost", 1)

    def test_chunk_sizes_in_bounds(self, workload):
        snap = workload.snapshot(workload.users[0], 1)
        assert all(
            workload.min_chunk <= c.size <= workload.max_chunk for c in snap.chunks
        )

    def test_weekly_evolution_is_incremental(self, workload):
        w1 = set(c.fingerprint for c in workload.snapshot(workload.users[0], 1).chunks)
        w2 = set(c.fingerprint for c in workload.snapshot(workload.users[0], 2).chunks)
        overlap = len(w1 & w2) / len(w2)
        assert overlap > 0.9  # most chunks persist week to week

    def test_all_snapshots_order(self, workload):
        snaps = list(workload.all_snapshots())
        assert len(snaps) == 4 * 6
        assert snaps[0].week == 1 and snaps[-1].week == 6

    def test_paper_calibration_bands(self):
        """Figure 6 FSL claims: intra >= 94% after week 1, inter <= ~13%,
        physical/logical ≈ 6-8% after 16 weeks."""
        rows = simulate_two_stage(FSLWorkload(chunks_per_user=500))
        assert all(r.intra_saving >= 0.94 for r in rows[1:])
        assert all(r.inter_saving <= 0.15 for r in rows)
        ratio = rows[-1].cumulative_physical_shares / rows[-1].cumulative_logical_data
        assert 0.04 < ratio < 0.11

    def test_validation(self):
        with pytest.raises(WorkloadError):
            FSLWorkload(users=0)
        with pytest.raises(WorkloadError):
            FSLWorkload(modify_rate=1.5)


class TestVMWorkload:
    def test_determinism(self):
        a = VMWorkload(users=3, weeks=2, master_chunks=100)
        b = VMWorkload(users=3, weeks=2, master_chunks=100)
        assert a.snapshot(a.users[1], 2).chunks == b.snapshot(b.users[1], 2).chunks

    def test_images_share_master(self):
        wl = VMWorkload(users=5, weeks=1, master_chunks=200)
        fps = [
            {c.fingerprint for c in wl.snapshot(u, 1).chunks} for u in wl.users
        ]
        common = set.intersection(*fps)
        assert len(common) > 150  # most of the master survives cloning

    def test_fixed_chunk_size(self):
        wl = VMWorkload(users=2, weeks=1, master_chunks=50, chunk_size=4096)
        snap = wl.snapshot(wl.users[0], 1)
        assert all(c.size == 4096 for c in snap.chunks)

    def test_paper_calibration_bands(self):
        """Figure 6 VM claims: week-1 inter ≈ 93%, later inter within
        ~12-47%, intra >= 98% after week 1, physical/logical ≈ 1-2%."""
        rows = simulate_two_stage(VMWorkload(users=40, master_chunks=800))
        assert rows[0].inter_saving > 0.88
        assert all(r.intra_saving >= 0.97 for r in rows[1:])
        assert all(0.10 <= r.inter_saving <= 0.55 for r in rows[1:])
        ratio = rows[-1].cumulative_physical_shares / rows[-1].cumulative_logical_data
        assert ratio < 0.05

    def test_validation(self):
        with pytest.raises(WorkloadError):
            VMWorkload(users=0)
        with pytest.raises(WorkloadError):
            VMWorkload(weeks=0)


class TestTwoStageSimulator:
    def test_savings_definition(self):
        """One user uploading identical snapshots twice: 50% intra saving,
        no inter saving."""
        wl = FSLWorkload(users=1, weeks=2, chunks_per_user=100, modify_rate=0.0, append_rate=0.0)
        # Force zero modifications: week 2 == week 1 exactly.
        rows = simulate_two_stage(wl)
        assert rows[1].intra_saving > 0.99

    def test_share_accounting_uses_n(self):
        from repro.bench.dedup import TwoStageSimulator
        from repro.workloads.base import BackupSnapshot

        sim = TwoStageSimulator(n=4, k=3)
        snap = BackupSnapshot(
            user="u", week=1, chunks=(ChunkRecord(b"f" * 32, 3000),)
        )
        sim.ingest_snapshot(snap)
        assert sim.stats.shares_total == 4
        assert sim.stats.logical_data == 3000
        # Share bytes ≈ (3000 + 32) / 3 * 4.
        assert sim.stats.logical_shares == pytest.approx(4 * 3000 / 3, rel=0.05)
