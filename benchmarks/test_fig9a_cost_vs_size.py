"""Figure 9(a) — cost saving vs weekly backup size (dedup ratio 10x).

Paper: savings grow with the weekly backup size and reach at least 70 % at
16 TB/week (CDStore ≈ $3,540/mo vs AONT-RS ≈ $16,400/mo and single-cloud
≈ $12,250/mo); the saving vs AONT-RS exceeds the saving vs single cloud;
the curves are jagged where the cheapest EC2 instance switches.
"""

from conftest import emit

from repro.bench.reporting import format_table
from repro.costs import sweep_weekly_size

TB = 1000**4


def test_fig9a(benchmark):
    rows = benchmark(sweep_weekly_size)

    table = format_table(
        ["weekly TB", "saving vs AONT-RS %", "saving vs single %", "CDStore $/mo", "instance"],
        [
            [
                r.weekly_bytes / TB,
                100 * r.saving_vs_aont_rs,
                100 * r.saving_vs_single_cloud,
                r.cdstore.total_usd,
                r.cdstore.instances[0],
            ]
            for r in rows
        ],
        title="Figure 9(a): cost savings vs weekly backup size (10x dedup, 26-week retention)",
    )
    emit("fig9a", table)

    by_tb = {r.weekly_bytes / TB: r for r in rows}
    # Headline: >= 70% saving at 16 TB/week.
    assert by_tb[16].saving_vs_aont_rs >= 0.70
    assert by_tb[16].saving_vs_single_cloud >= 0.70
    # vs AONT-RS always exceeds vs single cloud (dispersal redundancy).
    for r in rows:
        assert r.saving_vs_aont_rs >= r.saving_vs_single_cloud
    # Savings grow with size overall.
    assert by_tb[256].saving_vs_aont_rs > by_tb[1].saving_vs_aont_rs
    # Paper magnitudes at the 16 TB point.
    assert abs(by_tb[16].aont_rs.total_usd - 16_400) / 16_400 < 0.15
    assert abs(by_tb[16].single_cloud.total_usd - 12_250) / 12_250 < 0.15
