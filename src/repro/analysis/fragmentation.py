"""Restore-fragmentation measurement ([38], §5.5).

A freshly-written backup restores sequentially: its shares sit in the few
containers its own upload filled.  A deduplicated later backup references
shares scattered across *older* containers, so the server opens many more
containers per restored megabyte — the fragmentation that erodes download
speed as backup series grow (Lillibridge et al. [38]).

:func:`analyze_fragmentation` walks a stored file's recipe on one server
and reports:

* ``containers_accessed`` — distinct containers the restore must read;
* ``container_switches`` — recipe-order transitions between containers
  (sequential locality: fewer is better);
* ``shares_total`` / per-container occupancy;
* ``fragmentation_score`` — switches normalised by the ideal (contiguous)
  layout, 0.0 = perfectly sequential, → 1.0 as every share hops
  containers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    # Type-only: the server layer imports repro.analysis.annotations for
    # its guarded_by declarations, so a runtime import here would close an
    # import cycle through the analysis package __init__.
    from repro.server.server import CDStoreServer

__all__ = ["FragmentationReport", "analyze_fragmentation"]


@dataclass(frozen=True)
class FragmentationReport:
    """Container-locality metrics for one file restore on one server."""

    user_id: str
    shares_total: int
    containers_accessed: int
    container_switches: int
    share_bytes: int

    @property
    def shares_per_container(self) -> float:
        if not self.containers_accessed:
            return 0.0
        return self.shares_total / self.containers_accessed

    @property
    def fragmentation_score(self) -> float:
        """0.0 = sequential restore; approaches 1.0 as locality vanishes.

        Defined as the excess container switches over the minimum possible
        (``containers_accessed - 1``), normalised by the worst case (a
        switch at every share boundary).
        """
        if self.shares_total <= 1:
            return 0.0
        minimum = max(self.containers_accessed - 1, 0)
        worst = self.shares_total - 1
        if worst == minimum:
            return 0.0
        return (self.container_switches - minimum) / (worst - minimum)


def analyze_fragmentation(
    server: CDStoreServer, user_id: str, lookup_key: bytes
) -> FragmentationReport:
    """Measure the container locality of one stored file's restore."""
    recipe = server.get_recipe(user_id, lookup_key)
    containers: list[str] = []
    share_bytes = 0
    for entry in recipe:
        share_entry = server._get_share_entry(entry.fingerprint)
        if share_entry is None:
            continue
        containers.append(share_entry.ref.container_id)
        share_bytes += share_entry.share_size
    switches = sum(
        1 for a, b in zip(containers, containers[1:]) if a != b
    )
    return FragmentationReport(
        user_id=user_id,
        shares_total=len(containers),
        containers_accessed=len(set(containers)),
        container_switches=switches,
        share_bytes=share_bytes,
    )
