"""Substrate microbenchmarks (context for the paper-figure numbers).

Not a paper table — these measure the building blocks so EXPERIMENTS.md
readers can see *why* the absolute throughputs sit where they do in pure
Python: the from-scratch AES vs the OpenSSL backend, GF(2^8) bulk kernels,
Reed-Solomon encode, SHA-256 hashing, Rabin chunking, and the LSM store.
"""

import time

import numpy as np
from conftest import emit

from repro.bench.reporting import format_table
from repro.crypto.ciphers import AesCtr, available_aes_backends
from repro.crypto.drbg import DRBG
from repro.crypto.hashing import sha256
from repro.erasure.reed_solomon import ReedSolomon
from repro.gf.gf256 import gf_mul_bytes


def _rate(nbytes: float, seconds: float) -> float:
    return nbytes / 1e6 / seconds if seconds else float("inf")


def test_microbenchmarks(benchmark):
    data = DRBG("micro").random_bytes(1 << 20)
    rows = []

    def run():
        rows.clear()
        # AES-CTR keystream, both backends.
        for backend in available_aes_backends():
            ctr = AesCtr(b"k" * 32, backend=backend)
            start = time.perf_counter()
            ctr.keystream(len(data))
            rows.append([f"aes-ctr ({backend})", _rate(len(data), time.perf_counter() - start)])
        # SHA-256 (stdlib).
        start = time.perf_counter()
        for off in range(0, len(data), 8192):
            sha256(data[off : off + 8192])
        rows.append(["sha-256 (8 KB chunks)", _rate(len(data), time.perf_counter() - start)])
        # GF(2^8) scalar-vector multiply.
        arr = np.frombuffer(data, dtype=np.uint8)
        start = time.perf_counter()
        for _ in range(8):
            gf_mul_bytes(0x57, arr)
        rows.append(["gf256 mul_bytes", _rate(8 * len(data), time.perf_counter() - start)])
        # Reed-Solomon encode (4, 3), 8 KB pieces.
        rs = ReedSolomon(4, 3)
        start = time.perf_counter()
        for off in range(0, len(data), 8192):
            rs.encode(data[off : off + 8192])
        rows.append(["reed-solomon encode (4,3)", _rate(len(data), time.perf_counter() - start)])
        # Rabin fingerprints: the vectorised pair-table kernel the client's
        # ingest path actually runs, the byte-at-a-time rolling reference
        # (kept only as executable documentation / property-test anchor),
        # and the end-to-end chunker on top of the vectorised kernel.
        from repro.chunking import RabinChunker

        chunker = RabinChunker()
        start = time.perf_counter()
        chunker.window_fingerprints(data[: 512 << 10])
        rows.append([
            "rabin fingerprints (vectorized)",
            _rate(512 << 10, time.perf_counter() - start),
        ])
        start = time.perf_counter()
        chunker.rolling_fingerprints(data[: 64 << 10])
        rows.append([
            "rabin fingerprints (rolling ref)",
            _rate(64 << 10, time.perf_counter() - start),
        ])
        start = time.perf_counter()
        list(chunker.chunk_bytes(data[: 512 << 10]))
        rows.append([
            "rabin chunking (ingest path)",
            _rate(512 << 10, time.perf_counter() - start),
        ])
        # LSM store put/get throughput.
        import tempfile

        from repro.lsm.db import LSMStore

        with tempfile.TemporaryDirectory() as tmp:
            with LSMStore(tmp) as db:
                start = time.perf_counter()
                for i in range(2000):
                    db.put(f"key-{i:06d}".encode(), data[i % 1024 : i % 1024 + 100])
                put_rate = 2000 / (time.perf_counter() - start)
                start = time.perf_counter()
                for i in range(2000):
                    db.get(f"key-{i:06d}".encode())
                get_rate = 2000 / (time.perf_counter() - start)
        rows.append(["lsm puts/s", put_rate])
        rows.append(["lsm gets/s", get_rate])
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["substrate", "MB/s or ops/s"],
        results,
        title="Substrate microbenchmarks (1 MB working set)",
    )
    emit("microbenchmarks", table)

    named = dict(results)
    if "aes-ctr (openssl)" in named:
        assert named["aes-ctr (openssl)"] > named["aes-ctr (pure)"]
    # The ingest path must run on the vectorised kernel, not the reference.
    assert (
        named["rabin fingerprints (vectorized)"]
        > named["rabin fingerprints (rolling ref)"]
    )
    assert named["lsm puts/s"] > 1000
    assert named["lsm gets/s"] > 1000
