"""WIRE-005 fixture: METHOD_FRAMES drifted from the Protocol surface.

Parsed (never imported) by tests/test_analysis_checkers.py; the
``../server/protocol.py`` module declares the API surface this map is
cross-checked against.  No sibling server.py/client.py exist, so the
WIRE-001/002 surfaces are (deliberately) skipped.
"""

T_PING = 0x01
T_UPLOAD = 0x02
T_UNMAPPED = 0x03  # TRUE-POSITIVE: neither control machinery nor mapped

METHOD_FRAMES: dict[str, int] = {
    "upload": T_UPLOAD,
    "ghost_method": T_UPLOAD,  # TRUE-POSITIVE: the Protocol never declares it
    # Operators poke this method over a debug socket only; the Protocol
    # deliberately does not surface it to clients.
    "debug_probe": T_UPLOAD,  # analysis: ignore[WIRE-005] -- fixture: justified out-of-Protocol mapping
}

CONTROL_FRAMES: frozenset[int] = frozenset({T_PING})

LOCAL_ONLY_METHODS: frozenset[str] = frozenset({"close"})
