"""PICKLE-001 fixture: a non-picklable field and a justified suppression.

Parsed (never imported) by tests/test_analysis_checkers.py.
"""

from dataclasses import dataclass
from typing import Any, Optional


@dataclass
class BadSpec:
    name: str
    handle: Any  # TRUE-POSITIVE: Any is not on the allowlist


@dataclass
class FineSpec:
    name: str
    sizes: tuple[int, ...]
    labels: Optional[dict[str, int]] = None
    extra: list[bytes] | None = None


@dataclass
class EdgeSpec:
    # The alias resolves to plain `bytes` at runtime; the string spelling
    # only exists to dodge a circular import.
    payload: "SharedBuffer"  # analysis: ignore[PICKLE-001] -- runtime alias of bytes, spelled as a string to break an import cycle
