"""Side-channel attack demonstrations (§3.3).

Client-side *global* deduplication leaks information: an attacker who can
observe or influence dedup decisions learns whether other users store a
given file [28], and one who obtains a fingerprint can convince the cloud
it owns the data [27].  CDStore's two-stage deduplication closes both
channels.  This package makes the argument executable:

* :class:`~repro.attacks.naive.NaiveGlobalDedupServer` — the vulnerable
  strawman of §3.3: client-side dedup answered from the *global* index,
  and ownership granted by fingerprint;
* :mod:`repro.attacks.side_channel` — the confirmation-of-file attack and
  the fingerprint ownership attack, each runnable against the naive
  server (succeeds) and against :class:`~repro.server.server.CDStoreServer`
  (fails).

The tests in ``tests/test_attacks.py`` pin both outcomes.
"""

from repro.attacks.naive import NaiveGlobalDedupServer
from repro.attacks.side_channel import (
    AttackResult,
    run_confirmation_attack,
    run_ownership_attack,
)

__all__ = [
    "AttackResult",
    "NaiveGlobalDedupServer",
    "run_confirmation_attack",
    "run_ownership_attack",
]
