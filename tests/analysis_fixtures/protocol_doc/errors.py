"""WIRE-006 fixture errors: one documented code, one drifted, one waived."""


class DocumentedError(Exception):
    wire_code = 1


class ForgottenError(Exception):
    wire_code = 2  # TRUE-POSITIVE: missing from PROTOCOL.md's registry


class InternalOnlyError(Exception):
    # Never crosses the wire in this fixture's deployment; the code is
    # reserved but intentionally unpublished.
    wire_code = 3  # analysis: ignore[WIRE-006] -- fixture: internal-only code kept out of the spec
