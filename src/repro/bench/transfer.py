"""Transfer-speed experiments (Table 2, Figures 7 and 8).

These drivers run the calibrated testbed models of
:mod:`repro.cloud.testbed` over the same scenarios the paper measures:

* :func:`cloud_speed_table` — per-cloud speeds moving 2 GB in 4 MB units
  (Table 2);
* :func:`baseline_transfer_speeds` — single-client upload of unique data,
  upload of duplicate data, and download, on either testbed (Figure 7a);
* :func:`trace_transfer_speeds` — trace-driven first/subsequent upload and
  download speeds using the FSL-like workload (Figure 7b);
* :func:`aggregate_upload_speeds` — multi-client aggregate upload speeds
  (Figure 8).

Times come from the simulated-performance model; deduplication decisions
come from real fingerprint accounting over the workload traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.dedup import TwoStageSimulator
from repro.cloud.network import MB, batch_count, makespan, pipeline_makespan
from repro.cloud.provider import CloudProvider
from repro.cloud.testbed import Testbed
from repro.server.messages import ShareMeta
from repro.workloads.base import Workload

__all__ = [
    "CloudSpeedRow",
    "MakespanComparison",
    "TransferSpeeds",
    "TraceSpeeds",
    "aggregate_upload_speeds",
    "baseline_transfer_speeds",
    "client_upload_walltime",
    "cloud_speed_table",
    "trace_transfer_speeds",
    "upload_makespans",
]

#: Wire size of one share's dedup metadata (fingerprint + sizes, §4.3).
_META_BYTES = ShareMeta.packed_size()
_AVG_SECRET = 8192


def client_upload_walltime(
    clouds: list[CloudProvider],
    wire_bytes_per_cloud: list[float],
    threads: int = 1,
) -> float:
    """Simulated wall-clock seconds for one client-side upload (§4.6).

    A multi-threaded client drives all cloud connections concurrently, so
    the wall-clock is the *makespan* over per-cloud transfer times; a
    single-threaded client visits the clouds one after another, so it pays
    their sum.  Each cloud's bytes move in 4 MB units (§4.1) over its
    uplink.  This mirrors the accounting the
    :class:`~repro.client.comm.CommEngine` charges to its clock.
    """
    times = [
        cloud.uplink.transfer_time(int(nbytes), batches=batch_count(nbytes))
        for cloud, nbytes in zip(clouds, wire_bytes_per_cloud)
    ]
    return makespan(times) if threads > 1 else sum(times)


@dataclass(frozen=True)
class CloudSpeedRow:
    """Table 2 row: one cloud's measured upload/download speed (MB/s)."""

    cloud: str
    upload_mbps: float
    download_mbps: float


def cloud_speed_table(testbed: Testbed, data_bytes: int = 2 << 30) -> list[CloudSpeedRow]:
    """Move ``data_bytes`` in 4 MB units through each cloud individually."""
    rows = []
    batches = max(1, data_bytes // (4 << 20))
    for cloud in testbed.clouds:
        up = cloud.uplink.transfer_time(data_bytes, batches=batches)
        down = cloud.downlink.transfer_time(data_bytes, batches=batches)
        rows.append(
            CloudSpeedRow(
                cloud=cloud.name,
                upload_mbps=data_bytes / MB / up,
                download_mbps=data_bytes / MB / down,
            )
        )
    return rows


@dataclass(frozen=True)
class MakespanComparison:
    """Serial vs streamed upload schedule for one testbed (threads=1).

    ``serial_s`` is the un-pipelined schedule (encode everything, then
    visit the clouds one after another — ``pipeline_depth=1``);
    ``overlapped_s`` is the windowed streaming schedule where 4 MB encode
    windows flow into the per-cloud upload queues as they finish
    (``pipeline_depth>1``), computed with the flow-shop recurrence of
    :func:`repro.cloud.network.pipeline_makespan`.
    """

    testbed: str
    windows: int
    serial_s: float
    overlapped_s: float

    @property
    def speedup(self) -> float:
        return self.serial_s / self.overlapped_s if self.overlapped_s else float("inf")


def upload_makespans(
    testbed: Testbed,
    k: int = 3,
    data_bytes: int = 2 << 30,
    window_bytes: int = 4 << 20,
) -> MakespanComparison:
    """Serial vs overlapped makespan of the Figure 7(a) unique-data upload.

    Both schedules run at one encode thread; the difference is purely the
    streaming transfer stage.  The overlapped schedule is a two-stage
    windowed pipeline — encode a 4 MB window, hand it to the per-cloud
    upload workers while the next window encodes — so its makespan
    approaches ``max(encode, transfer)`` while the serial schedule pays
    ``encode + Σ per-cloud transfer``.
    """
    n = testbed.n
    wire_each = _share_bytes(data_bytes, k) + _meta_bytes(data_bytes)
    serial = testbed.upload_time_serial(data_bytes, [wire_each] * n, k=k)

    windows = batch_count(data_bytes, unit=window_bytes)
    logical_w = data_bytes / windows
    wire_w = wire_each / windows
    encode_w = logical_w / (testbed.model.chunk_encode_mbps * MB)
    # Transfer stage per window: the per-cloud workers run concurrently,
    # bounded by the client's shared physical uplink; each cloud's window
    # carries its slice of dedup-query round trips and overlaps its
    # server's ingest.
    query_w = [
        batch_count(logical_w / k, unit=testbed.model.query_batch_bytes)
        * 2
        * cloud.uplink.latency_s
        for cloud in testbed.clouds
    ]
    server_w = [
        max(
            wire_w / (testbed.model.server_disk_write_mbps * MB),
            logical_w / (testbed.model.server_cpu_mbps * MB),
        )
    ] * n
    per_cloud_w = [
        max(cloud.uplink.transfer_time(int(wire_w), batches=1) + q, s)
        for cloud, q, s in zip(testbed.clouds, query_w, server_w)
    ]
    transfer_w = max([n * wire_w / (testbed.client_uplink_mbps * MB)] + per_cloud_w)
    overlapped = pipeline_makespan(
        [[encode_w] * windows, [transfer_w] * windows]
    )
    return MakespanComparison(
        testbed=testbed.name,
        windows=windows,
        serial_s=serial,
        overlapped_s=overlapped,
    )


@dataclass(frozen=True)
class TransferSpeeds:
    """Figure 7(a) triple for one testbed (MB/s)."""

    testbed: str
    upload_unique_mbps: float
    upload_duplicate_mbps: float
    download_mbps: float


def _share_bytes(logical_bytes: int, k: int) -> float:
    """Per-cloud share bytes for ``logical_bytes`` of unique data."""
    return logical_bytes / k


def _meta_bytes(logical_bytes: int) -> float:
    """Per-cloud metadata bytes for ``logical_bytes`` of data."""
    return logical_bytes / _AVG_SECRET * _META_BYTES


def _download_clouds(testbed: Testbed, k: int) -> list[int]:
    """Pick the k clouds used for download (fastest downlinks first)."""
    order = sorted(
        range(len(testbed.clouds)),
        key=lambda i: (testbed.clouds[i].downlink.bandwidth_mbps, testbed.clouds[i].name),
        reverse=True,
    )
    return order[:k]


def baseline_transfer_speeds(
    testbed: Testbed, k: int = 3, data_bytes: int = 2 << 30
) -> TransferSpeeds:
    """Figure 7(a): single-client baseline speeds on one testbed.

    Uploads 2 GB of unique data, then 2 GB of duplicate data (only
    metadata travels), then downloads the 2 GB from ``k`` clouds.
    """
    n = testbed.n
    unique_wire = [_share_bytes(data_bytes, k) + _meta_bytes(data_bytes)] * n
    t_uniq = testbed.upload_time(data_bytes, unique_wire, k=k)
    dup_wire = [_meta_bytes(data_bytes)] * n
    t_dup = testbed.upload_time(data_bytes, dup_wire, k=k)
    down_wire = {
        idx: _share_bytes(data_bytes, k) for idx in _download_clouds(testbed, k)
    }
    t_down = testbed.download_time(data_bytes, down_wire)
    return TransferSpeeds(
        testbed=testbed.name,
        upload_unique_mbps=data_bytes / MB / t_uniq,
        upload_duplicate_mbps=data_bytes / MB / t_dup,
        download_mbps=data_bytes / MB / t_down,
    )


@dataclass(frozen=True)
class TraceSpeeds:
    """Figure 7(b) triple: trace-driven speeds (MB/s)."""

    testbed: str
    upload_first_mbps: float
    upload_subsequent_mbps: float
    download_mbps: float
    #: Total upload seconds across the replay under the pipelined schedule
    #: (what the speed columns are computed from) and under the serial
    #: encode-then-upload schedule — the streaming transfer stage's win.
    upload_seconds_overlapped: float = 0.0
    upload_seconds_serial: float = 0.0


def trace_transfer_speeds(
    testbed: Testbed,
    workload: Workload,
    k: int = 3,
    users: int | None = None,
    weeks: int | None = None,
    fragmentation: float = 0.1,
) -> TraceSpeeds:
    """Figure 7(b): replay weekly backups through the transfer model.

    Deduplication decisions are made by real fingerprint accounting (the
    same :class:`TwoStageSimulator` behind Figure 6); wire bytes feed the
    testbed timing model.  Download replays every backup with the
    fragmentation derating of §5.5.
    """
    n = testbed.n
    sim = TwoStageSimulator(n=n, k=k)
    chosen_users = workload.users[: users or len(workload.users)]
    total_weeks = weeks or workload.weeks

    first_logical = first_seconds = 0.0
    subs_logical = subs_seconds = 0.0
    down_logical = down_seconds = 0.0
    serial_seconds = 0.0
    down_clouds = _download_clouds(testbed, k)

    for week in range(1, total_weeks + 1):
        for user in chosen_users:
            snapshot = workload.snapshot(user, week)
            before = sim.stats.snapshot()
            sim.ingest_snapshot(snapshot)
            weekly = sim.stats.delta(before)
            logical = weekly.logical_data
            # Transferred share bytes are spread evenly over the n clouds.
            wire_each = weekly.transferred_shares / n + _meta_bytes(logical)
            t_up = testbed.upload_time(logical, [wire_each] * n, k=k)
            serial_seconds += testbed.upload_time_serial(
                logical, [wire_each] * n, k=k
            )
            if week == 1:
                first_logical += logical
                first_seconds += t_up
            else:
                subs_logical += logical
                subs_seconds += t_up
            # Download the full backup back from k clouds.
            share_total = weekly.logical_shares / n  # per-cloud share bytes
            t_down = testbed.download_time(
                logical,
                {idx: share_total for idx in down_clouds},
                fragmentation=fragmentation if week > 1 else 0.0,
            )
            down_logical += logical
            down_seconds += t_down

    return TraceSpeeds(
        testbed=testbed.name,
        upload_first_mbps=first_logical / MB / first_seconds,
        upload_subsequent_mbps=subs_logical / MB / subs_seconds,
        download_mbps=down_logical / MB / down_seconds,
        upload_seconds_overlapped=first_seconds + subs_seconds,
        upload_seconds_serial=serial_seconds,
    )


@dataclass(frozen=True)
class AggregateRow:
    """Figure 8 point: aggregate upload speed for one client count."""

    clients: int
    unique_mbps: float
    duplicate_mbps: float


def aggregate_upload_speeds(
    testbed: Testbed,
    client_counts: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8),
    k: int = 3,
    data_bytes: int = 2 << 30,
) -> list[AggregateRow]:
    """Figure 8: aggregate upload speed vs number of concurrent clients.

    Every client uploads ``data_bytes`` of unique data, then the same again
    as duplicates; the aggregate speed is ``clients * data / makespan``.
    """
    n = testbed.n
    rows = []
    for m in client_counts:
        uniq_wire = [_share_bytes(data_bytes, k) + _meta_bytes(data_bytes)] * n
        t_uniq = testbed.upload_time(data_bytes, uniq_wire, clients=m, k=k)
        dup_wire = [_meta_bytes(data_bytes)] * n
        t_dup = testbed.upload_time(data_bytes, dup_wire, clients=m, k=k)
        rows.append(
            AggregateRow(
                clients=m,
                unique_mbps=m * data_bytes / MB / t_uniq,
                duplicate_mbps=m * data_bytes / MB / t_dup,
            )
        )
    return rows
