"""Synthetic backup workloads standing in for the paper's datasets (§5.2).

The paper evaluates deduplication on two private datasets: the FSL
Fslhomes-2013 home-directory snapshots (9 users, 16 weekly backups,
8.11 TB) and a self-collected VM-image dataset (156 students' weekly image
snapshots cloned from one master image, 11.12 TB after zero-chunk removal).
Neither dataset ships with the paper, so this package generates *chunk-level
traces* with the same statistical structure:

* :class:`~repro.workloads.fsl.FSLWorkload` — per-user populations with
  small weekly modifications (intra-user savings ≥ 94 % after week 1) and
  limited cross-user overlap (inter-user savings ≤ ~13 %);
* :class:`~repro.workloads.vm.VMWorkload` — images cloned from a master
  (week-1 inter-user saving ≈ 93 %) with *correlated* weekly edits
  ("students make similar changes when doing programming assignments"),
  keeping later inter-user savings in the paper's 12-47 % band.

Traces are sequences of ``(fingerprint, size)`` chunk records — the same
representation the published FSL dataset uses — so they scale to terabyte
logical sizes as metadata.  :func:`materialize` turns a record into bytes
exactly the way §5.5 reconstructs chunks for its trace-driven runs:
"writing the fingerprint value repeatedly to a chunk with the specified
size", preserving content similarity for end-to-end runs.
"""

from repro.workloads.base import BackupSnapshot, ChunkRecord, Workload, materialize
from repro.workloads.fsl import FSLWorkload
from repro.workloads.vm import VMWorkload

__all__ = [
    "BackupSnapshot",
    "ChunkRecord",
    "FSLWorkload",
    "materialize",
    "VMWorkload",
    "Workload",
]
