"""The LSM store façade: WAL + memtable + SSTables + bloom + block cache.

:class:`LSMStore` is the drop-in LevelDB replacement the CDStore server's
index module builds on (§4.4).  Semantics:

* ``put``/``delete`` are logged to the WAL, applied to the memtable, and
  flushed to a new SSTable when the memtable exceeds ``memtable_bytes``;
* ``get`` consults the memtable, then SSTables newest-first (each guarded
  by its bloom filter and served through a shared LRU block cache);
* compaction merges all SSTables into one, dropping tombstones and
  superseded versions;
* ``snapshot`` writes a point-in-time copy of the store to a directory —
  mirroring "the snapshot feature provided by LevelDB" the paper mentions
  for backing up indices to the cloud;
* reopen replays the WAL, recovering everything acknowledged before a
  crash.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Iterator

from repro.errors import StorageError
from repro.lsm.cache import LRUCache
from repro.lsm.memtable import TOMBSTONE, MemTable
from repro.lsm.sstable import SSTable
from repro.lsm.wal import OP_DELETE, OP_PUT, WriteAheadLog
from repro.obs.registry import REGISTRY

__all__ = ["LSMStore", "prefix_upper_bound"]

# Storage-engine throughput counters (docs/OBSERVABILITY.md).  Appends
# sit on the ingest hot path — one Counter.inc is a per-thread dict
# update, cheap enough to leave unconditioned.
_WAL_APPENDS = REGISTRY.counter(
    "lsm_wal_appends_total", "Mutations logged to the write-ahead log"
)
_WAL_SYNCS = REGISTRY.counter(
    "lsm_wal_syncs_total", "WAL group-commit fsyncs"
)
_FLUSHES = REGISTRY.counter(
    "lsm_flushes_total", "Memtable flushes into new SSTables"
)
_COMPACTIONS = REGISTRY.counter(
    "lsm_compactions_total", "SSTable merge compactions"
)


def prefix_upper_bound(prefix: bytes) -> bytes | None:
    """Smallest key greater than every key starting with ``prefix``.

    Returns None when no such bound exists (empty or all-0xFF prefix),
    meaning the scan must run to the end of the keyspace.
    """
    for i in range(len(prefix) - 1, -1, -1):
        if prefix[i] != 0xFF:
            return prefix[:i] + bytes([prefix[i] + 1])
    return None

DEFAULT_MEMTABLE_BYTES = 4 << 20
DEFAULT_BLOCK_CACHE_BYTES = 8 << 20


class LSMStore:
    """Persistent key-value store with LSM-tree organisation."""

    def __init__(
        self,
        directory: str | Path,
        memtable_bytes: int = DEFAULT_MEMTABLE_BYTES,
        block_cache_bytes: int = DEFAULT_BLOCK_CACHE_BYTES,
        compact_at: int = 8,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.memtable_bytes = memtable_bytes
        self.compact_at = compact_at
        self._mem = MemTable()
        self._block_cache = LRUCache(block_cache_bytes, size_of=len)
        self._tables: list[SSTable] = []  # oldest first
        self._next_table_id = 0
        self._closed = False
        self._load_tables()
        self._wal = WriteAheadLog(self.directory / "wal.log")
        self._recover()

    # ------------------------------------------------------------------
    # startup / recovery
    # ------------------------------------------------------------------
    def _load_tables(self) -> None:
        paths = sorted(self.directory.glob("sst-*.db"))
        for path in paths:
            self._tables.append(SSTable(path))
            table_id = int(path.stem.split("-")[1])
            self._next_table_id = max(self._next_table_id, table_id + 1)

    def _recover(self) -> None:
        for op, key, value in self._wal.replay():
            if op == OP_PUT:
                self._mem.put(key, value)
            elif op == OP_DELETE:
                self._mem.delete(key)

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("store is closed")

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        self._check_open()
        self._wal.append_put(key, value)
        _WAL_APPENDS.inc()
        self._mem.put(key, value)
        self._maybe_flush()

    def delete(self, key: bytes) -> None:
        """Delete ``key`` (tombstoned until compaction)."""
        self._check_open()
        self._wal.append_delete(key)
        _WAL_APPENDS.inc()
        self._mem.delete(key)
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if self._mem.approximate_bytes >= self.memtable_bytes:
            self.flush()

    def sync(self) -> None:
        """Group commit: fsync the WAL so every mutation so far survives
        kill -9.  One call per acknowledged batch is the crash-only
        serving contract — cheaper than ``sync=True`` per append."""
        self._check_open()
        self._wal.sync()
        _WAL_SYNCS.inc()

    def flush(self) -> None:
        """Flush the memtable to a new SSTable and reset the WAL."""
        self._check_open()
        if not len(self._mem):
            return
        path = self.directory / f"sst-{self._next_table_id:08d}.db"
        self._next_table_id += 1
        table = SSTable.write(path, self._mem.sorted_items())
        self._tables.append(table)
        self._mem = MemTable()
        self._wal.reset()
        _FLUSHES.inc()
        if len(self._tables) >= self.compact_at:
            self.compact()

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> bytes | None:
        """Return the value for ``key`` or None."""
        self._check_open()
        value = self._mem.get(key)
        if value is TOMBSTONE:
            return None
        if value is not None:
            return value
        for table in reversed(self._tables):  # newest first
            value = table.get(key, block_cache=self._block_cache)
            if value is TOMBSTONE:
                return None
            if value is not None:
                return value
        return None

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def items(
        self, lower: bytes | None = None, upper: bytes | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Iterate live key-value pairs in key order (merged view).

        ``lower``/``upper`` bound the scan to ``lower <= key < upper``;
        SSTables skip blocks outside the range via their sparse indices,
        so bounded scans never touch the whole keyspace.
        """
        self._check_open()

        def in_range(key: bytes) -> bool:
            if lower is not None and key < lower:
                return False
            return upper is None or key < upper

        merged: dict[bytes, bytes | object] = {}
        for table in self._tables:  # oldest first; later wins
            for key, value in table.items_range(lower, upper):
                merged[key] = value
        for key, value in self._mem.sorted_items():
            if in_range(key):
                merged[key] = value
        for key in sorted(merged):
            value = merged[key]
            if value is not TOMBSTONE:
                yield key, value

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Merge all SSTables into one, dropping tombstones."""
        self._check_open()
        if not self._tables:
            return
        merged: dict[bytes, bytes | object] = {}
        for table in self._tables:
            for key, value in table.items():
                merged[key] = value
        live = (
            (key, merged[key]) for key in sorted(merged) if merged[key] is not TOMBSTONE
        )
        path = self.directory / f"sst-{self._next_table_id:08d}.db"
        self._next_table_id += 1
        new_table = SSTable.write(path, live)
        old_paths = [table.path for table in self._tables]
        self._tables = [new_table]
        self._block_cache.clear()
        for old in old_paths:
            old.unlink(missing_ok=True)
        _COMPACTIONS.inc()

    def snapshot(self, destination: str | Path) -> Path:
        """Write a point-in-time copy of the store to ``destination``.

        Flushes first so the snapshot is fully contained in SSTables (the
        paper stores such snapshots at the cloud backend for reliability).
        """
        self._check_open()
        self.flush()
        dest = Path(destination)
        dest.mkdir(parents=True, exist_ok=True)
        for table in self._tables:
            shutil.copy2(table.path, dest / table.path.name)
        return dest

    @property
    def block_cache(self) -> LRUCache:
        """The shared block cache (exposed for stats in benchmarks)."""
        return self._block_cache

    @property
    def table_count(self) -> int:
        return len(self._tables)

    def close(self) -> None:
        """Flush and release file handles."""
        if self._closed:
            return
        self.flush()
        self._wal.close()
        self._closed = True

    def __enter__(self) -> "LSMStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
