"""The AONT-RS codec family: AONT-RS, CAONT-RS-Rivest, CAONT-RS."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aont_rs import AONTRS
from repro.core.caont_rs import CAONTRS
from repro.core.caont_rs_rivest import CAONTRSRivest
from repro.crypto.drbg import DRBG
from repro.errors import CodingError, IntegrityError

ALL_CODECS = [CAONTRS, CAONTRSRivest, AONTRS]
CONVERGENT_CODECS = [CAONTRS, CAONTRSRivest]


@pytest.mark.parametrize("codec_cls", ALL_CODECS)
class TestRoundtrip:
    @pytest.mark.parametrize("n,k", [(4, 3), (5, 2), (6, 6), (8, 5)])
    def test_every_k_subset(self, codec_cls, n, k):
        codec = codec_cls(n, k)
        secret = DRBG("subset").random_bytes(5000)
        share_set = codec.split(secret)
        assert share_set.n == n
        for subset in combinations(range(n), k):
            assert codec.recover(share_set.subset(list(subset)), len(secret)) == secret

    @pytest.mark.parametrize("size", [0, 1, 2, 31, 32, 33, 100, 8191, 8192])
    def test_boundary_sizes(self, codec_cls, size):
        codec = codec_cls(4, 3)
        secret = DRBG(f"size{size}").random_bytes(size)
        share_set = codec.split(secret)
        assert codec.recover(share_set.subset([0, 1, 2]), size) == secret

    def test_too_few_shares(self, codec_cls):
        codec = codec_cls(4, 3)
        share_set = codec.split(b"data" * 100)
        with pytest.raises(CodingError):
            codec.recover(share_set.subset([0, 1]), 400)

    def test_equal_share_sizes(self, codec_cls):
        codec = codec_cls(4, 3)
        share_set = codec.split(b"q" * 1000)
        assert len({len(s) for s in share_set.shares}) == 1
        assert share_set.share_size == codec.share_size(1000)


@pytest.mark.parametrize("codec_cls", CONVERGENT_CODECS)
class TestConvergence:
    def test_identical_secrets_identical_shares(self, codec_cls):
        codec = codec_cls(4, 3)
        secret = b"the same backup chunk" * 50
        assert codec.split(secret).shares == codec.split(secret).shares

    def test_two_instances_converge(self, codec_cls):
        secret = b"cross-client chunk" * 40
        assert codec_cls(4, 3).split(secret).shares == codec_cls(4, 3).split(secret).shares

    def test_salt_scopes_deduplication(self, codec_cls):
        secret = b"salted" * 100
        org_a = codec_cls(4, 3, salt=b"org-a").split(secret)
        org_b = codec_cls(4, 3, salt=b"org-b").split(secret)
        assert org_a.shares != org_b.shares

    def test_integrity_check_on_corrupt_shares(self, codec_cls):
        codec = codec_cls(4, 3)
        secret = b"integrity" * 100
        share_set = codec.split(secret)
        bad = bytearray(share_set.shares[0])
        bad[5] ^= 0xFF
        shares = {0: bytes(bad), 1: share_set.shares[1], 2: share_set.shares[2]}
        with pytest.raises(IntegrityError):
            codec.recover(shares, len(secret))

    def test_deterministic_flag(self, codec_cls):
        assert codec_cls(4, 3).deterministic is True


class TestAontRsRandomness:
    def test_identical_secrets_differ(self):
        codec = AONTRS(4, 3)
        secret = b"not deduplicable" * 30
        assert codec.split(secret).shares != codec.split(secret).shares

    def test_seeded_rng_reproducible(self):
        secret = b"seeded" * 50
        a = AONTRS(4, 3, rng=DRBG("seed")).split(secret)
        b = AONTRS(4, 3, rng=DRBG("seed")).split(secret)
        assert a.shares == b.shares

    def test_not_deterministic_flag(self):
        assert AONTRS(4, 3).deterministic is False


class TestStorageBlowup:
    @pytest.mark.parametrize("codec_cls", ALL_CODECS)
    def test_blowup_close_to_table1(self, codec_cls):
        """Table 1: AONT-RS-family blowup = (n/k)(1 + Skey/Ssec)."""
        n, k, size = 4, 3, 8192
        codec = codec_cls(n, k)
        share_set = codec.split(DRBG("blowup").random_bytes(size))
        expected = (n / k) * (1 + 32 / size)
        assert abs(share_set.storage_blowup - expected) < 0.02

    @given(st.integers(min_value=1, max_value=5000))
    def test_share_size_prediction_matches(self, size):
        codec = CAONTRS(4, 3)
        secret = b"\x42" * size
        share_set = codec.split(secret)
        assert share_set.share_size == codec.share_size(size)


class TestCaontRsInternals:
    def test_hash_key_exposed(self):
        codec = CAONTRS(4, 3, salt=b"s")
        from repro.crypto.hashing import hash_key

        assert codec.hash_key_of(b"x") == hash_key(b"x", b"s")

    def test_package_divides_by_k(self):
        for k in (2, 3, 5, 7):
            codec = CAONTRS(k + 1, k)
            for size in (0, 1, 100, 8192):
                assert codec._package_size(size) % k == 0

    @settings(max_examples=10)
    @given(st.binary(min_size=1, max_size=2000))
    def test_rivest_variant_agrees_with_aont_rs_format(self, secret):
        """CAONT-RS-Rivest and AONT-RS share the same package geometry."""
        a = CAONTRSRivest(4, 3).split(secret)
        b = AONTRS(4, 3).split(secret)
        assert a.share_size == b.share_size
