"""Bloom filter [18] used by SSTables to short-circuit lookups.

A standard k-hash bloom filter over a bit array, with the double-hashing
technique (two SHA-256-derived base hashes combined as ``h1 + i * h2``)
that provably preserves the asymptotic false-positive rate.
"""

from __future__ import annotations

import hashlib
import math
import struct

import numpy as np

from repro.errors import ParameterError

__all__ = ["BloomFilter"]


class BloomFilter:
    """Bloom filter sized for ``capacity`` items at ``fp_rate`` error.

    Supports serialisation so SSTables can persist their filters.
    """

    def __init__(self, capacity: int, fp_rate: float = 0.01) -> None:
        if capacity <= 0:
            raise ParameterError(f"capacity must be positive, got {capacity}")
        if not 0 < fp_rate < 1:
            raise ParameterError(f"fp_rate must be in (0, 1), got {fp_rate}")
        self.capacity = capacity
        self.fp_rate = fp_rate
        nbits = max(8, int(-capacity * math.log(fp_rate) / math.log(2) ** 2))
        self.num_bits = nbits
        self.num_hashes = max(1, round(nbits / capacity * math.log(2)))
        self._bits = np.zeros((nbits + 7) // 8, dtype=np.uint8)
        self._count = 0

    # ------------------------------------------------------------------
    def _positions(self, key: bytes) -> list[int]:
        digest = hashlib.sha256(key).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        return [(h1 + i * h2) % self.num_bits for i in range(self.num_hashes)]

    def add(self, key: bytes) -> None:
        """Insert ``key`` into the filter."""
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self._count += 1

    def __contains__(self, key: bytes) -> bool:
        return all(
            self._bits[pos >> 3] >> (pos & 7) & 1 for pos in self._positions(key)
        )

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise (header + bit array)."""
        header = struct.pack(
            ">QQdQ", self.capacity, self.num_bits, self.fp_rate, self._count
        )
        return header + self._bits.tobytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "BloomFilter":
        """Deserialise a filter produced by :meth:`to_bytes`.

        All header fields are validated *before* any allocation, so a
        forged header cannot trigger a huge-memory construction.
        """
        if len(blob) < 32:
            raise ParameterError("bloom blob too short")
        capacity, num_bits, fp_rate, count = struct.unpack(">QQdQ", blob[:32])
        if not 0 < capacity <= 1 << 40:
            raise ParameterError(f"bloom capacity {capacity} out of range")
        if not 0 < fp_rate < 1:
            raise ParameterError(f"bloom fp_rate {fp_rate!r} out of range")
        # The bit array length is fully determined by the blob size; the
        # header's num_bits must be consistent with it, and the sizing
        # formula must agree with (capacity, fp_rate) — all checked before
        # constructing, so no forged header can force a huge allocation.
        if (num_bits + 7) // 8 != len(blob) - 32:
            raise ParameterError("bloom blob length inconsistent with header")
        expected_bits = max(8, int(-capacity * math.log(fp_rate) / math.log(2) ** 2))
        if expected_bits != num_bits:
            raise ParameterError("bloom blob header inconsistent with sizing")
        bf = cls(capacity, fp_rate)
        bf._bits = np.frombuffer(blob[32:], dtype=np.uint8).copy()
        bf._count = count
        return bf
