"""Index backends for the CDStore server (§4.4).

The server keeps three logical indices:

* the **file index** — lookup key → file entry (recipe container ref);
* the **share index** — server fingerprint → share entry (container ref,
  share size, per-user reference counts);
* the **intra-user index** — (user, client fingerprint) → server
  fingerprint, which answers the client's intra-user dedup queries without
  ever comparing across users (the side-channel defence of §3.3).

All three live in one key-value namespace with a one-byte prefix.  Two
backends implement that namespace: :class:`LSMIndex` on the from-scratch
LSM store (the LevelDB analogue the paper uses) and :class:`DictIndex`
(in-memory, for large simulated runs and tests).
"""

from __future__ import annotations

import abc
import struct
from pathlib import Path
from typing import Iterator

from repro.analysis.annotations import EXTERNAL, guarded_by
from repro.errors import ProtocolError
from repro.lsm.db import LSMStore, prefix_upper_bound
from repro.storage.container import ContainerRef

__all__ = [
    "IndexBackend",
    "DictIndex",
    "LSMIndex",
    "ShareEntry",
    "FileEntry",
    "PREFIX_FILE",
    "PREFIX_SHARE",
    "PREFIX_INTRA",
    "PREFIX_TENANT",
]

PREFIX_FILE = b"f"
PREFIX_SHARE = b"s"
PREFIX_INTRA = b"u"
#: Per-tenant durable usage counters (quota accounting) — packed
#: :class:`repro.tenants.TenantUsage` records keyed by tenant id.
PREFIX_TENANT = b"q"


class IndexBackend(abc.ABC):
    """Minimal key-value API the server index needs."""

    @abc.abstractmethod
    def get(self, key: bytes) -> bytes | None: ...

    @abc.abstractmethod
    def put(self, key: bytes, value: bytes) -> None: ...

    @abc.abstractmethod
    def delete(self, key: bytes) -> None: ...

    @abc.abstractmethod
    def items(self, prefix: bytes = b"") -> Iterator[tuple[bytes, bytes]]: ...

    def sync(self) -> None:  # pragma: no cover - optional
        """Force every mutation so far to stable storage (default: nothing).

        The crash-only server calls this once per acknowledged batch;
        volatile backends (tests, simulations) have nothing to do.
        """

    def compact(self) -> None:  # pragma: no cover - optional
        """Fold log-structured state down (boot-time recovery hook)."""

    def close(self) -> None:  # pragma: no cover - optional
        """Release resources (default: nothing)."""

    def __enter__(self) -> "IndexBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DictIndex(IndexBackend):
    """In-memory index for simulations and tests."""

    #: Index backends own no lock: every access is serialised one layer up
    #: by ``CDStoreServer._lock`` (which declares ``index`` guarded).  The
    #: EXTERNAL declaration keeps that contract visible and machine-read.
    GUARDED_BY = guarded_by(_data=EXTERNAL)

    def __init__(self) -> None:
        self._data: dict[bytes, bytes] = {}

    def get(self, key: bytes) -> bytes | None:
        return self._data.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self._data[key] = value

    def delete(self, key: bytes) -> None:
        self._data.pop(key, None)

    def items(self, prefix: bytes = b"") -> Iterator[tuple[bytes, bytes]]:
        for key in sorted(self._data):
            if key.startswith(prefix):
                yield key, self._data[key]


class LSMIndex(IndexBackend):
    """LSM-store-backed index (the paper's LevelDB role)."""

    #: Serialised by ``CDStoreServer._lock`` — see :class:`DictIndex`.
    GUARDED_BY = guarded_by(_db=EXTERNAL)

    def __init__(self, directory: str | Path, **lsm_kwargs) -> None:
        self._db = LSMStore(directory, **lsm_kwargs)

    def get(self, key: bytes) -> bytes | None:
        return self._db.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self._db.put(key, value)

    def delete(self, key: bytes) -> None:
        self._db.delete(key)

    def items(self, prefix: bytes = b"") -> Iterator[tuple[bytes, bytes]]:
        # Push the prefix bounds into the LSM iterator so prefix scans
        # (repair, scrub, listings) touch only the matching key range
        # instead of filtering a full-store scan in Python.
        if not prefix:
            yield from self._db.items()
            return
        yield from self._db.items(lower=prefix, upper=prefix_upper_bound(prefix))

    def sync(self) -> None:
        # One WAL fsync covers every put/delete since the last sync —
        # the group-commit half of the never-ack-before-durable rule.
        self._db.sync()

    def compact(self) -> None:
        # Boot-time recovery folds the replayed WAL + accumulated
        # SSTables into one table, so repeated crash/restart cycles
        # cannot pile up log-structured debris.
        self._db.flush()
        self._db.compact()

    def close(self) -> None:
        self._db.close()

    @property
    def store(self) -> LSMStore:
        """The underlying LSM store (for snapshots and stats)."""
        return self._db


# ---------------------------------------------------------------------------
# entry codecs
# ---------------------------------------------------------------------------


class ShareEntry:
    """Share-index entry: container location + per-user refcounts (§4.4)."""

    def __init__(
        self,
        ref: ContainerRef,
        share_size: int,
        owners: dict[str, int] | None = None,
    ) -> None:
        self.ref = ref
        self.share_size = share_size
        self.owners = owners or {}

    # ------------------------------------------------------------------
    def add_owner(self, user_id: str) -> None:
        self.owners[user_id] = self.owners.get(user_id, 0) + 1

    def drop_owner(self, user_id: str) -> None:
        count = self.owners.get(user_id, 0)
        if count <= 1:
            self.owners.pop(user_id, None)
        else:
            self.owners[user_id] = count - 1

    @property
    def orphaned(self) -> bool:
        """True when no user references the share (GC candidate)."""
        return not self.owners

    # ------------------------------------------------------------------
    def pack(self) -> bytes:
        ref_blob = self.ref.pack()
        parts = [struct.pack(">IH", self.share_size, len(ref_blob)), ref_blob]
        parts.append(struct.pack(">I", len(self.owners)))
        for user, count in sorted(self.owners.items()):
            ub = user.encode("utf-8")
            parts.append(struct.pack(">HI", len(ub), count) + ub)
        return b"".join(parts)

    @classmethod
    def unpack(cls, blob: bytes) -> "ShareEntry":
        from repro.errors import StorageError

        try:
            share_size, ref_len = struct.unpack_from(">IH", blob, 0)
            pos = 6
            ref = ContainerRef.unpack(blob[pos : pos + ref_len])
            pos += ref_len
            (count,) = struct.unpack_from(">I", blob, pos)
            pos += 4
            owners = {}
            for _ in range(count):
                ulen, refcount = struct.unpack_from(">HI", blob, pos)
                pos += 6
                owners[blob[pos : pos + ulen].decode("utf-8")] = refcount
                pos += ulen
        except (struct.error, UnicodeDecodeError, StorageError) as exc:
            raise ProtocolError(f"bad ShareEntry: {exc}") from exc
        return cls(ref=ref, share_size=share_size, owners=owners)


class FileEntry:
    """File-index entry: a reference to the file recipe (§4.4)."""

    def __init__(
        self,
        recipe_ref: ContainerRef,
        path_share: bytes,
        file_size: int,
        secret_count: int,
    ) -> None:
        self.recipe_ref = recipe_ref
        self.path_share = path_share
        self.file_size = file_size
        self.secret_count = secret_count

    def pack(self) -> bytes:
        ref_blob = self.recipe_ref.pack()
        return (
            struct.pack(">H", len(ref_blob))
            + ref_blob
            + struct.pack(">I", len(self.path_share))
            + self.path_share
            + struct.pack(">QQ", self.file_size, self.secret_count)
        )

    @classmethod
    def unpack(cls, blob: bytes) -> "FileEntry":
        from repro.errors import StorageError

        try:
            (ref_len,) = struct.unpack_from(">H", blob, 0)
            pos = 2
            ref = ContainerRef.unpack(blob[pos : pos + ref_len])
            pos += ref_len
            (share_len,) = struct.unpack_from(">I", blob, pos)
            pos += 4
            path_share = blob[pos : pos + share_len]
            pos += share_len
            file_size, secret_count = struct.unpack_from(">QQ", blob, pos)
        except (struct.error, StorageError) as exc:
            raise ProtocolError(f"bad FileEntry: {exc}") from exc
        return cls(ref, path_share, file_size, secret_count)
