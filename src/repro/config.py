"""Typed deployment configuration: :class:`ReproConfig` and :class:`CloudSpec`.

Deployment settings used to travel as scattered keyword arguments
(``CDStoreSystem(n=…, k=…, salt=…, chunker=…)``), an untyped ``dict``
loaded from ``cdstore.json``, and ad-hoc ``tcp://`` string parsing in the
network client.  This module is now the single place those settings are
*parsed, validated and persisted*:

* :class:`CloudSpec` — where one cloud lives (``local`` or
  ``tcp://host:port``), with the canonical parser the CLI, the system
  façade and the network proxy all share;
* :class:`ReproConfig` — every deployment-wide knob, validated once at
  construction; ``repro init`` writes it, every other command loads it,
  and :meth:`~repro.system.cdstore.CDStoreSystem.from_config` builds a
  system straight from it.

Secrets are deliberately *not* part of the config: tenant credentials
(:class:`~repro.tenants.Credentials`) are passed separately so the
config file stays safe to commit and copy around.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from repro.errors import ParameterError, ReproError

__all__ = ["CloudSpec", "GatewaySpec", "ObsSpec", "ReproConfig", "CONFIG_FILE_NAME"]

#: Conventional config file name under a deployment root.
CONFIG_FILE_NAME = "cdstore.json"


@dataclass(frozen=True)
class CloudSpec:
    """Where one cloud of a deployment lives.

    ``kind`` is ``"local"`` (a backend directory under the deployment
    root) or ``"tcp"`` (a ``repro serve`` process at ``host:port``
    driven over the wire).
    """

    kind: str
    host: str | None = None
    port: int | None = None

    def __post_init__(self) -> None:
        if self.kind == "local":
            if self.host is not None or self.port is not None:
                raise ParameterError("a local cloud spec carries no host/port")
        elif self.kind == "tcp":
            if not self.host:
                raise ParameterError("a tcp cloud spec needs a host")
            if not isinstance(self.port, int) or not 1 <= self.port <= 65535:
                raise ParameterError(
                    f"tcp cloud spec port {self.port!r} outside 1-65535"
                )
        else:
            raise ParameterError(
                f"cloud spec kind must be 'local' or 'tcp', got {self.kind!r}"
            )

    # ------------------------------------------------------------------
    @property
    def is_remote(self) -> bool:
        return self.kind == "tcp"

    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` of a remote spec."""
        if not self.is_remote:
            raise ParameterError("local cloud specs have no network address")
        assert self.host is not None and self.port is not None
        return self.host, self.port

    @classmethod
    def local(cls) -> "CloudSpec":
        return cls(kind="local")

    @classmethod
    def tcp(cls, host: str, port: int) -> "CloudSpec":
        return cls(kind="tcp", host=host, port=port)

    @classmethod
    def parse(cls, text: str) -> "CloudSpec":
        """Parse ``"local"`` or ``"tcp://host:port"``.

        The one canonical parser: the CLI's argparse types and the
        system façade all route here, so a malformed spec produces the
        same :class:`~repro.errors.ParameterError` everywhere.
        """
        if not isinstance(text, str):
            raise ParameterError(
                f"cloud spec must be a string, got {type(text).__name__}"
            )
        if text == "local":
            return cls.local()
        if not text.startswith("tcp://"):
            raise ParameterError(
                f"cloud spec must be 'local' or tcp://host:port, got {text!r}"
            )
        rest = text[len("tcp://"):]
        host, sep, port_text = rest.rpartition(":")
        if not sep or not host:
            raise ParameterError(
                f"cloud spec {text!r} is missing a host or port (tcp://host:port)"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise ParameterError(
                f"cloud spec {text!r} has a non-numeric port {port_text!r}"
            ) from None
        if not 1 <= port <= 65535:
            raise ParameterError(f"cloud spec {text!r} port out of range 1-65535")
        return cls.tcp(host, port)

    def __str__(self) -> str:
        if self.kind == "local":
            return "local"
        return f"tcp://{self.host}:{self.port}"


def _coerce_spec(value: "CloudSpec | str") -> CloudSpec:
    if isinstance(value, CloudSpec):
        return value
    return CloudSpec.parse(value)


@dataclass(frozen=True)
class GatewaySpec:
    """Where the deployment's read gateway lives, and its cache shape.

    A gateway (:mod:`repro.gateway`) is optional infrastructure: when a
    deployment's config carries one, clients built by
    :meth:`~repro.system.cdstore.CDStoreSystem.from_config` restore
    through it (with automatic direct-quorum fallback).  ``repro init
    --gateway tcp://host:port`` persists it; ``repro gateway`` serves it.
    """

    #: The ``tcp://host:port`` clients connect to.
    endpoint: CloudSpec
    #: Hot-container cache bound, in bytes of cached share payload.
    cache_bytes: int = 256 << 20
    #: Recipe/resolution cache TTL in seconds; 0 revalidates on every
    #: resolve (the strongest overwrite-visibility, the weakest caching).
    recipe_ttl: float = 30.0
    #: Virtual nodes per replica on the consistent-hash ring.
    shard_count: int = 64
    #: The serving replicas the gateway fetches from; empty means "the
    #: deployment's own cloud_specs" (resolved by ``from_config``).
    replicas: tuple[CloudSpec, ...] = ()

    def __post_init__(self) -> None:
        endpoint = _coerce_spec(self.endpoint)
        if not endpoint.is_remote:
            raise ParameterError(
                "gateway endpoint must be a tcp://host:port spec"
            )
        object.__setattr__(self, "endpoint", endpoint)
        if not isinstance(self.cache_bytes, int) or self.cache_bytes < 1:
            raise ParameterError(
                f"gateway cache_bytes must be a positive integer, "
                f"got {self.cache_bytes!r}"
            )
        if (
            not isinstance(self.recipe_ttl, (int, float))
            or isinstance(self.recipe_ttl, bool)
            or self.recipe_ttl < 0
        ):
            raise ParameterError(
                f"gateway recipe_ttl must be >= 0 seconds, "
                f"got {self.recipe_ttl!r}"
            )
        object.__setattr__(self, "recipe_ttl", float(self.recipe_ttl))
        if not isinstance(self.shard_count, int) or self.shard_count < 1:
            raise ParameterError(
                f"gateway shard_count must be a positive integer, "
                f"got {self.shard_count!r}"
            )
        object.__setattr__(
            self, "replicas", tuple(_coerce_spec(s) for s in self.replicas)
        )

    @classmethod
    def from_mapping(cls, raw: dict) -> "GatewaySpec":
        if not isinstance(raw, dict):
            raise ParameterError(
                f"gateway config must be a JSON object, got {type(raw).__name__}"
            )
        known = {"endpoint", "cache_bytes", "recipe_ttl", "shard_count", "replicas"}
        unknown = set(raw) - known
        if unknown:
            raise ParameterError(
                f"unknown gateway config keys: {', '.join(sorted(unknown))}"
            )
        if "endpoint" not in raw:
            raise ParameterError("gateway config needs an 'endpoint' key")
        kwargs = dict(raw)
        kwargs["replicas"] = tuple(kwargs.get("replicas") or ())
        return cls(**kwargs)

    def to_mapping(self) -> dict:
        return {
            "endpoint": str(self.endpoint),
            "cache_bytes": self.cache_bytes,
            "recipe_ttl": self.recipe_ttl,
            "shard_count": self.shard_count,
            "replicas": [str(spec) for spec in self.replicas],
        }


@dataclass(frozen=True)
class ObsSpec:
    """The deployment's observability shape (:mod:`repro.obs`).

    One spec configures every layer the same way — client entry-point
    spans, the front-ends' dispatcher tracing, the slow-request log.
    The metrics registry itself has no per-deployment state; these knobs
    govern the *tracing* side and the structured breadcrumbs.
    """

    #: Master switch: ``False`` disables metric recording and tracing.
    enabled: bool = True
    #: Offer/accept the wire v2 trace extension and record spans.
    trace: bool = True
    #: Spans at or above this many seconds emit a structured
    #: ``slow_request`` event; ``None``/``0`` disables the log.
    slow_request_seconds: float | None = 1.0
    #: Finished spans each component's ring buffer retains.
    span_ring_size: int = 256

    def __post_init__(self) -> None:
        if not isinstance(self.enabled, bool):
            raise ParameterError(
                f"obs enabled must be a boolean, got {self.enabled!r}"
            )
        if not isinstance(self.trace, bool):
            raise ParameterError(
                f"obs trace must be a boolean, got {self.trace!r}"
            )
        threshold = self.slow_request_seconds
        if threshold is not None:
            if (
                not isinstance(threshold, (int, float))
                or isinstance(threshold, bool)
                or threshold < 0
            ):
                raise ParameterError(
                    f"obs slow_request_seconds must be >= 0 or null, "
                    f"got {threshold!r}"
                )
            # 0 and null both mean "no slow-request log", normalised to
            # one spelling so configs round-trip canonically.
            threshold = float(threshold) or None
        object.__setattr__(self, "slow_request_seconds", threshold)
        if not isinstance(self.span_ring_size, int) or self.span_ring_size < 1:
            raise ParameterError(
                f"obs span_ring_size must be a positive integer, "
                f"got {self.span_ring_size!r}"
            )

    @classmethod
    def from_mapping(cls, raw: dict) -> "ObsSpec":
        if not isinstance(raw, dict):
            raise ParameterError(
                f"obs config must be a JSON object, got {type(raw).__name__}"
            )
        known = {"enabled", "trace", "slow_request_seconds", "span_ring_size"}
        unknown = set(raw) - known
        if unknown:
            raise ParameterError(
                f"unknown obs config keys: {', '.join(sorted(unknown))}"
            )
        return cls(**raw)

    def to_mapping(self) -> dict:
        return {
            "enabled": self.enabled,
            "trace": self.trace,
            "slow_request_seconds": self.slow_request_seconds,
            "span_ring_size": self.span_ring_size,
        }


@dataclass(frozen=True)
class ReproConfig:
    """Every deployment-wide setting, validated once.

    Parameters mirror what ``repro init`` persists plus the client-side
    defaults :class:`~repro.system.cdstore.CDStoreSystem` used to take as
    loose keyword arguments.  ``cloud_specs`` defaults to ``n`` local
    clouds; pass :class:`CloudSpec` objects or spec strings.
    """

    n: int = 4
    k: int = 3
    salt: str = ""
    chunker: str = "rabin"
    cloud_specs: tuple[CloudSpec, ...] = ()
    scheme: str = "caont-rs"
    threads: int = 1
    workers: str = "thread"
    pipeline_depth: int | str = 1
    #: Multiplex remote-cloud connections: advertise wire v2 so one
    #: socket per cloud carries concurrent request windows (falls back to
    #: serial framing against v1 servers).  ``False`` pins every proxy to
    #: the one-request-in-flight v1 protocol.
    mux: bool = True
    #: Optional read gateway (:class:`GatewaySpec` or its mapping form);
    #: ``None`` means clients restore directly from the cloud quorum.
    gateway: GatewaySpec | None = None
    #: Observability shape (:class:`ObsSpec` or its mapping form); the
    #: default traces everything with a 1 s slow-request threshold.
    obs: ObsSpec = ObsSpec()

    def __post_init__(self) -> None:
        if not isinstance(self.n, int) or self.n < 1:
            raise ParameterError(f"n must be a positive integer, got {self.n!r}")
        if not isinstance(self.k, int) or not 0 < self.k <= self.n:
            raise ParameterError(
                f"require 0 < k <= n, got (n={self.n}, k={self.k})"
            )
        specs = tuple(_coerce_spec(s) for s in self.cloud_specs)
        if not specs:
            specs = tuple(CloudSpec.local() for _ in range(self.n))
        if len(specs) != self.n:
            raise ParameterError(
                f"got {len(specs)} cloud specs for n={self.n} "
                "(one per cloud, 'local' or 'tcp://host:port')"
            )
        object.__setattr__(self, "cloud_specs", specs)
        if self.workers not in ("thread", "process"):
            raise ParameterError(
                f"workers must be 'thread' or 'process', got {self.workers!r}"
            )
        if not isinstance(self.threads, int) or self.threads < 1:
            raise ParameterError(
                f"threads must be a positive integer, got {self.threads!r}"
            )
        if isinstance(self.pipeline_depth, str):
            if self.pipeline_depth != "auto":
                raise ParameterError(
                    f"pipeline_depth must be a positive integer or 'auto', "
                    f"got {self.pipeline_depth!r}"
                )
        elif not isinstance(self.pipeline_depth, int) or self.pipeline_depth < 1:
            raise ParameterError(
                f"pipeline_depth must be a positive integer or 'auto', "
                f"got {self.pipeline_depth!r}"
            )
        if not isinstance(self.mux, bool):
            raise ParameterError(f"mux must be a boolean, got {self.mux!r}")
        if self.gateway is not None and not isinstance(self.gateway, GatewaySpec):
            object.__setattr__(
                self, "gateway", GatewaySpec.from_mapping(self.gateway)
            )
        if not isinstance(self.obs, ObsSpec):
            object.__setattr__(self, "obs", ObsSpec.from_mapping(self.obs))

    # ------------------------------------------------------------------
    @property
    def salt_bytes(self) -> bytes:
        return self.salt.encode("utf-8")

    @property
    def remote_count(self) -> int:
        return sum(1 for spec in self.cloud_specs if spec.is_remote)

    def with_overrides(self, **kwargs) -> "ReproConfig":
        """A copy with some fields replaced (re-validated)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # persistence (cdstore.json)
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, raw: dict) -> "ReproConfig":
        """Build from a parsed ``cdstore.json`` dict.

        Accepts both the current schema and pre-config-object files
        (which lack ``scheme``/``threads``/… keys) — the compatibility
        shim that lets deployments initialised by earlier releases keep
        working unchanged.
        """
        if not isinstance(raw, dict):
            raise ParameterError(
                f"config must be a JSON object, got {type(raw).__name__}"
            )
        known = {
            "n", "k", "salt", "chunker", "cloud_specs", "scheme",
            "threads", "workers", "pipeline_depth", "mux", "gateway", "obs",
        }
        unknown = set(raw) - known
        if unknown:
            raise ParameterError(
                f"unknown config keys: {', '.join(sorted(unknown))}"
            )
        kwargs = {key: raw[key] for key in known & set(raw)}
        if kwargs.get("cloud_specs") is None:
            kwargs.pop("cloud_specs", None)
        if kwargs.get("gateway") is None:
            kwargs.pop("gateway", None)
        if kwargs.get("obs") is None:
            kwargs.pop("obs", None)
        return cls(**kwargs)

    def to_mapping(self) -> dict:
        return {
            "n": self.n,
            "k": self.k,
            "salt": self.salt,
            "chunker": self.chunker,
            "cloud_specs": [str(spec) for spec in self.cloud_specs],
            "scheme": self.scheme,
            "threads": self.threads,
            "workers": self.workers,
            "pipeline_depth": self.pipeline_depth,
            "mux": self.mux,
            "gateway": (
                self.gateway.to_mapping() if self.gateway is not None else None
            ),
            "obs": self.obs.to_mapping(),
        }

    @classmethod
    def from_file(cls, path: str | Path) -> "ReproConfig":
        path = Path(path)
        if path.is_dir():
            path = path / CONFIG_FILE_NAME
        if not path.exists():
            raise ReproError(
                f"{path.parent} is not a CDStore deployment (run `repro init` first)"
            )
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ParameterError(f"config {path} is not JSON: {exc}") from exc
        try:
            return cls.from_mapping(raw)
        except ParameterError as exc:
            raise ParameterError(f"config {path}: {exc}") from exc

    def to_file(self, path: str | Path) -> None:
        path = Path(path)
        if path.is_dir():
            path = path / CONFIG_FILE_NAME
        path.write_text(
            json.dumps(self.to_mapping(), indent=2) + "\n", encoding="utf-8"
        )
