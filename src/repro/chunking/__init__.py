"""Chunking substrate (§4.2): a registry of selectable chunkers.

A CDStore client splits each backup file into *secrets* (chunks) before
convergent dispersal.  Variable-size chunking — content-defined boundaries
from a rolling fingerprint — is the default because it is robust to
content shifting; the paper configures average/min/max chunk sizes of
8 KB / 2 KB / 16 KB over a Rabin fingerprint [49].

Three chunkers are registered (see :mod:`repro.chunking.registry` for the
``name:key=value,...`` spec-string grammar used by the CLI and benchmarks):

* ``rabin`` — the paper's Rabin-fingerprint chunker (default);
* ``gear`` — FastCDC-style gear chunker: the same boundary robustness at
  several times the ingest throughput (normalized masks, min-size
  cut-point skipping, two-level vectorised kernel);
* ``fixed`` — fixed-size chunks (§4.2's simpler alternative, used by the
  VM dataset).
"""

from repro.chunking.base import Chunk, Chunker
from repro.chunking.fixed import FixedChunker
from repro.chunking.gear import GEAR_WINDOW, GearChunker
from repro.chunking.rabin import RabinChunker
from repro.chunking.registry import (
    DEFAULT_CHUNKER,
    ChunkerSpec,
    chunker_names,
    create_chunker,
    register_chunker,
)

__all__ = [
    "Chunk",
    "Chunker",
    "ChunkerSpec",
    "DEFAULT_CHUNKER",
    "FixedChunker",
    "GEAR_WINDOW",
    "GearChunker",
    "RabinChunker",
    "chunker_names",
    "create_chunker",
    "register_chunker",
]
