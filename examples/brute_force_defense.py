#!/usr/bin/env python3
"""Brute-force defence: server-aided keys (DupLESS-style) vs plain hashes.

Convergent encryption's known weakness (§3.2 remarks): when secrets come
from a *small* message space — "salary_2015_<name>.xlsx" style — an
attacker who compromises the clouds can hash every candidate and compare
against stored shares.  The paper's suggested mitigation is a key server
that derives keys with a secret, under a rate limit [9].

This example runs the attack both ways:

1. against plain CAONT-RS: a dictionary attack over the stored shares
   confirms the victim's secret offline at memory speed;
2. against server-aided CAONT-RS: every guess costs a key-server round
   trip, the rate limit cuts the attacker off, and offline guessing is
   impossible without the server's RSA private key.

Run:  python examples/brute_force_defense.py
"""

from __future__ import annotations

from repro import CAONTRS
from repro.crypto.drbg import DRBG
from repro.keyserver import (
    KeyClient,
    KeyServer,
    RateLimitError,
    ServerAidedCAONTRS,
    generate_keypair,
)


class FrozenClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def low_entropy_secrets() -> list[bytes]:
    """The candidate space the attacker enumerates (tiny, on purpose)."""
    return [f"salary_2015_employee_{i:03d}.xlsx".encode() * 20 for i in range(500)]


def attack_plain_caont_rs() -> None:
    print("=== plain CAONT-RS: offline dictionary attack ===")
    codec = CAONTRS(n=4, k=3, salt=b"org")  # the attacker knows the salt
    victim_secret = low_entropy_secrets()[137]
    stored_share = codec.split(victim_secret).shares[0]  # leaked from cloud 0

    guesses = 0
    for candidate in low_entropy_secrets():
        guesses += 1
        if codec.split(candidate).shares[0] == stored_share:
            print(f"attacker confirmed the secret after {guesses} offline "
                  f"guesses — no server contact, no rate limit")
            return
    raise AssertionError("attack unexpectedly failed")


def attack_server_aided() -> None:
    print("\n=== server-aided CAONT-RS: online-only, rate-limited ===")
    clock = FrozenClock()
    keypair = generate_keypair(1024, rng=DRBG("demo-rsa"))
    server = KeyServer(keypair=keypair, rate_per_second=0.5, burst=25, clock=clock)

    org_client = KeyClient("org", server, salt=b"org", rng=DRBG("org"))
    codec = ServerAidedCAONTRS(4, 3, key_client=org_client)
    victim_secret = low_entropy_secrets()[137]
    stored_share = codec.split(victim_secret).shares[0]

    # The attacker must derive each candidate's key *through the server*.
    attacker = KeyClient("attacker", server, salt=b"org", rng=DRBG("atk"))
    attacker_codec = ServerAidedCAONTRS(4, 3, key_client=attacker)
    confirmed = False
    throttled_at = None
    for i, candidate in enumerate(low_entropy_secrets()):
        try:
            if attacker_codec.split(candidate).shares[0] == stored_share:
                confirmed = True
                break
        except RateLimitError:
            throttled_at = i
            break
    assert not confirmed
    print(f"attacker throttled after {throttled_at} guesses "
          f"(burst budget); remaining {500 - throttled_at} candidates "
          f"would take {(500 - throttled_at) / server.rate / 3600:.1f} hours "
          f"at the server's rate limit")

    # Legitimate use is unaffected: dedup still converges across clients,
    # and restores never touch the key server.
    other = ServerAidedCAONTRS(
        4, 3, KeyClient("bob", server, salt=b"org", rng=DRBG("bob"))
    )
    shares = other.split(b"normal backup chunk" * 50)
    assert shares.shares == codec.split(b"normal backup chunk" * 50).shares
    print("legitimate clients still deduplicate and restore normally")


if __name__ == "__main__":
    attack_plain_caont_rs()
    attack_server_aided()
