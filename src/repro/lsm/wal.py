"""Write-ahead log for LSM durability.

Every mutation is appended (length-prefixed, CRC-protected) before touching
the memtable, so an interrupted process replays the tail on reopen.  A
truncated or corrupt tail record — the normal crash signature — is detected
by its CRC and dropped, matching LevelDB's recovery semantics.

Record format (all big-endian)::

    u32 crc32 | u32 length | payload
    payload := u8 op | u32 keylen | key | value   (op: 1=put, 2=delete)
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator

from repro.errors import StorageError

__all__ = ["WriteAheadLog", "OP_PUT", "OP_DELETE"]

OP_PUT = 1
OP_DELETE = 2

_HEADER = struct.Struct(">II")


class WriteAheadLog:
    """Append-only redo log with CRC-framed records."""

    def __init__(self, path: str | Path, sync_every_append: bool = False) -> None:
        self.path = Path(path)
        #: fsync after every append (safest, slowest).  The crash-only
        #: server leaves this off and group-commits with :meth:`sync`.
        self.sync_every_append = sync_every_append
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Long-lived handle owned by the WAL object, closed in close().
        self._fh = open(self.path, "ab")  # noqa: SIM115

    # ------------------------------------------------------------------
    def append_put(self, key: bytes, value: bytes) -> None:
        """Log a put before it is applied to the memtable."""
        self._append(OP_PUT, key, value)

    def append_delete(self, key: bytes) -> None:
        """Log a delete before it is applied to the memtable."""
        self._append(OP_DELETE, key, b"")

    def _append(self, op: int, key: bytes, value: bytes) -> None:
        if self._fh.closed:
            raise StorageError("WAL is closed")
        payload = struct.pack(">BI", op, len(key)) + key + value
        record = _HEADER.pack(zlib.crc32(payload), len(payload)) + payload
        self._fh.write(record)
        self._fh.flush()
        if self.sync_every_append:
            os.fsync(self._fh.fileno())

    def sync(self) -> None:
        """Force every appended record to stable storage (group commit).

        Lets a caller run without per-append fsyncs and still ack
        batches durably: one fsync covers the whole batch.
        """
        if self._fh.closed:
            raise StorageError("WAL is closed")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # ------------------------------------------------------------------
    def replay(self) -> Iterator[tuple[int, bytes, bytes]]:
        """Yield ``(op, key, value)`` for every intact record.

        Stops silently at the first corrupt/truncated record (crash tail).
        """
        if not self.path.exists():
            return
        with open(self.path, "rb") as fh:
            while True:
                header = fh.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return
                crc, length = _HEADER.unpack(header)
                payload = fh.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    return  # torn tail: discard the rest
                op, keylen = struct.unpack(">BI", payload[:5])
                key = payload[5 : 5 + keylen]
                value = payload[5 + keylen :]
                yield op, key, value

    def reset(self) -> None:
        """Truncate the log (called after a successful memtable flush)."""
        self._fh.close()
        self._fh = open(self.path, "wb")  # noqa: SIM115 -- long-lived, closed in close()
        self._fh.flush()
        if self.sync_every_append:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
