"""Typed deployment config: CloudSpec parsing, ReproConfig validation,
persistence round-trips and the pre-config-object schema shim."""

from __future__ import annotations

import json

import pytest

from repro.config import CONFIG_FILE_NAME, CloudSpec, ReproConfig
from repro.errors import ParameterError, ReproError


# ---------------------------------------------------------------------------
# CloudSpec


def test_parse_local():
    spec = CloudSpec.parse("local")
    assert not spec.is_remote
    assert str(spec) == "local"


def test_parse_tcp():
    spec = CloudSpec.parse("tcp://backup.example:7000")
    assert spec.is_remote
    assert spec.address == ("backup.example", 7000)
    assert str(spec) == "tcp://backup.example:7000"


def test_parse_roundtrips_through_str():
    for text in ("local", "tcp://127.0.0.1:9999", "tcp://host:1"):
        assert str(CloudSpec.parse(text)) == text


@pytest.mark.parametrize(
    "bad",
    [
        "http://host:1",  # wrong scheme
        "tcp://",  # no host, no port
        "tcp://host",  # no port
        "tcp://:7000",  # no host
        "tcp://host:port",  # non-numeric port
        "tcp://host:0",  # port out of range
        "tcp://host:65536",
        "LOCAL",  # specs are case-sensitive
        "",
    ],
)
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ParameterError):
        CloudSpec.parse(bad)


def test_parse_rejects_non_strings():
    with pytest.raises(ParameterError):
        CloudSpec.parse(7000)  # type: ignore[arg-type]


def test_local_spec_has_no_address():
    with pytest.raises(ParameterError):
        CloudSpec.local().address


def test_constructor_validates_fields():
    with pytest.raises(ParameterError):
        CloudSpec(kind="local", host="leftover")
    with pytest.raises(ParameterError):
        CloudSpec(kind="tcp", host="h")  # port missing
    with pytest.raises(ParameterError):
        CloudSpec(kind="ftp", host="h", port=21)


def test_ipv6_style_host_uses_last_colon():
    # rpartition(":") keeps everything before the final colon as the host.
    spec = CloudSpec.parse("tcp://::1:7000")
    assert spec.address == ("::1", 7000)


# ---------------------------------------------------------------------------
# ReproConfig validation


def test_defaults_expand_to_n_local_clouds():
    config = ReproConfig()
    assert len(config.cloud_specs) == config.n == 4
    assert all(not spec.is_remote for spec in config.cloud_specs)
    assert config.remote_count == 0


def test_spec_strings_are_coerced():
    config = ReproConfig(n=2, k=1, cloud_specs=["local", "tcp://h:7000"])
    assert config.cloud_specs[0] == CloudSpec.local()
    assert config.cloud_specs[1] == CloudSpec.tcp("h", 7000)
    assert config.remote_count == 1


def test_spec_count_must_match_n():
    with pytest.raises(ParameterError, match="cloud specs for n="):
        ReproConfig(n=4, k=3, cloud_specs=["local", "local"])


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n": 0},
        {"n": 2, "k": 0},
        {"n": 2, "k": 3},  # k > n
        {"workers": "fiber"},
        {"threads": 0},
        {"pipeline_depth": 0},
        {"pipeline_depth": "turbo"},
    ],
)
def test_bad_parameters_are_rejected(kwargs):
    with pytest.raises(ParameterError):
        ReproConfig(**kwargs)


def test_pipeline_depth_auto_is_allowed():
    assert ReproConfig(pipeline_depth="auto").pipeline_depth == "auto"


def test_salt_bytes():
    assert ReproConfig(salt="pepper").salt_bytes == b"pepper"


def test_with_overrides_revalidates():
    config = ReproConfig(n=4, k=3)
    assert config.with_overrides(threads=8).threads == 8
    with pytest.raises(ParameterError):
        config.with_overrides(k=9)


# ---------------------------------------------------------------------------
# Persistence


def test_mapping_roundtrip():
    config = ReproConfig(
        n=2,
        k=1,
        salt="s",
        chunker="fixed",
        cloud_specs=["tcp://a:1", "local"],
        threads=3,
        workers="process",
        pipeline_depth="auto",
    )
    assert ReproConfig.from_mapping(config.to_mapping()) == config


def test_file_roundtrip_accepts_directory(tmp_path):
    config = ReproConfig(n=2, k=1, salt="x")
    config.to_file(tmp_path)  # directory -> <dir>/cdstore.json
    assert (tmp_path / CONFIG_FILE_NAME).is_file()
    assert ReproConfig.from_file(tmp_path) == config


def test_missing_config_names_repro_init(tmp_path):
    with pytest.raises(ReproError, match="repro init"):
        ReproConfig.from_file(tmp_path)


def test_corrupt_config_is_a_parameter_error(tmp_path):
    (tmp_path / CONFIG_FILE_NAME).write_text("{not json")
    with pytest.raises(ParameterError, match="not JSON"):
        ReproConfig.from_file(tmp_path)


def test_unknown_keys_are_rejected_with_names(tmp_path):
    (tmp_path / CONFIG_FILE_NAME).write_text(
        json.dumps({"n": 2, "k": 1, "saltt": "typo"})
    )
    with pytest.raises(ParameterError, match="saltt"):
        ReproConfig.from_file(tmp_path)


def test_pre_config_object_schema_still_loads(tmp_path):
    # Files written before ReproConfig existed carried only these keys.
    (tmp_path / CONFIG_FILE_NAME).write_text(
        json.dumps({"n": 4, "k": 3, "salt": "old", "chunker": "rabin"})
    )
    config = ReproConfig.from_file(tmp_path)
    assert (config.n, config.k, config.salt) == (4, 3, "old")
    assert config.scheme == "caont-rs"  # defaults fill the gaps
    assert len(config.cloud_specs) == 4


# ---------------------------------------------------------------------------
# The deprecated net-client shim is gone; CloudSpec.parse is the one parser


def test_parse_cloud_spec_shim_removed():
    import repro.net
    import repro.net.client

    assert not hasattr(repro.net, "parse_cloud_spec")
    assert not hasattr(repro.net.client, "parse_cloud_spec")
    assert CloudSpec.parse("tcp://h:7000").address == ("h", 7000)
