"""Composed compression pipeline and recipe-compression helpers.

Format: 1 method byte | method-specific body.

* method 0 — stored (incompressible input; the pipeline never expands
  data by more than one byte);
* method 1 — LZSS only;
* method 2 — LZSS then Huffman.

:func:`compress_recipe` / :func:`decompress_recipe` wrap the pipeline for
file recipes, the metadata the paper highlights as compressible [41]:
recipes are runs of 36-byte entries whose fingerprints repeat across
versions, which LZSS folds into back-references.
"""

from __future__ import annotations

from repro.compress.huffman import huffman_decode, huffman_encode
from repro.compress.lzss import lzss_compress, lzss_decompress
from repro.errors import ParameterError

__all__ = ["compress", "decompress", "compress_recipe", "decompress_recipe"]

METHOD_STORED = 0
METHOD_LZSS = 1
METHOD_LZSS_HUFFMAN = 2


def compress(data: bytes, method: str = "auto") -> bytes:
    """Compress ``data``; picks the smallest representation under 'auto'."""
    if method not in ("auto", "stored", "lzss", "lzss+huffman"):
        raise ParameterError(f"unknown compression method {method!r}")
    candidates: list[tuple[int, bytes]] = [(METHOD_STORED, data)]
    if method in ("auto", "lzss", "lzss+huffman"):
        lz = lzss_compress(data)
        if method != "lzss+huffman":
            candidates.append((METHOD_LZSS, lz))
        if method in ("auto", "lzss+huffman"):
            candidates.append((METHOD_LZSS_HUFFMAN, huffman_encode(lz)))
    if method == "stored":
        candidates = [(METHOD_STORED, data)]
    elif method == "lzss":
        candidates = [c for c in candidates if c[0] in (METHOD_STORED, METHOD_LZSS)]
    best_method, best_body = min(candidates, key=lambda c: len(c[1]))
    return bytes([best_method]) + best_body


def decompress(blob: bytes) -> bytes:
    """Invert :func:`compress`."""
    if not blob:
        raise ParameterError("empty compressed blob")
    method, body = blob[0], blob[1:]
    if method == METHOD_STORED:
        return body
    if method == METHOD_LZSS:
        return lzss_decompress(body)
    if method == METHOD_LZSS_HUFFMAN:
        return lzss_decompress(huffman_decode(body))
    raise ParameterError(f"unknown compression method byte {method}")


_RECIPE_MAGIC = b"RCPZ"


def compress_recipe(recipe_blob: bytes) -> bytes:
    """Compress a file-recipe blob (magic-framed so readers can detect it)."""
    return _RECIPE_MAGIC + compress(recipe_blob)


def decompress_recipe(blob: bytes) -> bytes:
    """Transparently decompress a recipe blob (pass through legacy blobs)."""
    if blob.startswith(_RECIPE_MAGIC):
        return decompress(blob[len(_RECIPE_MAGIC):])
    return blob
