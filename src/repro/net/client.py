"""Remote server proxies: the client side of the networked serving layer.

A :class:`RemoteServerProxy` duck-types the :class:`~repro.server.server.
CDStoreServer` surface the comm engine, :class:`~repro.client.client.
CDStoreClient` and :class:`~repro.system.cdstore.CDStoreSystem` already
consume — same methods, same typed exceptions — so every higher layer
(per-cloud workers, streaming windows, window-granular spare failover,
repair walks) runs unchanged whether a "server" is an object or an
address.

Connection discipline:

* **one socket, lazily connected, re-established on the next call after
  any failure** — the proxy never retries a failed request itself.  A
  request that dies mid-flight surfaces as
  :class:`~repro.errors.CloudUnavailableError`, which is exactly the
  ``FETCH_ERRORS`` class the comm engine's per-window failover and the
  client's §3.2 widening already handle; retrying inside the transport
  would re-execute non-idempotent operations (``finalize_file``) behind
  the failover logic's back.
* **typed errors pass through**: an :data:`~repro.net.wire.R_ERROR` frame
  re-raises the server's exception class locally and leaves the
  connection usable (the server answered; nothing is desynchronised).
* the proxy is **thread-safe** with one request in flight at a time —
  matching the comm engine's one-worker-per-cloud ordering guarantee.

The :class:`RemoteCloud` companion stands in for the
:class:`~repro.cloud.provider.CloudProvider` attribute: ``available`` /
``check_available`` probe the server with a PING, and the uplink/downlink
:class:`~repro.cloud.network.Link` models let the simulated clock charge
remote clouds exactly like local ones.
"""

from __future__ import annotations

import os
import socket
import threading
import warnings

from repro.analysis.annotations import guarded_by, requires_lock
from repro.cloud.network import Link
from repro.config import CloudSpec
from repro.dedup.stats import DedupStats
from repro.errors import (
    AuthError,
    CloudUnavailableError,
    ParameterError,
    ProtocolError,
)
from repro.net import wire
from repro.net.server import recv_exact
from repro.server.index import FileEntry
from repro.server.messages import FileManifest, RecipeEntry, ShareMeta, ShareUpload
from repro.tenants import Credentials, auth_proof

__all__ = ["RemoteCloud", "RemoteServerProxy", "parse_cloud_spec"]


def parse_cloud_spec(spec: str) -> tuple[str, int]:
    """Deprecated: parse ``tcp://host:port`` into ``(host, port)``.

    Kept for one release as a shim over the canonical parser,
    :meth:`repro.config.CloudSpec.parse` — call that instead (it also
    understands ``"local"`` and returns a typed spec).
    """
    warnings.warn(
        "parse_cloud_spec() is deprecated; use repro.config.CloudSpec.parse()",
        DeprecationWarning,
        stacklevel=2,
    )
    if not isinstance(spec, str) or not spec.startswith("tcp://"):
        # CloudSpec.parse accepts "local", which this shim never did.
        raise ParameterError(
            f"cloud spec must look like tcp://host:port, got {spec!r}"
        )
    return CloudSpec.parse(spec).address


class RemoteCloud:
    """Client-side view of a remote cloud: availability probe + links."""

    def __init__(self, proxy: "RemoteServerProxy", uplink: Link, downlink: Link) -> None:
        self._proxy = proxy
        self.uplink = uplink
        self.downlink = downlink

    @property
    def name(self) -> str:
        return self._proxy.address_spec

    @property
    def available(self) -> bool:
        """Whether the remote server currently answers a PING."""
        return self._proxy.ping()

    def check_available(self) -> None:
        if not self._proxy.ping():
            raise CloudUnavailableError(
                f"remote cloud {self.name} is unreachable"
            )

    @property
    def stored_bytes(self) -> int:
        return self._proxy.stored_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteCloud({self.name!r})"


class RemoteServerProxy:
    """Drive one remote CDStore server over its binary TCP protocol.

    Parameters
    ----------
    address:
        ``tcp://host:port`` spec or a ``(host, port)`` tuple.
    server_id:
        Expected cloud index.  When given, the PONG handshake must agree
        (catching a mis-wired deployment); when None, the first handshake
        adopts the server's own id.
    uplink, downlink:
        Link models for simulated-clock charging (defaults match the
        in-process 100 MB/s provider defaults).
    timeout:
        Per-socket-operation timeout in seconds; an expiry is treated as
        an outage (the per-window failover path), never a hang.
    credentials:
        Optional :class:`~repro.tenants.Credentials`.  When given, every
        (re)connect runs the challenge-response handshake right after the
        PING — so a dropped-and-redialled connection is re-authenticated
        before the request that triggered the reconnect is sent.
    """

    #: Lock discipline (``repro analyze``, LOCK-001): connection identity
    #: (the socket and the handshake-learned server id) is only touched
    #: under ``_lock`` — the comm engine drives one proxy from several
    #: threads, and reconnects must never interleave.
    GUARDED_BY = guarded_by(_sock="_lock", _server_id="_lock")

    def __init__(
        self,
        address: str | tuple[str, int],
        server_id: int | None = None,
        uplink: Link | None = None,
        downlink: Link | None = None,
        timeout: float = 30.0,
        max_frame: int = wire.MAX_FRAME_BYTES,
        credentials: Credentials | None = None,
    ) -> None:
        if isinstance(address, str):
            self.host, self.port = CloudSpec.parse(address).address
        else:
            self.host, self.port = address
        self._server_id = server_id
        self.timeout = timeout
        self.max_frame = max_frame
        self.credentials = credentials
        #: Role granted by the last successful auth handshake (None when
        #: unauthenticated / running against an open server).
        self.role: str | None = None
        self._sock: socket.socket | None = None
        self._lock = threading.RLock()
        self.cloud = RemoteCloud(
            self,
            uplink=uplink if uplink is not None else Link(100.0),
            downlink=downlink if downlink is not None else Link(100.0),
        )
        #: Reply-frame observability: total frames seen and the largest
        #: frame (header + payload) this proxy ever received — the
        #: frame-budget tests read these.
        self.frames_received = 0
        self.max_reply_frame_bytes = 0

    # ------------------------------------------------------------------
    # connection state
    # ------------------------------------------------------------------
    @property
    def address_spec(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    @property
    def server_id(self) -> int:
        """The remote server's cloud index (handshakes if never connected)."""
        if self._server_id is None:
            with self._lock:
                self._ensure_connected()
        return self._server_id

    @requires_lock("_lock")
    def _drop(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    @requires_lock("_lock")
    def _ensure_connected(self) -> socket.socket:
        """Connect + handshake if needed; raises CloudUnavailableError."""
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise CloudUnavailableError(
                f"cannot connect to {self.address_spec}: {exc}"
            ) from exc
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:  # pragma: no cover - kernel-dependent
            # The socket is connected but not yet owned by self._sock;
            # close it here or it leaks (checker rule LIFE-001).
            sock.close()
            raise CloudUnavailableError(
                f"cannot configure socket for {self.address_spec}: {exc}"
            ) from exc
        self._sock = sock
        try:
            frame_type, payload = self._roundtrip(
                wire.T_PING, wire.encode_ping()
            )
        except (ConnectionError, socket.timeout, OSError) as exc:
            # A server that accepts then dies before answering the
            # handshake is an outage, not a crash: map it into the same
            # FETCH_ERRORS class every other transport failure uses.
            self._drop()
            raise CloudUnavailableError(
                f"handshake with {self.address_spec} failed: {exc}"
            ) from exc
        except BaseException:
            self._drop()
            raise
        if frame_type != wire.R_PONG:
            self._drop()
            raise ProtocolError(
                f"{self.address_spec} answered PING with frame "
                f"0x{frame_type:02x}"
            )
        version, server_id = wire.decode_pong(payload)
        if version != wire.WIRE_VERSION:
            self._drop()
            raise ProtocolError(
                f"{self.address_spec} speaks wire version {version}, "
                f"client speaks {wire.WIRE_VERSION}"
            )
        if self._server_id is not None and server_id != self._server_id:
            self._drop()
            raise ProtocolError(
                f"{self.address_spec} claims server id {server_id}, "
                f"expected {self._server_id}"
            )
        self._server_id = server_id
        if self.credentials is not None:
            self._authenticate()
        return self._sock

    @requires_lock("_lock")
    def _authenticate(self) -> None:
        """Run the T_AUTH / T_AUTH_PROOF handshake on a fresh connection.

        An :class:`~repro.errors.AuthError` from the server propagates
        as-is (bad credentials are not an outage — failover would just
        fail identically elsewhere); transport failures map to
        :class:`~repro.errors.CloudUnavailableError` like any other.
        """
        creds = self.credentials
        assert creds is not None
        client_nonce = os.urandom(wire.AUTH_NONCE_SIZE)
        try:
            frame_type, payload = self._roundtrip(
                wire.T_AUTH, wire.encode_auth(creds.tenant_id, client_nonce)
            )
            if frame_type == wire.R_ERROR:
                raise wire.decode_error(payload)
            if frame_type != wire.R_AUTH_CHALLENGE:
                raise ProtocolError(
                    f"{self.address_spec} answered AUTH with frame "
                    f"0x{frame_type:02x}"
                )
            server_nonce = wire.decode_auth_challenge(payload)
            proof = auth_proof(
                creds.secret, creds.tenant_id, client_nonce, server_nonce
            )
            frame_type, payload = self._roundtrip(
                wire.T_AUTH_PROOF, wire.encode_auth_proof(proof)
            )
            if frame_type == wire.R_ERROR:
                raise wire.decode_error(payload)
            if frame_type != wire.R_AUTH_OK:
                raise ProtocolError(
                    f"{self.address_spec} answered AUTH_PROOF with frame "
                    f"0x{frame_type:02x}"
                )
            self.role = wire.decode_auth_ok(payload)
        except (ConnectionError, socket.timeout, OSError) as exc:
            self._drop()
            raise CloudUnavailableError(
                f"auth handshake with {self.address_spec} failed: {exc}"
            ) from exc
        except AuthError:
            # The server answered; the connection is in sync but useless
            # without credentials it accepts — drop it so the proxy does
            # not cache a half-authenticated socket.
            self._drop()
            raise
        except BaseException:
            self._drop()
            raise

    def close(self) -> None:
        """Drop the connection (the next call reconnects) — idempotent."""
        with self._lock:
            self._drop()

    def __enter__(self) -> "RemoteServerProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "connected" if self._sock is not None else "idle"
        return f"RemoteServerProxy({self.address_spec!r}, {state})"

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def _roundtrip(self, frame_type: int, payload: bytes) -> tuple[int, bytes]:
        """Send one request frame, read one reply frame (lock held)."""
        sock = self._sock
        assert sock is not None
        sock.sendall(wire.encode_frame(frame_type, payload, self.max_frame))
        return self._read_reply(sock)

    def _read_reply(self, sock: socket.socket) -> tuple[int, bytes]:
        frame_type, payload = wire.read_frame(
            lambda n: recv_exact(sock, n), self.max_frame
        )
        self.frames_received += 1
        self.max_reply_frame_bytes = max(
            self.max_reply_frame_bytes, wire.FRAME_HEADER.size + len(payload)
        )
        return frame_type, payload

    def _call(self, frame_type: int, payload: bytes, expect: int) -> bytes:
        """One request/reply exchange with typed-error and outage mapping."""
        with self._lock:
            self._ensure_connected()
            try:
                reply_type, reply = self._roundtrip(frame_type, payload)
            except (ConnectionError, socket.timeout, OSError) as exc:
                # The connection died mid-request: reconnect on the *next*
                # call; this one reports an outage so failover runs.
                self._drop()
                raise CloudUnavailableError(
                    f"connection to {self.address_spec} dropped: {exc}"
                ) from exc
            if reply_type == wire.R_ERROR:
                raise wire.decode_error(reply)
            if reply_type != expect:
                self._drop()
                raise ProtocolError(
                    f"{self.address_spec} answered 0x{frame_type:02x} with "
                    f"unexpected frame 0x{reply_type:02x}"
                )
            return reply

    def ping(self) -> bool:
        """Cheap liveness probe (connects if needed).

        Transport and protocol failures never raise — they read as "not
        available", the same answer a dead server gives.  Rejected
        credentials DO raise :class:`~repro.errors.AuthError`: the server
        is up and answering, and reporting it as unreachable would send
        the operator debugging the network instead of their secret.
        """
        try:
            with self._lock:
                self._ensure_connected()
                reply_type, payload = self._roundtrip(
                    wire.T_PING, wire.encode_ping()
                )
                if reply_type != wire.R_PONG:
                    self._drop()
                    return False
                wire.decode_pong(payload)
                return True
        except AuthError:
            self._drop()
            raise
        except Exception:
            self._drop()
            return False

    # ------------------------------------------------------------------
    # the CDStoreServer surface
    # ------------------------------------------------------------------
    def query_duplicates(self, user_id: str, fingerprints: list[bytes]) -> list[bool]:
        reply = self._call(
            wire.T_QUERY_DUPLICATES,
            wire.encode_query_duplicates(user_id, fingerprints),
            wire.R_BOOLS,
        )
        known = wire.decode_bools(reply)
        if len(known) != len(fingerprints):
            raise ProtocolError(
                f"{self.address_spec} answered {len(known)} bools for "
                f"{len(fingerprints)} fingerprints"
            )
        return known

    def upload_shares(self, user_id: str, uploads: list[ShareUpload]) -> None:
        self._call(
            wire.T_UPLOAD_SHARES,
            wire.encode_upload_shares(user_id, uploads),
            wire.R_OK,
        )

    def finalize_file(
        self,
        user_id: str,
        manifest: FileManifest,
        share_metas: list[ShareMeta],
    ) -> None:
        self._call(
            wire.T_FINALIZE_FILE,
            wire.encode_finalize_file(user_id, manifest, share_metas),
            wire.R_OK,
        )

    def get_file_entry(self, user_id: str, lookup_key: bytes) -> FileEntry:
        reply = self._call(
            wire.T_GET_FILE_ENTRY,
            wire.encode_user_key(user_id, lookup_key),
            wire.R_FILE_ENTRY,
        )
        return wire.decode_file_entry(reply)

    def get_recipe(
        self, user_id: str, lookup_key: bytes, bypass_cache: bool = False
    ) -> list[RecipeEntry]:
        reply = self._call(
            wire.T_GET_RECIPE,
            wire.encode_get_recipe(user_id, lookup_key, bypass_cache),
            wire.R_RECIPE,
        )
        return wire.decode_recipe(reply)

    def list_files(self, user_id: str) -> list[tuple[bytes, FileEntry]]:
        reply = self._call(
            wire.T_LIST_FILES, wire.encode_user(user_id), wire.R_FILE_LIST
        )
        return wire.decode_file_list(reply)

    def fetch_shares(
        self, fingerprints: list[bytes], owner: str | None = None
    ) -> dict[bytes, bytes]:
        """Reassemble the server's bounded reply-frame stream into a map.

        ``owner`` scoping is enforced *server-side* from the
        authenticated tenant — it never crosses the wire, so passing an
        explicit owner here would silently promise a scope this proxy
        cannot deliver; it is rejected instead.
        """
        self._reject_local_owner(owner)
        with self._lock:
            self._ensure_connected()
            sock = self._sock
            try:
                sock.sendall(
                    wire.encode_frame(
                        wire.T_FETCH_SHARES,
                        wire.encode_fetch_shares(fingerprints),
                        self.max_frame,
                    )
                )
                out: dict[bytes, bytes] = {}
                while True:
                    reply_type, payload = self._read_reply(sock)
                    if reply_type == wire.R_SHARE_BATCH:
                        try:
                            out.update(wire.decode_share_batch(payload))
                        except ProtocolError:
                            # A malformed frame mid-stream desynchronises
                            # the connection (later batches are still
                            # buffered); drop it so the next request does
                            # not read them as its reply.
                            self._drop()
                            raise
                        continue
                    if reply_type == wire.R_SHARES_END:
                        try:
                            total = wire.decode_shares_end(payload)
                        except ProtocolError:
                            self._drop()
                            raise
                        if total != len(out):
                            self._drop()
                            raise ProtocolError(
                                f"{self.address_spec} streamed {len(out)} "
                                f"shares but announced {total}"
                            )
                        return out
                    if reply_type == wire.R_ERROR:
                        # In-band typed error: the server answered, the
                        # stream is in sync, the connection stays usable.
                        raise wire.decode_error(payload)
                    self._drop()
                    raise ProtocolError(
                        f"{self.address_spec} sent unexpected frame "
                        f"0x{reply_type:02x} inside a share stream"
                    )
            except (ConnectionError, socket.timeout, OSError) as exc:
                self._drop()
                raise CloudUnavailableError(
                    f"connection to {self.address_spec} dropped mid-fetch: {exc}"
                ) from exc

    @staticmethod
    def _reject_local_owner(owner: str | None) -> None:
        if owner is not None:
            raise ParameterError(
                "owner scoping on remote fetches is derived from the "
                "authenticated tenant server-side; do not pass owner= to a "
                "RemoteServerProxy"
            )

    def iter_share_batches(
        self,
        fingerprints: list[bytes],
        budget_bytes: int | None = None,
        cost=None,
        owner: str | None = None,
    ):
        """Stream the server's bounded share batches, one list per frame.

        Protocol parity with
        :meth:`~repro.server.server.CDStoreServer.iter_share_batches`,
        with the batching decided *server-side*: the serving process
        prices shares against its own frame budget, so ``budget_bytes``
        and ``cost`` are rejected here rather than silently ignored.

        The connection lock is held across yields (one request in flight
        at a time); abandon the generator and it drops the connection,
        since unread batches would desynchronise the next request.
        """
        if budget_bytes is not None or cost is not None:
            raise ParameterError(
                "remote share-batch sizing is fixed by the server's frame "
                "budget; budget_bytes/cost cannot be set through a proxy"
            )
        self._reject_local_owner(owner)
        with self._lock:
            self._ensure_connected()
            sock = self._sock
            finished = False
            try:
                sock.sendall(
                    wire.encode_frame(
                        wire.T_FETCH_SHARES,
                        wire.encode_fetch_shares(fingerprints),
                        self.max_frame,
                    )
                )
                streamed = 0
                while True:
                    reply_type, payload = self._read_reply(sock)
                    if reply_type == wire.R_SHARE_BATCH:
                        batch = wire.decode_share_batch(payload)
                        streamed += len(batch)
                        yield batch
                        continue
                    if reply_type == wire.R_SHARES_END:
                        total = wire.decode_shares_end(payload)
                        if total != streamed:
                            raise ProtocolError(
                                f"{self.address_spec} streamed {streamed} "
                                f"shares but announced {total}"
                            )
                        finished = True
                        return
                    if reply_type == wire.R_ERROR:
                        finished = True  # in sync: the server answered
                        raise wire.decode_error(payload)
                    raise ProtocolError(
                        f"{self.address_spec} sent unexpected frame "
                        f"0x{reply_type:02x} inside a share stream"
                    )
            except (ConnectionError, socket.timeout, OSError) as exc:
                finished = True
                self._drop()
                raise CloudUnavailableError(
                    f"connection to {self.address_spec} dropped mid-fetch: {exc}"
                ) from exc
            finally:
                # Early abandonment (GeneratorExit) or a mid-stream decode
                # error leaves reply frames buffered on the socket; drop it
                # so the next request cannot read them as its own reply.
                if not finished:
                    self._drop()

    def delete_file(self, user_id: str, lookup_key: bytes) -> int:
        reply = self._call(
            wire.T_DELETE_FILE,
            wire.encode_user_key(user_id, lookup_key),
            wire.R_INT,
        )
        return wire.decode_int(reply)

    def collect_garbage(self) -> int:
        return wire.decode_int(self._call(wire.T_COLLECT_GARBAGE, b"", wire.R_INT))

    def scrub(self) -> list[bytes]:
        return wire.decode_fp_list(self._call(wire.T_SCRUB, b"", wire.R_FP_LIST))

    def flush(self) -> None:
        self._call(wire.T_FLUSH, b"", wire.R_OK)

    def replace_share(self, server_fp: bytes, data: bytes) -> None:
        self._call(
            wire.T_REPLACE_SHARE,
            wire.encode_replace_share(server_fp, data),
            wire.R_OK,
        )

    def rebuild_recipe(
        self, user_id: str, lookup_key: bytes, entries: list[RecipeEntry]
    ) -> None:
        self._call(
            wire.T_REBUILD_RECIPE,
            wire.encode_rebuild_recipe(user_id, lookup_key, entries),
            wire.R_OK,
        )

    def list_backups(self) -> list[tuple[str, bytes]]:
        return wire.decode_backup_list(
            self._call(wire.T_LIST_BACKUPS, b"", wire.R_BACKUP_LIST)
        )

    @property
    def stats(self) -> DedupStats:
        """The remote server's dedup counters (one RPC per access)."""
        return wire.decode_stats(self._call(wire.T_STATS, b"", wire.R_STATS))

    @property
    def stored_bytes(self) -> int:
        return wire.decode_int(self._call(wire.T_STORED_BYTES, b"", wire.R_INT))
