"""Figure 6(b) — cumulative data and share sizes under two-stage dedup.

Paper: after 16 weekly backups the physical shares are ~6.3 % of logical
data for FSL and ~0.8 % for VM — the (n/k = 4/3) dispersal redundancy is
more than offset by deduplication.  The four series are logical data,
logical shares, transferred shares and physical shares.
"""

from conftest import emit

from repro.bench.dedup import simulate_two_stage
from repro.bench.reporting import format_table
from repro.workloads import FSLWorkload, VMWorkload


def _table(rows, title):
    return format_table(
        ["week", "logical MB", "logical shares MB", "transferred MB", "physical MB"],
        [
            [
                r.week,
                r.cumulative_logical_data / 1e6,
                r.cumulative_logical_shares / 1e6,
                r.cumulative_transferred_shares / 1e6,
                r.cumulative_physical_shares / 1e6,
            ]
            for r in rows
        ],
        title=title,
    )


def test_fig6b_fsl(benchmark):
    rows = benchmark.pedantic(
        simulate_two_stage, args=(FSLWorkload(chunks_per_user=800),), rounds=1, iterations=1
    )
    emit("fig6b_fsl", _table(rows, "Figure 6(b) FSL: cumulative sizes"))

    final = rows[-1]
    # Ordering of the four series (every week).
    for r in rows:
        assert (
            r.cumulative_logical_shares
            > r.cumulative_logical_data
            > r.cumulative_transferred_shares
            > r.cumulative_physical_shares
        )
    ratio = final.cumulative_physical_shares / final.cumulative_logical_data
    assert 0.04 < ratio < 0.11  # paper: 6.3%


def test_fig6b_vm(benchmark):
    rows = benchmark.pedantic(
        simulate_two_stage, args=(VMWorkload(users=60, master_chunks=1500),), rounds=1, iterations=1
    )
    emit("fig6b_vm", _table(rows, "Figure 6(b) VM: cumulative sizes"))

    final = rows[-1]
    ratio = final.cumulative_physical_shares / final.cumulative_logical_data
    assert ratio < 0.05  # paper: 0.8% at 156 users; scales with user count
    # Inter-user dedup is crucial for VM: physical much lower than transferred.
    assert final.cumulative_physical_shares < 0.5 * final.cumulative_transferred_shares
