"""AES block cipher (FIPS-197) implemented from scratch.

CDStore uses AES-256 as the encryption function ``E`` in its AONTs (§3.2,
§4).  This module implements the full cipher — key expansion, encryption and
decryption — for 128/192/256-bit keys, in two forms:

* scalar single-block routines (:meth:`AES.encrypt_block`,
  :meth:`AES.decrypt_block`), used for correctness tests against the
  FIPS-197 / NIST vectors; and
* a numpy-vectorised bulk path (:meth:`AES.encrypt_blocks`) that runs each
  round across an entire batch of blocks at once, which is what the CTR
  mask generator uses to approach usable throughput in pure Python.

No external crypto library is required; the optional accelerated backend in
:mod:`repro.crypto.ciphers` may bypass this implementation the same way the
paper's prototype delegates to OpenSSL.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CryptoError

__all__ = ["AES"]

BLOCK_SIZE = 16

# ---------------------------------------------------------------------------
# S-box generation (computed, not transcribed, so the table provably matches
# the FIPS-197 definition: multiplicative inverse in GF(2^8) with the AES
# polynomial 0x11B, followed by the affine transform).
# ---------------------------------------------------------------------------


def _aes_gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES reduction polynomial 0x11B."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= 0x11B
        b >>= 1
    return result


def _build_sbox() -> tuple[np.ndarray, np.ndarray]:
    # Multiplicative inverses via brute force (256 elements; done once).
    inv = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _aes_gf_mul(x, y) == 1:
                inv[x] = y
                break
    sbox = np.zeros(256, dtype=np.uint8)
    for x in range(256):
        b = inv[x]
        s = 0
        for i in range(8):
            bit = (
                (b >> i)
                ^ (b >> ((i + 4) % 8))
                ^ (b >> ((i + 5) % 8))
                ^ (b >> ((i + 6) % 8))
                ^ (b >> ((i + 7) % 8))
                ^ (0x63 >> i)
            ) & 1
            s |= bit << i
        sbox[x] = s
    inv_sbox = np.zeros(256, dtype=np.uint8)
    inv_sbox[sbox] = np.arange(256, dtype=np.uint8)
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

# GF(2^8) multiplication tables (AES polynomial) for MixColumns.
_MUL = {
    c: np.array([_aes_gf_mul(x, c) for x in range(256)], dtype=np.uint8)
    for c in (2, 3, 9, 11, 13, 14)
}

# ShiftRows operates on the 4x4 column-major state; expressed as a flat
# permutation of the 16 state bytes (byte i of the new state comes from
# position _SHIFT_ROWS[i] of the old state).
_SHIFT_ROWS = np.array(
    [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11], dtype=np.intp
)
_INV_SHIFT_ROWS = np.zeros(16, dtype=np.intp)
_INV_SHIFT_ROWS[_SHIFT_ROWS] = np.arange(16, dtype=np.intp)

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8]

_ROUNDS_BY_KEY_SIZE = {16: 10, 24: 12, 32: 14}


class AES:
    """An AES cipher instance bound to one key.

    Parameters
    ----------
    key:
        16, 24 or 32 bytes selecting AES-128, AES-192 or AES-256.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in _ROUNDS_BY_KEY_SIZE:
            raise CryptoError(
                f"AES key must be 16/24/32 bytes, got {len(key)}"
            )
        self.key = bytes(key)
        self.rounds = _ROUNDS_BY_KEY_SIZE[len(key)]
        self._round_keys = self._expand_key(self.key, self.rounds)

    # ------------------------------------------------------------------
    # key schedule
    # ------------------------------------------------------------------
    @staticmethod
    def _expand_key(key: bytes, rounds: int) -> np.ndarray:
        """Expand ``key`` into ``rounds + 1`` round keys.

        Returns an array of shape ``(rounds + 1, 16)``.
        """
        nk = len(key) // 4
        total_words = 4 * (rounds + 1)
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [int(SBOX[b]) for b in temp]  # SubWord
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [int(SBOX[b]) for b in temp]  # AES-256 extra SubWord
            words.append([w ^ t for w, t in zip(words[i - nk], temp)])
        flat = np.array(words, dtype=np.uint8).reshape(rounds + 1, 16)
        return flat

    # ------------------------------------------------------------------
    # bulk (vectorised) encryption
    # ------------------------------------------------------------------
    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt a batch of blocks.

        ``blocks`` has shape ``(count, 16)`` (uint8) and is not modified; the
        ciphertext batch of the same shape is returned.  All rounds run
        across the whole batch with table gathers, which is the key to
        acceptable pure-Python throughput.
        """
        state = blocks ^ self._round_keys[0]
        mul2, mul3 = _MUL[2], _MUL[3]
        for rnd in range(1, self.rounds):
            state = SBOX[state]
            state = state[:, _SHIFT_ROWS]
            # MixColumns on the column-major flat state: bytes 4c..4c+3 form
            # column c.
            s = state.reshape(-1, 4, 4)
            a0, a1, a2, a3 = s[:, :, 0], s[:, :, 1], s[:, :, 2], s[:, :, 3]
            mixed = np.empty_like(s)
            mixed[:, :, 0] = mul2[a0] ^ mul3[a1] ^ a2 ^ a3
            mixed[:, :, 1] = a0 ^ mul2[a1] ^ mul3[a2] ^ a3
            mixed[:, :, 2] = a0 ^ a1 ^ mul2[a2] ^ mul3[a3]
            mixed[:, :, 3] = mul3[a0] ^ a1 ^ a2 ^ mul2[a3]
            state = mixed.reshape(-1, 16) ^ self._round_keys[rnd]
        state = SBOX[state]
        state = state[:, _SHIFT_ROWS]
        return state ^ self._round_keys[self.rounds]

    def decrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Decrypt a batch of blocks of shape ``(count, 16)``."""
        state = blocks ^ self._round_keys[self.rounds]
        m9, m11, m13, m14 = _MUL[9], _MUL[11], _MUL[13], _MUL[14]
        for rnd in range(self.rounds - 1, 0, -1):
            state = state[:, _INV_SHIFT_ROWS]
            state = INV_SBOX[state]
            state = state ^ self._round_keys[rnd]
            s = state.reshape(-1, 4, 4)
            a0, a1, a2, a3 = s[:, :, 0], s[:, :, 1], s[:, :, 2], s[:, :, 3]
            mixed = np.empty_like(s)
            mixed[:, :, 0] = m14[a0] ^ m11[a1] ^ m13[a2] ^ m9[a3]
            mixed[:, :, 1] = m9[a0] ^ m14[a1] ^ m11[a2] ^ m13[a3]
            mixed[:, :, 2] = m13[a0] ^ m9[a1] ^ m14[a2] ^ m11[a3]
            mixed[:, :, 3] = m11[a0] ^ m13[a1] ^ m9[a2] ^ m14[a3]
            state = mixed.reshape(-1, 16)
        state = state[:, _INV_SHIFT_ROWS]
        state = INV_SBOX[state]
        return state ^ self._round_keys[0]

    # ------------------------------------------------------------------
    # single-block convenience wrappers
    # ------------------------------------------------------------------
    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        arr = np.frombuffer(block, dtype=np.uint8).reshape(1, 16)
        return self.encrypt_blocks(arr).tobytes()

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        arr = np.frombuffer(block, dtype=np.uint8).reshape(1, 16)
        return self.decrypt_blocks(arr).tobytes()
