"""The paper's core contribution: convergent dispersal via CAONT-RS.

This package implements the three AONT-RS-family codecs evaluated in §5.3:

* :class:`~repro.core.aont_rs.AONTRS` — the original AONT-RS of Resch and
  Plank [52]: Rivest's all-or-nothing transform with a *random* key followed
  by systematic Reed-Solomon coding.  Secure, but duplicates do not
  deduplicate.
* :class:`~repro.core.caont_rs_rivest.CAONTRSRivest` — the authors' prior
  HotStorage'14 instantiation [37]: Rivest's AONT with the random key
  replaced by a SHA-256 hash of the secret (convergent).
* :class:`~repro.core.caont_rs.CAONTRS` — the paper's new instantiation:
  OAEP-based AONT (single bulk encryption instead of per-word encryptions)
  with a convergent hash key.  Faster and deduplicable; CDStore's default.

All three share the (n, k, r = k-1) interface of
:class:`repro.sharing.base.SecretSharingScheme` and register themselves in
the scheme registry, so Table 1 and the system layer treat them uniformly.
"""

from repro.core.aont import (
    CANARY,
    CANARY_SIZE,
    oaep_aont_decode,
    oaep_aont_encode,
    rivest_aont_decode,
    rivest_aont_encode,
)
from repro.core.aont_rs import AONTRS
from repro.core.caont_rs import CAONTRS
from repro.core.caont_rs_rivest import CAONTRSRivest
from repro.core.convergent import ConvergentDispersal, create_codec
from repro.core.crsss import CRSSS
from repro.sharing.registry import register_scheme

__all__ = [
    "AONTRS",
    "CAONTRS",
    "CAONTRSRivest",
    "CRSSS",
    "CANARY",
    "CANARY_SIZE",
    "ConvergentDispersal",
    "create_codec",
    "oaep_aont_decode",
    "oaep_aont_encode",
    "rivest_aont_decode",
    "rivest_aont_encode",
]


def _register() -> None:
    register_scheme("aont-rs", AONTRS)
    register_scheme("caont-rs", CAONTRS)
    register_scheme("caont-rs-rivest", CAONTRSRivest)
    register_scheme("crsss", CRSSS)


_register()
