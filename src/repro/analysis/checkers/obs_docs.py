"""OBS-001: every registered metric is catalogued in the observability doc.

A project-level checker.  The metrics registry (``repro.obs.registry``)
hands out counters, gauges and histograms by *name string* — nothing in
the type system forces a new ``REGISTRY.counter("x_total")`` call site to
show up in ``docs/OBSERVABILITY.md``, yet that catalogue is what
operators read to interpret a ``repro stats`` snapshot.  This checker
closes the loop the same way WIRE-003/006 do for wire frames: adding a
metric forces you to visit the doc.

For every analysed file it collects the first-argument string literal of
each ``<anything>.counter("...")`` / ``.gauge("...")`` /
``.histogram("...")`` call whose receiver is a name containing
``REGISTRY`` (the module-global, however it was imported).  It then
locates the nearest ``docs/OBSERVABILITY.md`` (or a bare
``OBSERVABILITY.md``) walking up from the declaring file, stopping at
the README root so fixture trees never borrow the enclosing
repository's catalogue, and requires each metric name to appear there
as a whole word.

* OBS-001 — a registered metric name missing from the catalogue, or
  metrics registered with no catalogue document at all.

Whole-word textual matching is the right strength (as with the WIRE
rules): the doc mentioning the name in a table row, heading or prose all
count — the point is that the catalogue was visited, not that it has a
particular shape.  Files that register no metrics contribute nothing,
so fixtures and scoped runs stay exercisable.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.engine import FileContext, Finding, Project

__all__ = ["check_obs_docs"]

_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})


def _registered_metrics(ctx: FileContext) -> list[tuple[str, str, int]]:
    """``(metric name, kind, lineno)`` for every registry registration."""
    out: list[tuple[str, str, int]] = []
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _METRIC_METHODS
            and isinstance(node.func.value, ast.Name)
            and "REGISTRY" in node.func.value.id
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            continue
        out.append((node.args[0].value, node.func.attr, node.lineno))
    return out


def _word_present(word: str, text: str) -> bool:
    return re.search(rf"\b{re.escape(word)}\b", text) is not None


def _nearest_obs_doc(path: Path) -> Path | None:
    """``docs/OBSERVABILITY.md`` (or a bare ``OBSERVABILITY.md``) walking
    up from the declaring module, stopping at the README root so fixture
    trees never borrow the enclosing repository's catalogue."""
    for parent in path.resolve().parents:
        for candidate in (
            parent / "OBSERVABILITY.md",
            parent / "docs" / "OBSERVABILITY.md",
        ):
            if candidate.is_file():
                return candidate
        if (parent / "README.md").is_file():
            return None
    return None


def check_obs_docs(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for ctx in project.files:
        metrics = _registered_metrics(ctx)
        if not metrics:
            continue
        doc = _nearest_obs_doc(ctx.path)
        if doc is None:
            findings.append(
                ctx.finding(
                    metrics[0][2],
                    "OBS-001",
                    f"this module registers {len(metrics)} metric(s) but no "
                    f"OBSERVABILITY.md / docs/OBSERVABILITY.md exists between "
                    f"it and the README root — registered metrics have no "
                    f"operator catalogue to drift-check against",
                )
            )
            continue
        doc_text = doc.read_text()
        for name, kind, lineno in metrics:
            if not _word_present(name, doc_text):
                findings.append(
                    ctx.finding(
                        lineno,
                        "OBS-001",
                        f"{kind} {name!r} is registered here but missing "
                        f"from the metric catalogue in {doc.name} — every "
                        f"registered metric must be documented",
                    )
                )
    return findings
