"""Fixture-driven proof that every `repro analyze` checker earns its keep.

Each checker gets one deliberate true positive and one justified
suppression in ``tests/analysis_fixtures/`` — the former must be flagged,
the latter must stay silent.  A final test runs the full suite over the
real ``src/`` tree, pinning the repository's own invariant-clean state.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import run_analysis

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO_SRC = Path(__file__).parent.parent / "src"


def line_of(path: Path, needle: str) -> int:
    """1-based line number of the first line containing ``needle``."""
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        if needle in text:
            return lineno
    raise AssertionError(f"{needle!r} not found in {path}")


def findings_for(subdir: str):
    return run_analysis([FIXTURES / subdir])


def rules(findings) -> set[str]:
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# LOCK-001


def test_lock_checker_flags_unlocked_mutation():
    sample = FIXTURES / "locks" / "sample.py"
    findings = findings_for("locks")
    assert rules(findings) == {"LOCK-001"}
    assert [f.line for f in findings] == [line_of(sample, "TRUE-POSITIVE")]
    assert "bad_add" in findings[0].message
    assert "'_items'" in findings[0].message


def test_lock_checker_suppression_is_honoured():
    sample = FIXTURES / "locks" / "sample.py"
    suppressed_line = line_of(sample, "analysis: ignore[LOCK-001]")
    assert all(f.line != suppressed_line for f in findings_for("locks"))


# ---------------------------------------------------------------------------
# DUR-001 / DUR-002


def test_durability_checker_flags_unsynced_publish():
    sample = FIXTURES / "storage" / "sample.py"
    findings = findings_for("storage")
    assert rules(findings) == {"DUR-001"}
    lines = {f.line for f in findings}
    assert line_of(sample, "publish with no fsync barrier") in lines
    assert line_of(sample, "fsync of an unflushed buffer") in lines
    assert len(findings) == 2


def test_durability_ack_suppression_is_honoured():
    # The DUR-002 ack finding exists but is suppressed with justification.
    assert "DUR-002" not in rules(findings_for("storage"))


# ---------------------------------------------------------------------------
# LIFE-001


def test_lifecycle_checker_flags_leak_on_exception():
    sample = FIXTURES / "lifecycle" / "sample.py"
    findings = findings_for("lifecycle")
    assert rules(findings) == {"LIFE-001"}
    assert [f.line for f in findings] == [line_of(sample, "TRUE-POSITIVE")]
    assert "socket 'sock'" in findings[0].message


def test_lifecycle_suppression_is_honoured():
    sample = FIXTURES / "lifecycle" / "sample.py"
    suppressed_line = line_of(sample, "analysis: ignore[LIFE-001]")
    assert all(f.line != suppressed_line for f in findings_for("lifecycle"))


# ---------------------------------------------------------------------------
# WIRE-001..004


def test_wire_checker_cross_checks_every_surface():
    wire = FIXTURES / "wiring" / "net" / "wire.py"
    findings = findings_for("wiring")
    orphan_line = line_of(wire, "T_ORPHAN")
    by_rule = {f.rule: f for f in findings}

    # T_ORPHAN is missing from all three surfaces.
    for rule in ("WIRE-001", "WIRE-002", "WIRE-003"):
        assert by_rule[rule].line == orphan_line, rule
    assert "T_ORPHAN" in by_rule["WIRE-001"].message
    assert "ORPHAN" in by_rule["WIRE-003"].message

    # T_SHADOW reuses T_PING's byte.
    assert by_rule["WIRE-004"].line == line_of(wire, "T_SHADOW")
    assert "0x01" in by_rule["WIRE-004"].message

    # T_DEBUG_DUMP's missing proxy coverage is suppressed with a reason;
    # nothing else fires.
    assert len(findings) == 4


# ---------------------------------------------------------------------------
# WIRE-005


def test_protocol_surface_drift_fires_in_both_directions():
    wire = FIXTURES / "protocol_surface" / "net" / "wire.py"
    protocol = FIXTURES / "protocol_surface" / "server" / "protocol.py"
    findings = findings_for("protocol_surface")
    assert rules(findings) == {"WIRE-005"}
    by_line = {(Path(f.path).name, f.line): f for f in findings}

    unmapped_frame = by_line[("wire.py", line_of(wire, "T_UNMAPPED"))]
    assert "T_UNMAPPED" in unmapped_frame.message
    assert "CONTROL_FRAMES" in unmapped_frame.message

    ghost = by_line[("wire.py", line_of(wire, "ghost_method"))]
    assert "'ghost_method'" in ghost.message
    assert "FixtureServerAPI" in ghost.message

    undeclared = by_line[("protocol.py", line_of(protocol, "unmapped_method"))]
    assert "unmapped_method" in undeclared.message
    assert "LOCAL_ONLY_METHODS" in undeclared.message

    # close (local-only), upload (mapped) and the suppressed debug_probe
    # mapping stay silent.
    assert len(findings) == 3


# ---------------------------------------------------------------------------
# WIRE-006


def test_protocol_doc_drift_flags_frames_and_error_codes():
    wire = FIXTURES / "protocol_doc" / "net" / "wire.py"
    errors = FIXTURES / "protocol_doc" / "errors.py"
    findings = findings_for("protocol_doc")
    assert rules(findings) == {"WIRE-006"}
    by_line = {(Path(f.path).name, f.line): f for f in findings}

    # T_GHOST's name+byte pair is absent from the spec.
    ghost = by_line[("wire.py", line_of(wire, "T_GHOST"))]
    assert "T_GHOST" in ghost.message
    assert "0x02" in ghost.message

    # ForgottenError's wire code is absent from the error registry.
    forgotten = by_line[("errors.py", line_of(errors, "wire_code = 2"))]
    assert "ForgottenError" in forgotten.message
    assert "wire code 2" in forgotten.message

    # R_SECRET and InternalOnlyError are suppressed with reasons;
    # T_PING and DocumentedError are documented.  Nothing else fires.
    assert len(findings) == 2


def test_missing_protocol_doc_is_flagged(tmp_path):
    (tmp_path / "wire.py").write_text(
        "T_PING = 0x01\n"
        "METHOD_FRAMES: dict[str, int] = {}\n"
        "CONTROL_FRAMES: frozenset[int] = frozenset({T_PING})\n"
    )
    findings = run_analysis([tmp_path])
    assert any(
        f.rule == "WIRE-006" and "no normative spec" in f.message
        for f in findings
    )


# ---------------------------------------------------------------------------
# OBS-001


def test_obs_checker_flags_undocumented_metric():
    sample = FIXTURES / "obs_docs" / "sample.py"
    findings = findings_for("obs_docs")
    assert rules(findings) == {"OBS-001"}
    assert [f.line for f in findings] == [line_of(sample, "TRUE-POSITIVE")]
    assert "'ghost_total'" in findings[0].message
    assert "counter" in findings[0].message
    assert "OBSERVABILITY.md" in findings[0].message


def test_obs_checker_suppression_is_honoured():
    sample = FIXTURES / "obs_docs" / "sample.py"
    suppressed_line = line_of(sample, "analysis: ignore[OBS-001]")
    assert all(f.line != suppressed_line for f in findings_for("obs_docs"))


def test_obs_checker_flags_missing_catalogue(tmp_path):
    (tmp_path / "metrics.py").write_text(
        'REGISTRY = None\n_C = REGISTRY.counter("orphan_total")\n'
    )
    findings = run_analysis([tmp_path])
    assert any(
        f.rule == "OBS-001" and "no operator catalogue" in f.message
        for f in findings
    )


# ---------------------------------------------------------------------------
# PICKLE-001


def test_picklable_checker_flags_bad_annotation():
    sample = FIXTURES / "picklable" / "sample.py"
    findings = findings_for("picklable")
    assert rules(findings) == {"PICKLE-001"}
    assert [f.line for f in findings] == [line_of(sample, "TRUE-POSITIVE")]
    assert "BadSpec.handle" in findings[0].message
    assert "'Any'" in findings[0].message


def test_picklable_suppression_is_honoured():
    sample = FIXTURES / "picklable" / "sample.py"
    suppressed_line = line_of(sample, "analysis: ignore[PICKLE-001]")
    assert all(f.line != suppressed_line for f in findings_for("picklable"))


# ---------------------------------------------------------------------------
# SUP-001


def test_bare_suppression_fires_and_silences_nothing():
    sample = FIXTURES / "framework" / "sample.py"
    findings = findings_for("framework")
    bare_line = line_of(sample, "analysis: ignore[LOCK-001]")
    assert {(f.rule, f.line) for f in findings} == {
        ("SUP-001", bare_line),
        ("LOCK-001", bare_line),  # the underlying finding survives
    }


# ---------------------------------------------------------------------------
# The real tree


def test_src_tree_is_invariant_clean():
    """`repro analyze src/` must exit 0 on the merged tree (acceptance)."""
    findings = run_analysis([REPO_SRC])
    assert findings == [], "\n".join(f.render() for f in findings)
