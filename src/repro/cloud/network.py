"""Network link models and the simulated clock.

Transfer-speed experiments need only two ingredients: per-connection links
with bandwidth and latency, and a clock that understands parallel transfers
(CDStore's client uploads to all clouds concurrently via multi-threading,
§4.6, so wall-clock time is the *maximum* over per-cloud times, further
bounded by the client's shared physical uplink).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["Link", "SimClock"]

MB = 1_000_000.0


@dataclass(frozen=True)
class Link:
    """A one-directional network path.

    Parameters
    ----------
    bandwidth_mbps:
        Sustained throughput in MB/s (decimal megabytes, as the paper's
        tables use).
    latency_s:
        Per-request round-trip setup cost charged once per batch (CDStore
        batches shares in 4 MB units precisely to amortise this, §4.1).
    """

    bandwidth_mbps: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ParameterError(
                f"bandwidth must be positive, got {self.bandwidth_mbps}"
            )
        if self.latency_s < 0:
            raise ParameterError(f"latency must be >= 0, got {self.latency_s}")

    def transfer_time(self, nbytes: int, batches: int = 1) -> float:
        """Seconds to move ``nbytes`` split into ``batches`` requests."""
        if nbytes < 0:
            raise ParameterError(f"negative byte count {nbytes}")
        return nbytes / (self.bandwidth_mbps * MB) + self.latency_s * max(batches, 1)


class SimClock:
    """Accumulates simulated seconds, with a parallel-section helper."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        """Advance the clock by a serial cost."""
        if seconds < 0:
            raise ParameterError(f"cannot advance clock by {seconds}")
        self.now += seconds

    def advance_parallel(self, durations: list[float], shared_floor: float = 0.0) -> float:
        """Advance by the makespan of concurrent activities.

        ``durations`` are per-connection times; ``shared_floor`` is a lower
        bound imposed by a shared resource (e.g. total bytes over the
        client's physical uplink).  Returns the elapsed span.
        """
        span = max(durations + [shared_floor]) if durations else shared_floor
        self.advance(span)
        return span
