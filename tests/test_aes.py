"""AES against FIPS-197 / NIST vectors, plus roundtrip properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, INV_SBOX, SBOX
from repro.errors import CryptoError

# FIPS-197 Appendix C example vectors (plaintext 00112233...ff).
_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
_VECTORS = [
    ("000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"),  # AES-128
    ("000102030405060708090a0b0c0d0e0f1011121314151617", "dda97ca4864cdfe06eaf70a0ec0d7191"),  # AES-192
    ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f", "8ea2b7ca516745bfeafc49904b496089"),  # AES-256
]


class TestSbox:
    def test_sbox_known_entries(self):
        # FIPS-197 Figure 7 spot checks.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sbox_is_a_permutation(self):
        assert len(set(SBOX.tolist())) == 256

    def test_inverse_sbox(self):
        assert all(INV_SBOX[SBOX[i]] == i for i in range(256))


class TestKnownVectors:
    @pytest.mark.parametrize("key_hex,ct_hex", _VECTORS)
    def test_fips197_encrypt(self, key_hex, ct_hex):
        cipher = AES(bytes.fromhex(key_hex))
        assert cipher.encrypt_block(_PLAINTEXT).hex() == ct_hex

    @pytest.mark.parametrize("key_hex,ct_hex", _VECTORS)
    def test_fips197_decrypt(self, key_hex, ct_hex):
        cipher = AES(bytes.fromhex(key_hex))
        assert cipher.decrypt_block(bytes.fromhex(ct_hex)) == _PLAINTEXT


class TestRoundtrip:
    @settings(max_examples=20)
    @given(st.binary(min_size=32, max_size=32), st.integers(min_value=1, max_value=16))
    def test_bulk_roundtrip(self, key, nblocks):
        cipher = AES(key)
        blocks = np.arange(nblocks * 16, dtype=np.uint64).astype(np.uint8).reshape(nblocks, 16)
        ct = cipher.encrypt_blocks(blocks)
        assert np.array_equal(cipher.decrypt_blocks(ct), blocks)

    def test_bulk_matches_single(self):
        key = bytes(range(32))
        cipher = AES(key)
        blocks = np.frombuffer(bytes(range(64)), dtype=np.uint8).reshape(4, 16)
        bulk = cipher.encrypt_blocks(blocks)
        for i in range(4):
            assert bulk[i].tobytes() == cipher.encrypt_block(blocks[i].tobytes())

    def test_different_keys_differ(self):
        a = AES(b"a" * 32).encrypt_block(_PLAINTEXT)
        b = AES(b"b" * 32).encrypt_block(_PLAINTEXT)
        assert a != b


class TestErrors:
    def test_bad_key_size(self):
        with pytest.raises(CryptoError):
            AES(b"short")

    def test_bad_block_size(self):
        cipher = AES(b"k" * 16)
        with pytest.raises(CryptoError):
            cipher.encrypt_block(b"not 16 bytes!")
        with pytest.raises(CryptoError):
            cipher.decrypt_block(b"xx")

    def test_rounds_by_key_size(self):
        assert AES(b"k" * 16).rounds == 10
        assert AES(b"k" * 24).rounds == 12
        assert AES(b"k" * 32).rounds == 14
