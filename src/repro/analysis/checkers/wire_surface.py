"""WIRE-001..004: every wire frame type is handled everywhere, once.

A project-level checker: it needs ``net/wire.py`` (the constant
registry), ``net/server.py`` (dispatch), ``net/client.py`` (proxy) and
the repository README (human-facing frame table) in one view.  For each
``wire.py`` in the analysed set it locates the sibling server/client
modules in the same directory and the nearest ``README.md`` walking up
from the wire module on disk.

* WIRE-001 — a ``T_*``/``R_*`` constant never referenced in the server
  module: the dispatch (or its response encoding) cannot cover it.
* WIRE-002 — a constant never referenced in the client module: the proxy
  can neither send nor expect it.
* WIRE-003 — a constant whose short name (``T_FETCH_SHARES`` →
  ``FETCH_SHARES``) is missing from the README frame table.
* WIRE-004 — two constants share one wire byte value (dispatch
  shadowing: the second can never be selected).

References are whole-word textual matches, which is exactly the right
strength here: ``wire.T_PING`` and ``T_PING`` both count, a constant
mentioned only in a comment counts too — and that is fine, because the
point is "adding a frame forces you to visit every surface", and a
comment claiming handling is at least a visited, reviewable claim.
Missing sibling files are skipped rather than flagged so fixtures can
exercise one surface at a time.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.engine import FileContext, Finding, Project

__all__ = ["check_wire_surface"]


def _frame_constants(ctx: FileContext) -> list[tuple[str, int, int]]:
    """Module-level ``(name, value, lineno)`` for every T_*/R_* int const."""
    out: list[tuple[str, int, int]] = []
    for stmt in ctx.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if (
                isinstance(target, ast.Name)
                and (target.id.startswith("T_") or target.id.startswith("R_"))
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, int)
            ):
                out.append((target.id, stmt.value.value, stmt.lineno))
    return out


def _word_present(word: str, text: str) -> bool:
    return re.search(rf"\b{re.escape(word)}\b", text) is not None


def _nearest_readme(wire_path: Path) -> Path | None:
    for parent in wire_path.resolve().parents:
        candidate = parent / "README.md"
        if candidate.is_file():
            return candidate
    return None


def _check_one_wire(project: Project, wire: FileContext) -> list[Finding]:
    constants = _frame_constants(wire)
    if not constants:
        return []
    findings: list[Finding] = []

    by_value: dict[int, list[tuple[str, int]]] = {}
    for name, value, lineno in constants:
        by_value.setdefault(value, []).append((name, lineno))
    for value, entries in sorted(by_value.items()):
        if len(entries) > 1:
            names = ", ".join(name for name, _ in entries)
            findings.append(
                wire.finding(
                    entries[-1][1],
                    "WIRE-004",
                    f"frame byte 0x{value:02X} is assigned to {names} — "
                    f"dispatch on the shared value shadows all but one",
                )
            )

    wire_dir = str(Path(wire.display_path).parent)
    siblings = {
        Path(ctx.display_path).name: ctx
        for ctx in project.files
        if str(Path(ctx.display_path).parent) == wire_dir
    }
    surfaces = [
        ("WIRE-001", siblings.get("server.py"), "server dispatch"),
        ("WIRE-002", siblings.get("client.py"), "client proxy"),
    ]
    for rule, sibling, role in surfaces:
        if sibling is None:
            continue
        for name, _value, lineno in constants:
            if not _word_present(name, sibling.source):
                findings.append(
                    wire.finding(
                        lineno,
                        rule,
                        f"frame constant {name} is never referenced by the "
                        f"{role} ({sibling.display_path}) — the frame cannot "
                        f"be handled there",
                    )
                )

    readme = _nearest_readme(wire.path)
    if readme is not None:
        readme_text = readme.read_text()
        for name, _value, lineno in constants:
            short = name.split("_", 1)[1] if "_" in name else name
            if not _word_present(short, readme_text):
                findings.append(
                    wire.finding(
                        lineno,
                        "WIRE-003",
                        f"frame {name} ({short}) is missing from the "
                        f"frame table in {readme.name}",
                    )
                )
    return findings


def check_wire_surface(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for wire in project.find("/wire.py"):
        findings.extend(_check_one_wire(project, wire))
    return findings
