"""WIRE fixture: an orphaned frame, a duplicated byte, a justified suppression.

Parsed (never imported) by tests/test_analysis_checkers.py; the sibling
server.py/client.py and ../README.md complete the cross-check surfaces.
"""

T_PING = 0x01
T_ORPHAN = 0x02  # TRUE-POSITIVE: handled nowhere (server, client, README)
T_SHADOW = 0x01  # TRUE-POSITIVE: duplicate byte value of T_PING
R_OK = 0x80
# Debug frames are injected by hand (netcat) during incident response;
# the proxy deliberately has no API for them.
T_DEBUG_DUMP = 0x7F  # analysis: ignore[WIRE-002] -- debug-only frame, never sent by the proxy
