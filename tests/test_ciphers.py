"""CTR keystreams: backend agreement, offsets, the word-stream API."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ciphers import (
    AesCtr,
    aes_backend_name,
    available_aes_backends,
    ctr_keystream,
    mask_block,
    set_aes_backend,
)
from repro.errors import CryptoError, ParameterError

KEY = bytes(range(32))


class TestBackends:
    def test_pure_always_available(self):
        assert "pure" in available_aes_backends()

    def test_set_unknown_backend_raises(self):
        with pytest.raises(ParameterError):
            set_aes_backend("quantum")

    def test_set_and_restore(self):
        original = aes_backend_name()
        try:
            set_aes_backend("pure")
            assert aes_backend_name() == "pure"
        finally:
            set_aes_backend(original)

    @pytest.mark.skipif(
        "openssl" not in available_aes_backends(), reason="no OpenSSL wheel"
    )
    @settings(max_examples=20)
    @given(
        st.binary(min_size=32, max_size=32),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=50),
    )
    def test_backends_produce_identical_bytes(self, key, length, offset):
        pure = AesCtr(key, backend="pure").keystream(length, offset)
        fast = AesCtr(key, backend="openssl").keystream(length, offset)
        assert pure == fast


class TestKeystream:
    def test_deterministic(self):
        assert ctr_keystream(KEY, 100) == ctr_keystream(KEY, 100)

    def test_offset_slices_the_same_stream(self):
        whole = ctr_keystream(KEY, 160)
        assert ctr_keystream(KEY, 32, block_offset=2) == whole[32:64]

    def test_zero_length(self):
        assert ctr_keystream(KEY, 0) == b""

    def test_negative_length_raises(self):
        with pytest.raises(ParameterError):
            ctr_keystream(KEY, -1)

    def test_negative_offset_raises(self):
        with pytest.raises(ParameterError):
            AesCtr(KEY).keystream(16, block_offset=-1)

    def test_bad_key_raises(self):
        with pytest.raises(CryptoError):
            AesCtr(b"tiny")

    def test_key_separation(self):
        assert ctr_keystream(b"a" * 32, 64) != ctr_keystream(b"b" * 32, 64)


class TestWordStream:
    def test_word_stream_equals_bulk(self):
        ctr = AesCtr(KEY)
        words = list(ctr.word_stream(10))
        assert b"".join(words) == ctr.keystream(160)

    def test_block_accessor(self):
        ctr = AesCtr(KEY)
        stream = ctr.keystream(160)
        for i in range(10):
            assert ctr.block(i) == stream[16 * i : 16 * (i + 1)]

    def test_negative_count_raises(self):
        with pytest.raises(ParameterError):
            list(AesCtr(KEY).word_stream(-1))

    @pytest.mark.skipif(
        "openssl" not in available_aes_backends(), reason="no OpenSSL wheel"
    )
    def test_word_stream_backend_agreement(self):
        pure = b"".join(AesCtr(KEY, backend="pure").word_stream(8))
        fast = b"".join(AesCtr(KEY, backend="openssl").word_stream(8))
        assert pure == fast


class TestMaskBlock:
    def test_mask_is_deterministic_in_key_and_length(self):
        assert mask_block(KEY, 1000) == mask_block(KEY, 1000)
        assert mask_block(KEY, 1000)[:500] == mask_block(KEY, 500)

    def test_mask_differs_by_key(self):
        assert mask_block(b"x" * 32, 64) != mask_block(b"y" * 32, 64)
