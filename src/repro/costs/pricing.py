"""Amazon EC2/S3 pricing models (September 2014, per §5.6).

The paper's tool uses: (i) S3 tiered storage pricing ("around US$30 per TB
per month"), (ii) high-utilisation reserved EC2 instances ("US$60-1,300 per
month, depending on the CPU, memory, and storage settings"), choosing the
cheapest instance whose local storage holds the server's dedup indices.
Inbound transfer and VM⇄S3 traffic are free; outbound replies and PUT
requests are negligible next to storage and VM costs (§5.6).

The exact 2014 price sheet is no longer published; the tiers and catalog
below are transcribed from the figures quoted in the paper and Amazon's
archived Sept-2014 structure.  The Figure 9 reproduction depends on the
magnitudes and the tier/instance *structure* (which produces the jagged
curves), not on cent-level accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["EC2Instance", "ec2_catalog", "cheapest_instance_for", "s3_monthly_cost"]

TB = 1000**4
GB = 1000**3

#: S3 storage tiers (Sept 2014): (tier ceiling in bytes, $ per GB-month).
_S3_TIERS: list[tuple[float, float]] = [
    (1 * TB, 0.0300),
    (50 * TB, 0.0295),
    (500 * TB, 0.0290),
    (1000 * TB, 0.0285),
    (5000 * TB, 0.0280),
    (float("inf"), 0.0275),
]


def s3_monthly_cost(stored_bytes: float) -> float:
    """Monthly S3 storage cost in USD, applying tiered pricing."""
    if stored_bytes < 0:
        raise ParameterError(f"negative storage {stored_bytes}")
    cost = 0.0
    prev_ceiling = 0.0
    remaining = float(stored_bytes)
    for ceiling, per_gb in _S3_TIERS:
        span = min(remaining, ceiling - prev_ceiling)
        if span <= 0:
            break
        cost += span / GB * per_gb
        remaining -= span
        prev_ceiling = ceiling
    return cost


@dataclass(frozen=True)
class EC2Instance:
    """One reserved-instance option: name, local storage, monthly cost.

    ``monthly_usd`` amortises the upfront fee of a 1-year heavy-utilisation
    reservation into the hourly bill, as the paper's tool does.
    """

    name: str
    family: str  # "compute" or "storage" optimised (§5.6)
    local_storage_bytes: float
    monthly_usd: float


#: Catalog spanning the paper's "US$60~1,300 per month" range: c3
#: compute-optimised (SSD-light) and i2/hs1 storage-optimised instances.
_CATALOG: list[EC2Instance] = [
    EC2Instance("c3.large", "compute", 32 * GB, 60.0),
    EC2Instance("c3.xlarge", "compute", 80 * GB, 120.0),
    EC2Instance("c3.2xlarge", "compute", 160 * GB, 240.0),
    EC2Instance("i2.xlarge", "storage", 800 * GB, 270.0),
    EC2Instance("c3.4xlarge", "compute", 320 * GB, 480.0),
    EC2Instance("i2.2xlarge", "storage", 1600 * GB, 540.0),
    EC2Instance("c3.8xlarge", "compute", 640 * GB, 960.0),
    EC2Instance("i2.4xlarge", "storage", 3200 * GB, 1080.0),
    EC2Instance("hs1.8xlarge", "storage", 48 * TB, 1200.0),
    EC2Instance("i2.8xlarge", "storage", 6400 * GB, 1300.0),
]


def ec2_catalog() -> list[EC2Instance]:
    """The instance catalog, cheapest first."""
    return sorted(_CATALOG, key=lambda inst: inst.monthly_usd)


def cheapest_instance_for(index_bytes: float) -> EC2Instance:
    """Cheapest instance whose local storage holds ``index_bytes``.

    "Our tool chooses the cheapest instance that can keep the entire
    indices according to the storage size and deduplication efficiency"
    (§5.6).  Raises :class:`ParameterError` when no instance is big enough
    (the paper's scenarios stay within hs1.8xlarge's 48 TB).
    """
    if index_bytes < 0:
        raise ParameterError(f"negative index size {index_bytes}")
    for instance in ec2_catalog():
        if instance.local_storage_bytes >= index_bytes:
            return instance
    raise ParameterError(
        f"no EC2 instance holds a {index_bytes / TB:.1f} TB index"
    )
