"""The gateway service: resolve once, shard fetches, cache hot windows.

One :class:`GatewayService` sits behind an async mux front-end
(:class:`~repro.net.async_server.AsyncCDStoreTCPServer` with
``server=None, gateway=...``) and answers the two gateway frames for
every multiplexed client connection concurrently:

* **resolve** (``T_GW_RESOLVE``): fetch the backup's file entry from
  ``k`` ring-preferred replicas, cross-check the replicated metadata
  (a lying minority cannot spoof size or secret count), pull one
  reference recipe, and plan the restore windows with the *gateway's*
  window size — every client therefore shares the same window
  boundaries, which is what makes the hot cache converge.  Resolutions
  are cached with a TTL (``recipe_ttl=0`` revalidates on every
  resolve).
* **window** (``T_GW_WINDOW``): for each of the ``k`` replicas the
  consistent-hash ring prefers for this ``(backup, window)``, serve the
  window's shares from the hot-container cache or fetch them from the
  replica on miss.  Cache keys are content-addressed by the window's
  share fingerprints, so an overwritten backup can never hit its old
  bytes (see :mod:`repro.gateway.cache`).

Failure philosophy — **the gateway never fails over**.  A replica dying
behind a cache miss raises the replica's typed error straight to the
client, which falls back to the direct quorum restore where the real
failover machinery (window-granular spare promotion, §3.2 widening)
lives.  Duplicating that machinery here would mean two divergent
failover paths to keep correct; routing all degraded traffic through
one path keeps the gateway a pure, disposable accelerator.  The single
exception is the overwrite race: a ``NotFoundError`` from a replica
mid-window usually means the cached resolution went stale, so the
service invalidates the backup and retries **once** before letting the
error out.
"""

from __future__ import annotations

import hashlib
import struct
import time
from dataclasses import dataclass, field
from threading import Lock
from typing import Callable, Iterable, Iterator

from repro.analysis.annotations import guarded_by
from repro.client.workers import plan_windows
from repro.errors import IntegrityError, NotFoundError, ParameterError
from repro.gateway.cache import HotContainerCache
from repro.gateway.ring import HashRing
from repro.obs.registry import REGISTRY

__all__ = ["GATEWAY_WINDOW_BYTES", "GatewayService"]

_RESOLUTIONS = REGISTRY.counter(
    "gateway_resolutions_total",
    "Backup resolutions served, by source (cache | fresh)",
)

#: Default restore-window budget, in plaintext bytes per window.  One
#: window is the unit of caching and of ``T_GW_WINDOW`` transfer.
GATEWAY_WINDOW_BYTES = 4 << 20


@dataclass
class _Resolution:
    """One cached backup resolution (the gateway-side RestorePlan)."""

    expires: float
    file_size: int
    secret_sizes: tuple[int, ...]
    windows: tuple[tuple[int, int], ...]
    #: Digest of the reference recipe's fingerprints: two resolutions
    #: with different digests describe different backup versions.
    digest: bytes
    #: Lazily-fetched per-replica recipes (replica id -> recipe).
    recipes: dict = field(default_factory=dict)


class GatewayService:
    """Sharded, caching read service over a set of serving replicas.

    Parameters
    ----------
    replicas:
        Server-surface objects (:class:`~repro.net.client.
        RemoteServerProxy` in production, in-process servers in tests)
        with distinct ``server_id`` values.
    k:
        Decode threshold: shards per window, replicas cross-checked per
        resolve.
    own_replicas:
        When True, :meth:`close` closes the replicas too (the ``repro
        gateway`` process owns its proxies; an embedding system shares
        them and keeps the default False).
    clock:
        Monotonic-seconds source for the resolution TTL (injectable for
        deterministic tests).
    """

    #: Lock discipline (``repro analyze``, LOCK-001): the resolution
    #: cache is shared by every connection the front-end multiplexes.
    #: Replica I/O never runs under the lock — only lookups/inserts do.
    GUARDED_BY = guarded_by(_resolutions="_lock")

    def __init__(
        self,
        replicas: Iterable,
        k: int,
        cache_bytes: int = 256 << 20,
        recipe_ttl: float = 30.0,
        shard_count: int = 64,
        window_bytes: int = GATEWAY_WINDOW_BYTES,
        own_replicas: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        replica_list = list(replicas)
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        if len(replica_list) < k:
            raise ParameterError(
                f"gateway needs at least k={k} replicas, got {len(replica_list)}"
            )
        if recipe_ttl < 0:
            raise ParameterError(f"recipe_ttl must be >= 0, got {recipe_ttl}")
        if window_bytes < 1:
            raise ParameterError(f"window_bytes must be >= 1, got {window_bytes}")
        self._replicas = {replica.server_id: replica for replica in replica_list}
        if len(self._replicas) != len(replica_list):
            raise ParameterError("replicas must have distinct server ids")
        self.k = k
        self.recipe_ttl = float(recipe_ttl)
        self.window_bytes = window_bytes
        self.ring = HashRing(sorted(self._replicas), vnodes=shard_count)
        self.cache = HotContainerCache(cache_bytes)
        self._own_replicas = own_replicas
        self._clock = clock
        self._lock = Lock()
        self._resolutions: dict[tuple[str, bytes], _Resolution] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # wire surface
    # ------------------------------------------------------------------
    def resolve_backup(
        self, user_id: str, lookup_key: bytes
    ) -> tuple[int, list[int], list[tuple[int, int]]]:
        """The restore plan: ``(file_size, secret_sizes, windows)``."""
        res = self._resolution(user_id, lookup_key)
        return res.file_size, list(res.secret_sizes), list(res.windows)

    def iter_window_shards(
        self, user_id: str, lookup_key: bytes, window_index: int
    ) -> Iterator[tuple[int, list[bytes]]]:
        """Yield ``(replica id, shares)`` for one window, ``k`` shards.

        All shards are collected *before* the first yield so the
        overwrite-race retry happens before any frame reaches the wire:
        a stream that has started never restarts mid-flight.
        """
        try:
            shards = self._window_shards(user_id, lookup_key, window_index)
        except NotFoundError:
            # Stale resolution (the backup was overwritten or deleted
            # after we cached it): drop everything we believed about it
            # and retry once against fresh metadata.  A genuinely
            # deleted backup fails the retry with the same error.
            self.invalidate_backup(user_id, lookup_key)
            shards = self._window_shards(user_id, lookup_key, window_index)
        yield from shards

    def invalidate_backup(self, user_id: str, lookup_key: bytes) -> int:
        """Forget one backup (resolution + hot windows); returns entries
        dropped from the hot cache.  Called on overwrite/delete races
        and available to operators via the service stats surface."""
        backup = (user_id, bytes(lookup_key))
        with self._lock:
            self._resolutions.pop(backup, None)
        return self.cache.invalidate(backup)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def _resolution(self, user_id: str, lookup_key: bytes) -> _Resolution:
        backup = (user_id, bytes(lookup_key))
        now = self._clock()
        with self._lock:
            cached = self._resolutions.get(backup)
            if cached is not None and now < cached.expires:
                _RESOLUTIONS.inc(source="cache")
                return cached
        fresh = self._resolve_fresh(user_id, lookup_key)
        _RESOLUTIONS.inc(source="fresh")
        with self._lock:
            self._resolutions[backup] = fresh
        if cached is not None and cached.digest != fresh.digest:
            # The backup changed under its TTL: the content-addressed
            # hot keys already can't serve the new version, but the old
            # version's bytes are dead weight — reclaim them now.
            self.cache.invalidate(backup)
        return fresh

    def _resolve_fresh(self, user_id: str, lookup_key: bytes) -> _Resolution:
        chosen = self.ring.preferred(bytes(lookup_key))[: self.k]
        entries = [
            self._replicas[server_id].get_file_entry(user_id, lookup_key)
            for server_id in chosen
        ]
        sizes = {entry.file_size for entry in entries}
        counts = {entry.secret_count for entry in entries}
        if len(sizes) != 1 or len(counts) != 1:
            raise IntegrityError(
                "replicas disagree on file entry (file size / secret count)"
            )
        file_size = sizes.pop()
        secret_count = counts.pop()
        reference = self._replicas[chosen[0]].get_recipe(user_id, lookup_key)
        if len(reference) != secret_count:
            raise IntegrityError(
                f"replica {chosen[0]} recipe has {len(reference)} entries, "
                f"file entry records {secret_count} secrets"
            )
        secret_sizes = tuple(entry.secret_size for entry in reference)
        windows = (
            tuple(plan_windows(list(secret_sizes), self.window_bytes))
            if secret_count
            else ()
        )
        digest = hashlib.sha256(
            b"".join(entry.fingerprint for entry in reference)
        ).digest()
        return _Resolution(
            expires=self._clock() + self.recipe_ttl,
            file_size=file_size,
            secret_sizes=secret_sizes,
            windows=windows,
            digest=digest,
            recipes={chosen[0]: reference},
        )

    # ------------------------------------------------------------------
    # window serving
    # ------------------------------------------------------------------
    def _window_shards(
        self, user_id: str, lookup_key: bytes, window_index: int
    ) -> list[tuple[int, list[bytes]]]:
        res = self._resolution(user_id, lookup_key)
        if not 0 <= window_index < len(res.windows):
            raise ParameterError(
                f"window index {window_index} out of range "
                f"({len(res.windows)} windows)"
            )
        start, end = res.windows[window_index]
        backup = (user_id, bytes(lookup_key))
        window_key = bytes(lookup_key) + struct.pack(">I", window_index)
        shards: list[tuple[int, list[bytes]]] = []
        for server_id in self.ring.preferred(window_key)[: self.k]:
            recipe = self._replica_recipe(res, server_id, user_id, lookup_key)
            fingerprints = [recipe[seq].fingerprint for seq in range(start, end)]
            cache_key = (
                *backup,
                window_index,
                server_id,
                hashlib.sha256(b"".join(fingerprints)).digest(),
            )
            shares = self.cache.get(cache_key)
            if shares is None:
                fetched = self._replicas[server_id].fetch_shares(fingerprints)
                try:
                    shares = [fetched[fp] for fp in fingerprints]
                except KeyError as exc:
                    raise NotFoundError(
                        f"replica {server_id} no longer holds a share of "
                        f"window {window_index}"
                    ) from exc
                self.cache.put(cache_key, shares)
            shards.append((server_id, shares))
        return shards

    def _replica_recipe(
        self, res: _Resolution, server_id: int, user_id: str, lookup_key: bytes
    ):
        with self._lock:
            recipe = res.recipes.get(server_id)
        if recipe is not None:
            return recipe
        recipe = self._replicas[server_id].get_recipe(user_id, lookup_key)
        if len(recipe) != len(res.secret_sizes) or any(
            entry.secret_size != size
            for entry, size in zip(recipe, res.secret_sizes)
        ):
            # The replica describes a different version than the cached
            # resolution: surface it as the overwrite race so the
            # retry-once path re-resolves instead of decoding garbage.
            raise NotFoundError(
                f"replica {server_id} recipe disagrees with the cached "
                f"resolution (backup overwritten?)"
            )
        with self._lock:
            res.recipes[server_id] = recipe
        return recipe

    # ------------------------------------------------------------------
    # lifecycle & observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counters for the bench/CLI surface (hit ratio is the fig10
        gate).

        A thin view: the canonical counters live in the process metrics
        registry (``gateway_cache_*``, ``gateway_resolutions_total``);
        the cache fields here come from one consistent
        :meth:`~repro.gateway.cache.HotContainerCache.stats_snapshot`
        read rather than per-field locking.
        """
        with self._lock:
            resolutions = len(self._resolutions)
        cache = self.cache.stats_snapshot()
        return {
            "cache_hits": cache["hits"],
            "cache_misses": cache["misses"],
            "cache_hit_ratio": cache["hit_rate"],
            "cache_bytes": cache["size_bytes"],
            "cache_entries": cache["entries"],
            "resolutions": resolutions,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._own_replicas:
            for replica in self._replicas.values():
                replica.close()

    def __enter__(self) -> "GatewayService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
