"""Shared-memory encode-slab transport and the slab release hook."""

import threading
from concurrent.futures import Future

import pytest

from repro.client.workers import (
    SharedSlabTransport,
    SlabbedShareSets,
    _attach_slab_segment,
    shared_slabs_available,
)
from repro.crypto.drbg import DRBG
from repro.system.cdstore import CDStoreSystem

pytestmark = pytest.mark.skipif(
    not shared_slabs_available(), reason="multiprocessing.shared_memory unavailable"
)


class TestSharedSlabTransport:
    def test_publish_round_trip(self):
        transport = SharedSlabTransport()
        secrets = [b"alpha", b"", b"gamma" * 100]
        try:
            name, spans = transport.publish(0, secrets)
            assert [length for _, length in spans] == [5, 0, 500]
            segment = _attach_slab_segment(name)
            try:
                view = segment.buf
                read = [bytes(view[off : off + length]) for off, length in spans]
            finally:
                segment.close()
            assert read == secrets
        finally:
            transport.close()

    def test_release_unlinks_segment(self):
        transport = SharedSlabTransport()
        name, _ = transport.publish(3, [b"payload"])
        assert len(transport) == 1
        transport.release(3)
        assert len(transport) == 0
        with pytest.raises(FileNotFoundError):
            _attach_slab_segment(name)
        transport.release(3)  # idempotent

    def test_close_sweeps_everything(self):
        transport = SharedSlabTransport()
        names = [transport.publish(i, [bytes([i])])[0] for i in range(3)]
        transport.release(1)
        transport.close()
        assert len(transport) == 0
        for name in names:
            with pytest.raises(FileNotFoundError):
                _attach_slab_segment(name)

    def test_empty_slab_publishable(self):
        # Zero-byte slabs still need a (minimum-size) segment.
        transport = SharedSlabTransport()
        try:
            name, spans = transport.publish(0, [b""])
            assert spans == [(0, 0)]
            segment = _attach_slab_segment(name)
            segment.close()
        finally:
            transport.close()


class TestSlabReleaseHook:
    @staticmethod
    def _view(spans, *, depth, consumers, released):
        def submit(start: int, end: int) -> Future:
            future: Future = Future()
            future.set_result([f"s{start}"])
            return future

        return SlabbedShareSets(
            spans=spans,
            submit=submit,
            depth=depth,
            consumers=consumers,
            release=released.append,
        )

    def test_hook_fires_once_per_slab_in_order(self):
        released: list[int] = []
        spans = [(0, 1), (1, 2), (2, 3)]
        view = self._view(spans, depth=2, consumers=1, released=released)
        with view.stream() as stream:
            list(stream)
        assert released == [0, 1, 2]

    def test_hook_waits_for_every_consumer(self):
        released: list[int] = []
        spans = [(0, 1), (1, 2)]
        view = self._view(spans, depth=2, consumers=2, released=released)
        with view.stream() as stream:
            list(stream)
        assert released == []  # one consumer is not enough
        with view.stream() as stream:
            list(stream)
        assert released == [0, 1]

    def test_abandoned_consumer_still_releases(self):
        released: list[int] = []
        spans = [(0, 1), (1, 2), (2, 3)]
        view = self._view(spans, depth=1, consumers=2, released=released)

        with pytest.raises(RuntimeError):
            with view.stream() as stream:
                for _item in stream:
                    raise RuntimeError("consumer died")

        done = threading.Event()

        def survivor():
            with view.stream() as stream:
                list(stream)
            done.set()

        worker = threading.Thread(target=survivor)
        worker.start()
        worker.join(timeout=5.0)
        assert done.is_set()
        assert released == [0, 1, 2]

    def test_eager_mode_fires_hook_too(self):
        released: list[int] = []
        futures = []
        for start in (0, 1):
            future: Future = Future()
            future.set_result([f"s{start}"])
            futures.append(future)
        view = SlabbedShareSets(
            futures, [(0, 1), (1, 2)], consumers=1, release=released.append
        )
        with view.stream() as stream:
            list(stream)
        assert released == [0, 1]


@pytest.mark.slow
class TestSharedSlabsEndToEnd:
    def test_process_workers_stream_through_shared_memory(self):
        """Backup + restore with process encoders and streaming slabs: the
        payload rides shared memory, and every segment is gone afterwards."""
        system = CDStoreSystem(
            n=4,
            k=3,
            salt=b"shm-org",
            workers="process",
            threads=2,
            pipeline_depth=2,
            chunker="gear:avg=4096,min=1024,max=8192",
        )
        data = DRBG("shm-e2e").random_bytes(1 << 20)
        try:
            client = system.client("alice")
            receipt = client.upload("/blob.bin", data)
            assert receipt.secret_count > 4  # multiple slabs exercised
            assert client.download("/blob.bin") == data
            # Intra-user dedup across a re-upload (shared-memory path too).
            again = client.upload("/blob-copy.bin", data)
            assert again.intra_user_saving > 0.99
        finally:
            system.close()
