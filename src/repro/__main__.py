"""``python -m repro`` — the CDStore command-line interface."""

import sys

from repro.cli import main

sys.exit(main())
