"""Shared AONT-package ⇄ Reed-Solomon share plumbing.

All three AONT-RS-family codecs follow the same outer shape (§2, §3.2):

1. transform the secret into an AONT package (construction-specific);
2. pad the package with zeroes so it divides evenly into ``k`` pieces;
3. encode the ``k`` pieces into ``n`` shares with a *systematic*
   Reed-Solomon code, labelling share ``i`` for cloud ``i``.

Decoding reverses the pipeline from any ``k`` shares.  This base class owns
steps 2-3 and the share bookkeeping; subclasses provide the AONT.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.erasure.reed_solomon import ReedSolomon
from repro.errors import CodingError
from repro.sharing.base import SecretSharingScheme, ShareSet

__all__ = ["PackageRSCodec"]


class PackageRSCodec(SecretSharingScheme):
    """Base class: AONT package + systematic RS dispersal.

    Confidentiality degree is r = k - 1 in the computational sense for all
    AONT-based codecs (Table 1).
    """

    def __init__(self, n: int, k: int, rs_matrix: str = "vandermonde") -> None:
        super().__init__(n, k, r=k - 1)
        self._rs = ReedSolomon(n, k, matrix=rs_matrix)

    # ------------------------------------------------------------------
    # subclass contract
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _make_package(self, secret: bytes) -> bytes:
        """Transform ``secret`` into an AONT package."""

    @abc.abstractmethod
    def _package_size(self, secret_size: int) -> int:
        """Exact package size for a ``secret_size``-byte secret."""

    @abc.abstractmethod
    def _open_package(self, package: bytes, secret_size: int) -> bytes:
        """Invert the AONT and verify integrity where supported."""

    def _draw_keys(self, secrets: Sequence[bytes]) -> list[bytes] | None:
        """Pre-draw per-secret randomness in *sequence* order, or None.

        Called once per batch before secrets are regrouped by length, so a
        seeded RNG produces the same key stream whether the caller loops
        :meth:`split` or calls :meth:`encode_batch` — even for ragged
        batches.  Content-keyed (convergent) codecs return None.
        """
        return None

    def _make_packages(
        self, secrets: Sequence[bytes], keys: Sequence[bytes] | None = None
    ) -> np.ndarray:
        """Transform equal-length secrets into a ``(B, package)`` stack.

        ``keys`` is the :meth:`_draw_keys` slice for this group (None for
        convergent codecs).  The default loops over :meth:`_make_package`;
        vectorised subclasses override to mask the whole stack in bulk.
        """
        assert keys is None, "subclasses drawing keys must override _make_packages"
        return np.stack(
            [
                np.frombuffer(self._make_package(secret), dtype=np.uint8)
                for secret in secrets
            ]
        )

    # ------------------------------------------------------------------
    # SecretSharingScheme implementation
    # ------------------------------------------------------------------
    def split(self, secret: bytes) -> ShareSet:
        package = self._make_package(secret)
        shares = tuple(self._rs.encode(package))
        return ShareSet(shares=shares, secret_size=len(secret), scheme=self.name)

    def recover(self, shares: dict[int, bytes], secret_size: int) -> bytes:
        self._check_recover_args(shares, secret_size)
        package_size = self._package_size(secret_size)
        package = self._rs.decode(shares, data_size=package_size)
        return self._open_package(package, secret_size)

    # ------------------------------------------------------------------
    # batch interface (vectorised across same-length secrets)
    # ------------------------------------------------------------------
    def encode_batch(self, secrets: Sequence[bytes]) -> list[ShareSet]:
        """Disperse a whole slab of secrets with batched kernels.

        Secrets of equal length are stacked so the AONT mask and the
        Reed-Solomon generator multiply each run once over a 2-D array
        instead of once per secret; ragged batches cost one stack pass per
        distinct length.  Output is element-wise identical to
        :meth:`split`.
        """
        secrets = list(secrets)
        out: list[ShareSet | None] = [None] * len(secrets)
        keys = self._draw_keys(secrets)
        groups: dict[int, list[int]] = {}
        for i, secret in enumerate(secrets):
            groups.setdefault(len(secret), []).append(i)
        for length, members in groups.items():
            packages = self._make_packages(
                [secrets[i] for i in members],
                [keys[i] for i in members] if keys is not None else None,
            )
            coded = self._rs.encode_stack(packages)
            for row, i in enumerate(members):
                shares = tuple(coded[row, j].tobytes() for j in range(self.n))
                out[i] = ShareSet(
                    shares=shares, secret_size=length, scheme=self.name
                )
        return out  # type: ignore[return-value]

    def decode_batch(
        self, requests: Sequence[tuple[dict[int, bytes], int]]
    ) -> list[bytes]:
        """Recover a whole slab of secrets with batched kernels.

        Requests recovered from the same ``k``-subset at the same share
        size decode with one inverse-matrix multiply; the AONT is opened
        (and integrity-checked) per secret.  Element-wise identical to
        :meth:`recover`, including which shares win when extras are given
        (lowest ``k`` indices).
        """
        requests = list(requests)
        out: list[bytes | None] = [None] * len(requests)
        groups: dict[tuple[tuple[int, ...], int], list[int]] = {}
        for i, (shares, secret_size) in enumerate(requests):
            self._check_recover_args(shares, secret_size)
            chosen = tuple(sorted(shares)[: self.k])
            sizes = {len(shares[idx]) for idx in chosen}
            if len(sizes) != 1:
                raise CodingError(
                    f"shares have inconsistent sizes: {sorted(sizes)}"
                )
            groups.setdefault((chosen, sizes.pop()), []).append(i)
        for (chosen, share_size), members in groups.items():
            stack = np.empty((len(members), self.k, share_size), dtype=np.uint8)
            for row, i in enumerate(members):
                shares = requests[i][0]
                for j, idx in enumerate(chosen):
                    stack[row, j] = np.frombuffer(shares[idx], dtype=np.uint8)
            data = self._rs.decode_stack(chosen, stack)
            for row, i in enumerate(members):
                secret_size = requests[i][1]
                package_size = self._package_size(secret_size)
                if package_size > data.shape[1]:
                    raise CodingError(
                        f"package size {package_size} exceeds decoded "
                        f"size {data.shape[1]}"
                    )
                package = data[row, :package_size].tobytes()
                out[i] = self._open_package(package, secret_size)
        return out  # type: ignore[return-value]

    def share_size(self, secret_size: int) -> int:
        """Size in bytes of each share for a ``secret_size``-byte secret."""
        return self._rs.piece_size(self._package_size(secret_size))

    def expected_blowup(self, secret_size: int) -> float:
        """Measured blowup; asymptotically (n/k)(1 + Skey/Ssec) (Table 1)."""
        if secret_size == 0:
            return float("inf")
        return self.n * self.share_size(secret_size) / secret_size
