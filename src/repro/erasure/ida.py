"""Rabin's information dispersal algorithm (IDA) [50].

IDA is the r = 0 extreme of the secret-sharing spectrum in Table 1 of the
paper: it disperses a secret into ``n`` shares of size ``len(secret)/k``
such that any ``k`` reconstruct it, with the minimum possible storage blowup
``n/k`` — but *no* confidentiality (each share leaks a linear projection of
the data).

Our IDA is a thin semantic wrapper over the systematic Reed-Solomon codec:
Rabin's original construction uses any n x k matrix whose every k rows are
invertible, and a systematic MDS generator is exactly that.  RSSS and SSMS
(§2) both build on this primitive.
"""

from __future__ import annotations

from repro.erasure.reed_solomon import ReedSolomon
from repro.errors import ParameterError

__all__ = ["InformationDispersal"]


class InformationDispersal:
    """(n, k) information dispersal with storage blowup n/k.

    ``disperse`` produces ``n`` shares; ``reconstruct`` needs any ``k`` of
    them plus the original length (IDA pads to a multiple of ``k``).
    """

    def __init__(self, n: int, k: int, matrix: str = "vandermonde") -> None:
        if not 0 < k <= n:
            raise ParameterError(f"require 0 < k <= n, got (n={n}, k={k})")
        self.n = n
        self.k = k
        self._rs = ReedSolomon(n, k, matrix=matrix)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InformationDispersal(n={self.n}, k={self.k})"

    def share_size(self, data_size: int) -> int:
        """Size in bytes of each share for a ``data_size``-byte input."""
        return self._rs.piece_size(data_size)

    def disperse(self, data: bytes) -> list[bytes]:
        """Split ``data`` into ``n`` shares, any ``k`` of which suffice."""
        return self._rs.encode(data)

    def reconstruct(self, shares: dict[int, bytes], data_size: int) -> bytes:
        """Rebuild the original ``data_size`` bytes from any ``k`` shares."""
        return self._rs.decode(shares, data_size=data_size)
