"""DUR-001/DUR-002 fixture: a torn publish and a justified ack suppression.

Lives in a directory named ``storage/`` so it falls inside the durability
checker's scope.  Parsed (never imported) by tests/test_analysis_checkers.py.
"""

import os


def bad_publish(tmp, final, data):
    with tmp.open("wb") as handle:
        handle.write(data)
    tmp.replace(final)  # TRUE-POSITIVE: publish with no fsync barrier


def bad_unflushed_fsync(tmp, final, data):
    with tmp.open("wb") as handle:
        handle.write(data)
        os.fsync(handle.fileno())
    tmp.replace(final)  # TRUE-POSITIVE: fsync of an unflushed buffer


def good_publish(tmp, final, data):
    with tmp.open("wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(final)


def ack_advisory_hint(sock, path, payload):
    path.write_text("cache hint")
    # The hint is rebuilt from scratch on startup; losing it costs one
    # cold cache, never correctness.
    sock.sendall(payload)  # analysis: ignore[DUR-002] -- advisory cache hint, loss is harmless
