"""LIFE-001: acquired resources must be released on every path.

Tracked acquisitions — the three resource kinds this codebase leaks when
it leaks: sockets (``socket.socket``, ``create_connection``,
``.accept()``), file handles (``open``/``Path.open``) and shared memory
(``SharedMemory(...)``).

A tracked acquisition assigned to a local name is *safe* when one of:

* the name is used as a context manager (``with sock:`` or inside any
  ``with`` item expression);
* a release method (``close``/``unlink``/``shutdown``/…) is called on it
  from a ``finally`` block or an ``except`` handler — the error path is
  covered;
* ownership is handed off — stored into ``self.<field>``/a container,
  returned, yielded, or passed to another call — **and** every call
  between acquisition and the first handoff either cannot escape (it sits
  in a ``try`` whose handlers release the resource, or swallow broadly
  without re-raising) or is itself the release.

Assigning straight into an attribute (``self._fh = open(...)``) is an
immediate ownership handoff and is always safe — the field's owner is
responsible from that point on.

Everything else is a leak-on-exception: any call raising between the
acquisition and the handoff abandons the resource.  That is precisely
the shape of the bugs this PR fixes (``setsockopt`` after
``create_connection``, ``settimeout`` after ``accept``, slab spans
written before the segment is registered for sweeping).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.checkers.durability import walk_shallow
from repro.analysis.engine import FileContext, Finding

__all__ = ["check_lifecycle"]

_RELEASERS = frozenset({"close", "unlink", "shutdown", "release", "terminate"})


def _acquisition_kind(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "file handle"
        if func.id == "SharedMemory":
            return "shared memory segment"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "open":
        return "file handle"
    if func.attr == "SharedMemory":
        return "shared memory segment"
    if func.attr == "create_connection":
        return "socket"
    if func.attr == "socket" and isinstance(func.value, ast.Name) and (
        func.value.id == "socket"
    ):
        return "socket"
    if func.attr == "accept":
        return "socket"
    return None


def _bound_name(target: ast.expr, kind: str) -> tuple[str | None, bool]:
    """``(local_name, handed_off)`` for an acquisition's assign target."""
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        return None, True  # self._fh = open(...): immediate ownership handoff
    if isinstance(target, ast.Name):
        return target.id, False
    if isinstance(target, ast.Tuple) and kind == "socket" and target.elts:
        # conn, addr = listener.accept()
        first = target.elts[0]
        if isinstance(first, ast.Name):
            return first.id, False
    return None, False


def _mentions(ctx: FileContext, node: ast.AST, name: str) -> bool:
    """``name`` used in value position (not as a method receiver) in node.

    ``self._sock = sock`` and ``Thread(args=(conn,))`` mention the
    resource; ``data = f.read()`` does not — ``f`` there is the receiver
    of an operation, not an ownership transfer.
    """
    return any(
        isinstance(sub, ast.Name)
        and sub.id == name
        and not isinstance(ctx.parents.get(sub), ast.Attribute)
        for sub in ast.walk(node)
    )


def _is_release(call: ast.Call, name: str) -> bool:
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _RELEASERS
        and isinstance(call.func.value, ast.Name)
        and call.func.value.id == name
    )


def _handler_is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    return all(
        isinstance(t, ast.Name) and t.id in {"Exception", "BaseException"}
        for t in types
    )


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@dataclass
class _Acquisition:
    name: str
    kind: str
    line: int


def _try_excuses(ctx: FileContext, call: ast.Call, fn: ast.AST, name: str) -> bool:
    """Whether ``call`` cannot leak ``name``: an enclosing try releases it
    (handler or finally) or swallows every exception without re-raising."""
    node: ast.AST = call
    while node is not fn:
        parent = ctx.parents.get(node)
        if parent is None:
            return False
        if isinstance(parent, ast.Try) and node in parent.body:
            releases = [
                sub
                for region in (parent.finalbody, *[h.body for h in parent.handlers])
                for stmt in region
                for sub in ast.walk(stmt)
                if isinstance(sub, ast.Call) and _is_release(sub, name)
            ]
            if releases:
                return True
            if parent.handlers and all(
                _handler_is_broad(h) and not _handler_reraises(h)
                for h in parent.handlers
            ):
                return True
        node = parent
    return False


def _guarded_release_exists(ctx: FileContext, fn: ast.AST, name: str) -> bool:
    for node in walk_shallow(fn):
        if isinstance(node, ast.Call) and _is_release(node, name):
            walker: ast.AST = node
            while walker is not fn:
                parent = ctx.parents.get(walker)
                if parent is None:
                    break
                if isinstance(parent, ast.ExceptHandler):
                    return True
                if isinstance(parent, ast.Try) and walker in parent.finalbody:
                    return True
                walker = parent
    return False


def _check_function(ctx: FileContext, fn: ast.AST) -> list[Finding]:
    acquisitions: list[_Acquisition] = []
    for node in walk_shallow(fn):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        kind = _acquisition_kind(node.value)
        if kind is None:
            continue
        for target in node.targets:
            name, handed_off = _bound_name(target, kind)
            if handed_off or name is None:
                continue
            acquisitions.append(_Acquisition(name, kind, node.lineno))

    findings: list[Finding] = []
    for acq in acquisitions:
        if any(
            isinstance(node, (ast.With, ast.AsyncWith))
            and any(
                _mentions(ctx, item.context_expr, acq.name) for item in node.items
            )
            for node in walk_shallow(fn)
        ):
            continue
        if _guarded_release_exists(ctx, fn, acq.name):
            continue

        handoff_line: int | None = None
        for node in walk_shallow(fn):
            if getattr(node, "lineno", 0) <= acq.line:
                continue
            line = node.lineno
            is_handoff = False
            if isinstance(node, ast.Assign) and _mentions(ctx, node.value, acq.name):
                is_handoff = True
            elif isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
                is_handoff = _mentions(ctx, node.value, acq.name)
            elif isinstance(node, ast.Call) and not _is_release(node, acq.name):
                in_args = any(
                    _mentions(ctx, a, acq.name) for a in node.args
                ) or any(_mentions(ctx, kw.value, acq.name) for kw in node.keywords)
                is_handoff = in_args
            if is_handoff:
                handoff_line = line if handoff_line is None else min(handoff_line, line)

        risky = [
            node
            for node in walk_shallow(fn)
            if isinstance(node, ast.Call)
            and acq.line < getattr(node, "lineno", 0)
            and (handoff_line is None or node.lineno < handoff_line)
            and not _is_release(node, acq.name)
            and not _try_excuses(ctx, node, fn, acq.name)
        ]
        if handoff_line is not None and not risky:
            continue
        detail = (
            f"call(s) on line(s) {sorted({r.lineno for r in risky})} can raise "
            f"before ownership is handed off"
            if risky
            else "no context manager, try/finally release, or ownership handoff"
        )
        findings.append(
            ctx.finding(
                acq.line,
                "LIFE-001",
                (
                    f"{acq.kind} '{acq.name}' is not released on all paths: "
                    f"{detail} — use `with`, release in finally/except, or "
                    f"hand off before fallible calls"
                ),
            )
        )
    return findings


def check_lifecycle(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            findings.extend(_check_function(ctx, node))
    return findings
