"""Client + system integration: upload/restore, failures, side channels."""

import pytest

from repro.chunking.fixed import FixedChunker
from repro.chunking.rabin import RabinChunker
from repro.crypto.drbg import DRBG
from repro.errors import (
    CloudUnavailableError,
    InsufficientCloudsError,
    NotFoundError,
    ParameterError,
)
from repro.system.cdstore import CDStoreSystem


@pytest.fixture
def system() -> CDStoreSystem:
    return CDStoreSystem(n=4, k=3, salt=b"org")


def data_of(size: int, seed: str = "payload") -> bytes:
    return DRBG(seed).random_bytes(size)


class TestBackupRestore:
    def test_roundtrip(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(50_000)
        receipt = client.upload("/home/alice/docs.tar", payload)
        assert receipt.file_size == 50_000
        assert receipt.secret_count == 13
        assert client.download("/home/alice/docs.tar") == payload

    def test_roundtrip_with_rabin_chunking(self, system):
        chunker = RabinChunker(avg_size=1024, min_size=256, max_size=4096)
        client = system.client("alice", chunker=chunker)
        payload = data_of(30_000)
        client.upload("/backup.tar", payload)
        assert client.download("/backup.tar") == payload

    def test_empty_file(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        client.upload("/empty", b"")
        assert client.download("/empty") == b""

    def test_multiple_files_per_user(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        files = {f"/f{i}": data_of(10_000 + i, seed=f"f{i}") for i in range(5)}
        for path, payload in files.items():
            client.upload(path, payload)
        for path, payload in files.items():
            assert client.download(path) == payload

    def test_unknown_file_raises(self, system):
        client = system.client("alice")
        with pytest.raises(NotFoundError):
            client.download("/never-uploaded")

    def test_same_path_different_users_are_distinct(self, system):
        alice = system.client("alice", chunker=FixedChunker(4096))
        bob = system.client("bob", chunker=FixedChunker(4096))
        pa, pb = data_of(9_000, "a"), data_of(9_000, "b")
        alice.upload("/shared/path", pa)
        bob.upload("/shared/path", pb)
        assert alice.download("/shared/path") == pa
        assert bob.download("/shared/path") == pb

    def test_threaded_encoding(self, system):
        client = system.client("turbo", chunker=FixedChunker(2048), threads=3)
        payload = data_of(40_000)
        client.upload("/fast", payload)
        assert client.download("/fast") == payload


class TestDeduplication:
    def test_intra_user_dedup_on_duplicate_upload(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(40_000)
        first = client.upload("/v1", payload)
        second = client.upload("/v2", payload)
        assert first.intra_user_saving < 0.05
        assert second.intra_user_saving > 0.99
        assert second.transferred_share_bytes == 0

    def test_partial_modification_savings(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = bytearray(data_of(40_000))
        client.upload("/v1", bytes(payload))
        payload[0:4096] = data_of(4096, "new-chunk")  # change one chunk
        receipt = client.upload("/v2", bytes(payload))
        assert 0.85 < receipt.intra_user_saving < 0.95

    def test_inter_user_dedup_is_server_side_only(self, system):
        """Bob's identical upload transfers everything (side-channel safe)
        but stores nothing new (inter-user dedup)."""
        alice = system.client("alice", chunker=FixedChunker(4096))
        bob = system.client("bob", chunker=FixedChunker(4096))
        payload = data_of(40_000)
        alice.upload("/a", payload)
        stored_before = system.global_stats().physical_shares
        receipt = bob.upload("/b", payload)
        assert receipt.intra_user_saving == 0.0  # full transfer: no leak
        assert system.global_stats().physical_shares == stored_before

    def test_upload_pattern_independent_of_other_users(self, system):
        """The dedup answers bob observes are identical whether or not
        alice previously uploaded the same data (§3.3)."""
        payload = data_of(40_000)
        # System A: alice uploaded the payload first.
        sys_a = CDStoreSystem(n=4, k=3, salt=b"org")
        sys_a.client("alice", chunker=FixedChunker(4096)).upload("/a", payload)
        receipt_a = sys_a.client("bob", chunker=FixedChunker(4096)).upload("/b", payload)
        # System B: bob is alone.
        sys_b = CDStoreSystem(n=4, k=3, salt=b"org")
        receipt_b = sys_b.client("bob", chunker=FixedChunker(4096)).upload("/b", payload)
        assert receipt_a.transferred_share_bytes == receipt_b.transferred_share_bytes
        assert receipt_a.wire_bytes_per_cloud == receipt_b.wire_bytes_per_cloud

    def test_global_stats_consistency(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(40_000)
        client.upload("/a", payload)
        client.upload("/b", payload)
        stats = system.global_stats()
        assert stats.logical_data == 80_000
        assert stats.transferred_shares == stats.physical_shares
        assert stats.intra_user_saving == pytest.approx(0.5, abs=0.01)
        assert stats.dedup_ratio == pytest.approx(2.0, abs=0.05)


class TestFailuresAndRepair:
    def test_restore_with_one_cloud_down(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(30_000)
        client.upload("/f", payload)
        for idx in range(4):
            system.fail_cloud(idx)
            assert client.download("/f") == payload
            system.recover_cloud(idx)

    def test_restore_fails_below_k(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        client.upload("/f", data_of(10_000))
        system.fail_cloud(0)
        system.fail_cloud(1)
        with pytest.raises(InsufficientCloudsError):
            client.download("/f")

    def test_upload_requires_all_clouds(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        system.fail_cloud(2)
        with pytest.raises(CloudUnavailableError):
            client.upload("/f", data_of(5_000))

    def test_wipe_and_repair(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(30_000)
        client.upload("/f", payload)
        client.flush()
        system.wipe_cloud(1)
        rebuilt = system.repair_cloud(1)
        assert rebuilt > 0
        system.fail_cloud(0)  # force the repaired cloud into the quorum
        assert client.download("/f") == payload

    def test_repair_needs_k_healthy_donors(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        client.upload("/f", data_of(10_000))
        system.wipe_cloud(0)
        system.fail_cloud(1)
        system.fail_cloud(2)
        with pytest.raises(InsufficientCloudsError):
            system.repair_cloud(0)

    def test_corrupted_share_brute_force(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(20_000)
        client.upload("/f", payload)
        client.flush()
        backend = system.clouds[0].backend
        for key in backend.list_keys("container-"):
            backend.corrupt(key, offset=64, flips=16)
        assert client.download("/f") == payload


class TestDeletion:
    def test_delete_then_download_fails(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        client.upload("/f", data_of(10_000))
        client.delete("/f")
        with pytest.raises(NotFoundError):
            client.download("/f")

    def test_delete_requires_all_clouds(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        client.upload("/f", data_of(10_000))
        system.fail_cloud(3)
        with pytest.raises(CloudUnavailableError):
            client.delete("/f")


class TestSystemConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            CDStoreSystem(n=3, k=4)
        from repro.cloud.network import Link
        from repro.cloud.provider import CloudProvider

        clouds = [CloudProvider("x", Link(1), Link(1))]
        with pytest.raises(ParameterError):
            CDStoreSystem(n=4, k=3, clouds=clouds)

    def test_client_is_cached(self, system):
        assert system.client("alice") is system.client("alice")

    def test_durable_indices(self, tmp_path):
        system = CDStoreSystem(n=4, k=3, index_root=tmp_path)
        client = system.client("alice", chunker=FixedChunker(4096))
        payload = data_of(15_000)
        client.upload("/f", payload)
        assert client.download("/f") == payload
        system.close()

    def test_stored_bytes_accounting(self, system):
        client = system.client("alice", chunker=FixedChunker(4096))
        client.upload("/f", data_of(30_000))
        stored = system.stored_bytes()
        # Stored bytes = physical shares + recipes + container framing; at
        # (4,3) that is at least 4/3 of the data.
        assert stored > 30_000 * 4 / 3
