"""LOCK-001 fixture: one unlocked mutation, one justified suppression.

Parsed (never imported) by tests/test_analysis_checkers.py.
"""

import threading


class Registry:
    # Dict-literal form of the guarded_by() map — both spellings are
    # statically readable by the checker.
    GUARDED_BY = {"_items": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def bad_add(self, item):
        self._items.append(item)  # TRUE-POSITIVE: no lock held

    def good_add(self, item):
        with self._lock:
            self._items.append(item)

    def good_rebind(self):
        with self._lock:
            self._items = []

    def drain_after_join(self):
        # Only called from close() after every worker thread has joined,
        # so no concurrent access is possible.
        self._items.clear()  # analysis: ignore[LOCK-001] -- single-threaded teardown, workers already joined
