"""End-to-end integration scenarios combining many subsystems at once."""

import os

import pytest

from repro.chunking import FixedChunker, RabinChunker
from repro.cloud.network import Link
from repro.cloud.provider import CloudProvider
from repro.crypto.drbg import DRBG
from repro.storage.backend import LocalDirBackend
from repro.system.cdstore import CDStoreSystem
from repro.workloads import FSLWorkload, VMWorkload, materialize

pytestmark = pytest.mark.slow  # deselect with -m "not slow" when iterating


class TestDurableDeployment:
    """LocalDir backends + LSM indices: everything on disk, reopened."""

    def test_full_lifecycle_on_disk(self, tmp_path):
        def make_system():
            clouds = [
                CloudProvider(
                    name=f"cloud-{i}",
                    uplink=Link(100.0),
                    downlink=Link(100.0),
                    backend=LocalDirBackend(tmp_path / f"cloud-{i}"),
                )
                for i in range(4)
            ]
            return CDStoreSystem(
                n=4, k=3, salt=b"org", clouds=clouds, index_root=tmp_path / "idx"
            )

        data = DRBG("durable").random_bytes(80_000)
        system = make_system()
        client = system.client("alice", chunker=FixedChunker(4096))
        client.upload("/persisted.tar", data)
        client.flush()
        system.close()

        # A brand-new process (fresh objects) sees the same deployment.
        system2 = make_system()
        client2 = system2.client("alice", chunker=FixedChunker(4096))
        assert client2.download("/persisted.tar") == data
        assert client2.list_files() == ["/persisted.tar"]
        # Dedup state also survived: re-upload transfers nothing.
        receipt = client2.upload("/persisted-v2.tar", data)
        assert receipt.transferred_share_bytes == 0
        system2.close()


class TestWorkloadDrivenCampaign:
    """Synthetic workloads materialised through the real pipeline."""

    @pytest.mark.parametrize("workload_cls,kwargs", [
        (FSLWorkload, dict(users=2, weeks=3, chunks_per_user=30,
                           avg_chunk=4096, min_chunk=4096, max_chunk=4096)),
        (VMWorkload, dict(users=3, weeks=2, master_chunks=40)),
    ])
    def test_campaign_restores_bit_exact(self, workload_cls, kwargs):
        workload = workload_cls(**kwargs)
        system = CDStoreSystem(n=4, k=3, salt=b"org")
        for snapshot in workload.all_snapshots():
            payload = b"".join(materialize(c) for c in snapshot.chunks)
            client = system.client(snapshot.user, chunker=FixedChunker(4096))
            client.upload(f"/{snapshot.user}/w{snapshot.week}", payload)
        # Every backup restores, even with a failed cloud.
        system.fail_cloud(1)
        for snapshot in workload.all_snapshots():
            payload = b"".join(materialize(c) for c in snapshot.chunks)
            client = system.client(snapshot.user)
            assert client.download(f"/{snapshot.user}/w{snapshot.week}") == payload

    def test_vm_campaign_inter_user_savings_materialise(self):
        """Cloned images dedup across users in the *real* system, not just
        the accounting simulator."""
        workload = VMWorkload(users=4, weeks=1, master_chunks=50)
        system = CDStoreSystem(n=4, k=3, salt=b"org")
        for snapshot in workload.week_snapshots(1):
            payload = b"".join(materialize(c) for c in snapshot.chunks)
            client = system.client(snapshot.user, chunker=FixedChunker(4096))
            client.upload("/image", payload)
        stats = system.global_stats()
        assert stats.inter_user_saving > 0.6


class TestMixedOperations:
    def test_interleaved_backup_restore_delete_gc(self):
        system = CDStoreSystem(n=4, k=3, salt=b"org")
        client = system.client("alice", chunker=FixedChunker(4096))
        keep = DRBG("keep").random_bytes(40_000)
        drop = DRBG("drop").random_bytes(40_000)
        client.upload("/keep", keep)
        client.upload("/drop", drop)
        client.flush()
        stored_before = system.stored_bytes()
        client.delete("/drop")
        freed = sum(server.collect_garbage() for server in system.servers)
        assert freed > 0
        assert system.stored_bytes() < stored_before
        assert client.download("/keep") == keep

    def test_gc_preserves_cross_user_shares(self):
        system = CDStoreSystem(n=4, k=3, salt=b"org")
        shared = DRBG("shared").random_bytes(30_000)
        alice = system.client("alice", chunker=FixedChunker(4096))
        bob = system.client("bob", chunker=FixedChunker(4096))
        alice.upload("/a", shared)
        bob.upload("/b", shared)
        alice.flush()
        alice.delete("/a")
        for server in system.servers:
            server.collect_garbage()
        assert bob.download("/b") == shared

    def test_repair_after_gc(self):
        system = CDStoreSystem(n=4, k=3, salt=b"org")
        client = system.client("alice", chunker=FixedChunker(4096))
        data = DRBG("rg").random_bytes(30_000)
        client.upload("/f", data)
        client.upload("/temp", DRBG("tmp").random_bytes(20_000))
        client.flush()
        client.delete("/temp")
        for server in system.servers:
            server.collect_garbage()
        system.wipe_cloud(3)
        system.repair_cloud(3)
        system.fail_cloud(0)
        assert client.download("/f") == data

    def test_rabin_chunked_versions_dedup_across_insertion(self):
        """The §4.2 argument end-to-end: an insertion at the front of the
        file must not defeat deduplication under Rabin chunking."""
        system = CDStoreSystem(n=4, k=3, salt=b"org")
        chunker = RabinChunker(avg_size=2048, min_size=512, max_size=8192)
        client = system.client("alice", chunker=chunker)
        base = DRBG("rabin-e2e").random_bytes(120_000)
        client.upload("/v1", base)
        receipt = client.upload("/v2", os.urandom(64) + base)
        assert receipt.intra_user_saving > 0.6
        assert client.download("/v2")[64:] == base


class TestScaleSmoke:
    def test_many_small_files(self):
        system = CDStoreSystem(n=4, k=3)
        client = system.client("alice", chunker=FixedChunker(2048))
        files = {}
        for i in range(40):
            data = DRBG(f"file{i}").random_bytes(3000 + 17 * i)
            files[f"/f{i}"] = data
            client.upload(f"/f{i}", data)
        assert len(client.list_files()) == 40
        for path, data in files.items():
            assert client.download(path) == data

    def test_larger_file_many_containers(self):
        system = CDStoreSystem(n=4, k=3)
        client = system.client("alice", chunker=FixedChunker(8192))
        data = DRBG("big").random_bytes(1 << 20)
        client.upload("/big", data)
        client.flush()
        assert client.download("/big") == data
