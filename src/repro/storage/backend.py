"""Object-storage backends.

The storage backend plays the role of S3/Google Cloud Storage/Azure Blob in
the paper's architecture (Figure 1): a flat keyspace of immutable objects
(containers, index snapshots).  Two implementations:

* :class:`MemoryBackend` — dict-backed; used by the simulated clouds and
  most tests.  Supports failure injection (see
  :meth:`MemoryBackend.corrupt`) for integrity experiments.
* :class:`LocalDirBackend` — one file per object under a directory; the
  LAN-testbed equivalent ("each CDStore server mounts the storage backend
  on a local hard disk", §5.1).
"""

from __future__ import annotations

import abc
import os
from pathlib import Path

from repro.errors import NotFoundError, StorageError

__all__ = ["StorageBackend", "MemoryBackend", "LocalDirBackend"]


class StorageBackend(abc.ABC):
    """Flat immutable-object store with byte-counting for cost analysis."""

    def __init__(self) -> None:
        self.bytes_written = 0
        self.bytes_read = 0
        self.put_ops = 0
        self.get_ops = 0

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _put(self, key: str, data: bytes) -> None: ...

    @abc.abstractmethod
    def _get(self, key: str) -> bytes: ...

    @abc.abstractmethod
    def _delete(self, key: str) -> None: ...

    @abc.abstractmethod
    def _exists(self, key: str) -> bool: ...

    @abc.abstractmethod
    def list_keys(self, prefix: str = "") -> list[str]:
        """All object keys beginning with ``prefix``, sorted."""

    # ------------------------------------------------------------------
    def put_object(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key`` (overwriting any prior object)."""
        self._put(key, bytes(data))
        self.bytes_written += len(data)
        self.put_ops += 1

    def get_object(self, key: str) -> bytes:
        """Fetch the object at ``key``; raises :class:`NotFoundError`."""
        data = self._get(key)
        self.bytes_read += len(data)
        self.get_ops += 1
        return data

    def get_range(self, key: str, offset: int, length: int) -> bytes:
        """Fetch ``length`` bytes of the object at ``key`` from ``offset``.

        The S3/GCS/Azure ranged-GET analogue: the restore path reads
        individual container entries without materialising the whole 4 MB
        container server-side.  Reading past the end of the object raises
        :class:`StorageError` (a short range means the caller's offset
        table is stale or corrupt — never silently truncate).
        """
        if offset < 0 or length < 0:
            raise StorageError(f"bad range [{offset}, +{length}) for {key!r}")
        data = self._get_range(key, offset, length)
        if len(data) != length:
            raise StorageError(
                f"short ranged read on {key!r}: wanted {length} bytes at "
                f"{offset}, got {len(data)}"
            )
        self.bytes_read += len(data)
        self.get_ops += 1
        return data

    def _get_range(self, key: str, offset: int, length: int) -> bytes:
        """Default ranged read: slice a whole fetch (backends override)."""
        return self._get(key)[offset : offset + length]

    def delete_object(self, key: str) -> None:
        """Delete the object at ``key``; raises :class:`NotFoundError`."""
        self._delete(key)

    def exists(self, key: str) -> bool:
        return self._exists(key)

    @property
    def stored_bytes(self) -> int:
        """Total bytes currently stored (for cost/saving accounting)."""
        return sum(self.object_size(key) for key in self.list_keys())

    @abc.abstractmethod
    def object_size(self, key: str) -> int:
        """Size in bytes of one stored object."""

    def reap_temporaries(self) -> list[str]:
        """Remove half-written temporaries left by a crash; return them.

        Crash-only startup calls this before anything else: a temp file
        is by definition unpublished (its rename never happened), so no
        acked data can live there.  Backends without a temp-write
        staging area have nothing to reap.
        """
        return []


class MemoryBackend(StorageBackend):
    """Dict-backed object store with corruption injection for tests."""

    def __init__(self) -> None:
        super().__init__()
        self._objects: dict[str, bytes] = {}

    def _put(self, key: str, data: bytes) -> None:
        self._objects[key] = data

    def _get(self, key: str) -> bytes:
        try:
            return self._objects[key]
        except KeyError:
            raise NotFoundError(f"object {key!r} not found") from None

    def _delete(self, key: str) -> None:
        if key not in self._objects:
            raise NotFoundError(f"object {key!r} not found")
        del self._objects[key]

    def _exists(self, key: str) -> bool:
        return key in self._objects

    def list_keys(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self._objects if k.startswith(prefix))

    def object_size(self, key: str) -> int:
        try:
            return len(self._objects[key])
        except KeyError:
            raise NotFoundError(f"object {key!r} not found") from None

    # ------------------------------------------------------------------
    def corrupt(self, key: str, offset: int = 0, flips: int = 1) -> None:
        """Flip bits inside a stored object (failure injection)."""
        data = bytearray(self._get(key))
        if not data:
            raise StorageError(f"object {key!r} is empty; nothing to corrupt")
        for i in range(flips):
            pos = (offset + i) % len(data)
            data[pos] ^= 0xFF
        self._objects[key] = bytes(data)


class LocalDirBackend(StorageBackend):
    """One file per object under ``root`` (keys are sanitised to paths)."""

    def __init__(self, root: str | Path) -> None:
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        safe = key.replace("/", "_")
        if not safe or safe.startswith("."):
            raise StorageError(f"invalid object key {key!r}")
        return self.root / safe

    def _put(self, key: str, data: bytes) -> None:
        # Temp-write, fsync, then rename: the publish must never be
        # reachable with the payload still in user-space or page-cache
        # buffers, or a crash can surface a torn object under the final
        # key (checker rule DUR-001).
        tmp = self._path(key).with_suffix(".tmp")
        with tmp.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(self._path(key))
        # The rename itself lives in the directory entry; fsync it so a
        # power cut cannot forget the publish after the ack went out.
        self._sync_dir()

    def _sync_dir(self) -> None:
        fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def reap_temporaries(self) -> list[str]:
        reaped = []
        for path in self.root.iterdir():
            if path.is_file() and path.suffix == ".tmp":
                path.unlink()
                reaped.append(path.name)
        if reaped:
            self._sync_dir()
        return sorted(reaped)

    def _get(self, key: str) -> bytes:
        path = self._path(key)
        if not path.exists():
            raise NotFoundError(f"object {key!r} not found")
        return path.read_bytes()

    def _get_range(self, key: str, offset: int, length: int) -> bytes:
        path = self._path(key)
        if not path.exists():
            raise NotFoundError(f"object {key!r} not found")
        with path.open("rb") as handle:
            handle.seek(offset)
            return handle.read(length)

    def _delete(self, key: str) -> None:
        path = self._path(key)
        if not path.exists():
            raise NotFoundError(f"object {key!r} not found")
        path.unlink()

    def _exists(self, key: str) -> bool:
        return self._path(key).exists()

    def list_keys(self, prefix: str = "") -> list[str]:
        safe_prefix = prefix.replace("/", "_")
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_file() and not p.suffix == ".tmp" and p.name.startswith(safe_prefix)
        )

    def object_size(self, key: str) -> int:
        path = self._path(key)
        if not path.exists():
            raise NotFoundError(f"object {key!r} not found")
        return path.stat().st_size
