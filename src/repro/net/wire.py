"""Binary wire protocol for the networked serving layer.

Everything crossing a socket between a :class:`~repro.net.client.
RemoteServerProxy` and a :class:`~repro.net.server.CDStoreTCPServer` (or
:class:`~repro.net.async_server.AsyncCDStoreTCPServer`) is a **frame**.
Two framings exist, selected per connection by version negotiation:

    v1:  u16 magic | u8 type | u32 length | length bytes of payload
    v2:  u16 magic | u8 type | u32 request_id | u32 length | payload

The magic word catches stream desynchronisation immediately (a frame read
mid-payload fails loudly instead of interpreting share bytes as headers),
the type selects one codec below, and the length is bounded by
``max_frame`` on both ends — a malicious or corrupted peer cannot make the
receiver allocate an arbitrary buffer.

The v2 ``request_id`` is a correlation id: the server echoes a request's
id on every frame it emits for that request, so one socket can carry many
concurrent in-flight requests (mux mode) and the client routes replies by
id instead of by arrival order.  A connection always *starts* in v1
framing; the client advertises the highest version it speaks in
:data:`T_PING` and the server answers :data:`R_PONG` carrying
``negotiate_version(client_version)``.  Both sides switch to v2 framing
immediately after the PONG iff the negotiated version is ≥ 2 — an old v1
peer on either end simply keeps the v1 framing forever.

Payload codecs cover the full :class:`~repro.server.server.CDStoreServer`
surface and reuse the ``pack``/``unpack`` structs of
:mod:`repro.server.messages` and :mod:`repro.server.index`, so the bytes a
share travels in are identical whether the transport is a method call or a
socket.  Every decoder consumes its payload exactly: truncation *and*
trailing garbage raise :class:`~repro.errors.ProtocolError`.

Errors are first-class frames: a server-side :class:`~repro.errors.
ReproError` is encoded as :data:`R_ERROR` with a stable numeric code and
re-raised client-side as the *same exception class* — the comm engine's
failover logic (`FETCH_ERRORS`) behaves identically across transports.
The codes live on the exception classes themselves
(:data:`repro.errors.WIRE_ERROR_CODES`), so adding a wire-visible error
is a one-place change and the numbers never shift.
"""

from __future__ import annotations

import json
import struct
from typing import Callable

from repro.dedup.stats import DedupStats
from repro.errors import (
    WIRE_ERROR_CODES,
    ProtocolError,
    ReproError,
    wire_code_for,
)
from repro.server.index import FileEntry
from repro.server.messages import FileManifest, RecipeEntry, ShareMeta, ShareUpload

__all__ = [
    "AUTH_NONCE_SIZE",
    "AUTH_PROOF_SIZE",
    "CONTROL_FRAMES",
    "FLAG_TRACE",
    "FRAME_HEADER",
    "GATEWAY_FRAMES",
    "GATEWAY_SERVER_ID",
    "LOCAL_ONLY_METHODS",
    "MAX_FRAME_BYTES",
    "METHOD_FRAMES",
    "MUX_FRAME_HEADER",
    "OBS_FRAMES",
    "REQUEST_ID_MAX",
    "SHARE_WIRE_OVERHEAD",
    "TRACE_CONTEXT_SIZE",
    "WIRE_VERSION",
    "decode_error",
    "decode_frames",
    "encode_error",
    "encode_frame",
    "encode_frame_v",
    "encode_mux_frame",
    "encode_trace_context",
    "frame_name",
    "negotiate_version",
    "read_frame",
    "read_frame_mux",
    "read_frame_v",
    "split_trace_context",
]

#: Highest protocol revision this build speaks.  Version 1 is the serial
#: length-prefixed framing; version 2 adds the ``u32 request_id`` word so
#: one socket multiplexes concurrent requests.  The version actually used
#: by a connection is negotiated in the PING/PONG handshake
#: (:func:`negotiate_version`), never assumed.
WIRE_VERSION = 2

_FRAME_MAGIC = 0xCD5E
#: v1 frame header: magic | frame type | payload length.
FRAME_HEADER = struct.Struct(">HBI")
#: v2 frame header: magic | frame type | request id | payload length.
MUX_FRAME_HEADER = struct.Struct(">HBII")

#: Request ids are u32; the client allocator wraps at this bound.
REQUEST_ID_MAX = 0xFFFFFFFF

#: Default hard cap on one frame's payload.  Upload batches and share
#: windows are 4 MB (§4.1); 16 MB leaves headroom for metadata-heavy
#: frames while still bounding a peer-driven allocation.
MAX_FRAME_BYTES = 16 << 20

_FP_SIZE = 32

# ---------------------------------------------------------------------------
# frame types
# ---------------------------------------------------------------------------

# Requests (client -> server).
T_PING = 0x01
T_QUERY_DUPLICATES = 0x02
T_UPLOAD_SHARES = 0x03
T_FINALIZE_FILE = 0x04
T_GET_FILE_ENTRY = 0x05
T_GET_RECIPE = 0x06
T_LIST_FILES = 0x07
T_FETCH_SHARES = 0x08
T_DELETE_FILE = 0x09
T_COLLECT_GARBAGE = 0x0A
T_SCRUB = 0x0B
T_FLUSH = 0x0C
T_STATS = 0x0D
T_STORED_BYTES = 0x0E
T_REPLACE_SHARE = 0x0F
T_REBUILD_RECIPE = 0x10
T_LIST_BACKUPS = 0x11
T_AUTH = 0x12
T_AUTH_PROOF = 0x13
# Gateway requests (client -> repro gateway; see repro.gateway).
T_GW_RESOLVE = 0x14
T_GW_WINDOW = 0x15
# Observability: fetch the versioned metrics/span snapshot (admin-gated).
T_OBS_STATS = 0x16

# Responses (server -> client).
R_OK = 0x80
R_PONG = 0x81
R_BOOLS = 0x82
R_FILE_ENTRY = 0x83
R_RECIPE = 0x84
R_FILE_LIST = 0x85
R_SHARE_BATCH = 0x86
R_SHARES_END = 0x87
R_INT = 0x88
R_FP_LIST = 0x89
R_STATS = 0x8A
R_BACKUP_LIST = 0x8B
R_AUTH_CHALLENGE = 0x8C
R_AUTH_OK = 0x8D
R_GW_BACKUP = 0x8E
R_GW_SHARD = 0x8F
R_GW_WINDOW_END = 0x90
R_OBS_STATS = 0x91
R_ERROR = 0xFF

def frame_name(frame_type: int) -> str:
    """Human label for a frame byte (``"PING"``, ``"GW_WINDOW"``, …).

    Used as the ``frame`` label on dispatch latency histograms and in
    span names, so exposition stays readable without a byte/name lookup
    table at the consumer.  Unknown bytes render as hex.
    """
    name = _FRAME_NAMES.get(frame_type)
    return name if name is not None else f"0x{frame_type:02x}"


def _build_frame_names() -> dict[int, str]:
    names: dict[int, str] = {}
    for name, value in globals().items():
        if isinstance(value, int) and (
            name.startswith("T_") or name.startswith("R_")
        ):
            names.setdefault(value, name[2:])
    return names


#: Server-surface method -> request frame that carries it.  This is the
#: single source of truth the WIRE-005 checker cross-checks against
#: :class:`repro.server.protocol.CDStoreServerAPI`: a method added to the
#: Protocol without a frame here (or vice versa) is a finding, so the
#: wire surface cannot silently drift from the API surface.
METHOD_FRAMES: dict[str, int] = {
    "query_duplicates": T_QUERY_DUPLICATES,
    "upload_shares": T_UPLOAD_SHARES,
    "finalize_file": T_FINALIZE_FILE,
    "get_file_entry": T_GET_FILE_ENTRY,
    "get_recipe": T_GET_RECIPE,
    "list_files": T_LIST_FILES,
    "fetch_shares": T_FETCH_SHARES,
    "iter_share_batches": T_FETCH_SHARES,
    "delete_file": T_DELETE_FILE,
    "collect_garbage": T_COLLECT_GARBAGE,
    "scrub": T_SCRUB,
    "flush": T_FLUSH,
    "stats": T_STATS,
    "stored_bytes": T_STORED_BYTES,
    "replace_share": T_REPLACE_SHARE,
    "rebuild_recipe": T_REBUILD_RECIPE,
    "list_backups": T_LIST_BACKUPS,
}

#: Request frames that are connection machinery, not server-API methods:
#: the version handshake and the tenant authentication exchange.
CONTROL_FRAMES: frozenset[int] = frozenset({T_PING, T_AUTH, T_AUTH_PROOF})

#: Request frames carried by the read-gateway surface
#: (:class:`repro.gateway.service.GatewayService`), not the
#: :class:`~repro.server.protocol.CDStoreServerAPI` — the WIRE-005
#: checker exempts these from METHOD_FRAMES exactly like control frames.
#: A front-end without a gateway answers them with ``ProtocolError``.
GATEWAY_FRAMES: frozenset[int] = frozenset({T_GW_RESOLVE, T_GW_WINDOW})

#: ``server_id`` a gateway front-end reports in :data:`R_PONG` — a
#: gateway is not a cloud, so it answers with a value no cloud index can
#: take (the u32 maximum) instead of claiming slot 0.
GATEWAY_SERVER_ID = 0xFFFFFFFF

#: Observability request frames: served by *every* front-end (server or
#: gateway) from its own dispatcher, not from the
#: :class:`~repro.server.protocol.CDStoreServerAPI` surface — the
#: WIRE-005 checker exempts these from METHOD_FRAMES exactly like
#: control and gateway frames.  Admin-gated when a tenant registry is
#: active (see :data:`repro.net.dispatch.ADMIN_FRAMES`).
OBS_FRAMES: frozenset[int] = frozenset({T_OBS_STATS})

#: Protocol methods that never cross the wire (local lifecycle/recovery).
LOCAL_ONLY_METHODS: frozenset[str] = frozenset({"close", "recover"})

#: Wire bytes one share adds to a :data:`R_SHARE_BATCH` beyond its payload
#: (fingerprint + length prefix).  The TCP server prices shares with this
#: so whole reply frames respect its frame budget.
SHARE_WIRE_OVERHEAD = _FP_SIZE + 4

# ---------------------------------------------------------------------------
# typed error frames
# ---------------------------------------------------------------------------


def encode_error(exc: ReproError) -> bytes:
    """Encode a server-side error as an :data:`R_ERROR` payload.

    The code is the exception class's stable ``wire_code`` (an unlisted
    subclass inherits its nearest registered ancestor's), so the peer
    re-raises the same class — or the closest family an older peer knows.
    """
    code = wire_code_for(exc)
    # NotFoundError inherits KeyError, whose str() quotes the message.
    message = exc.args[0] if exc.args else str(exc)
    blob = str(message).encode("utf-8")
    return struct.pack(">BI", code, len(blob)) + blob


def decode_error(payload: bytes) -> ReproError:
    """Rebuild the typed exception an :data:`R_ERROR` payload carries."""
    reader = _Reader(payload)
    code = reader.u8()
    message = reader.sized_bytes().decode("utf-8", errors="replace")
    reader.done()
    cls = WIRE_ERROR_CODES.get(code)
    if cls is None:
        return ProtocolError(f"peer error with unknown code {code}: {message}")
    return cls(message)


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def negotiate_version(peer_version: int) -> int:
    """The version a connection runs after the peer advertised ``peer_version``.

    Both directions degrade gracefully: a newer peer is capped at our
    :data:`WIRE_VERSION`, an older (or nonsense-zero) peer keeps v1.
    """
    return max(1, min(int(peer_version), WIRE_VERSION))


def _check_payload(payload: bytes, max_frame: int) -> bytes:
    if len(payload) > max_frame:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte cap"
        )
    return payload


def encode_frame(
    frame_type: int, payload: bytes = b"", max_frame: int = MAX_FRAME_BYTES
) -> bytes:
    """One complete v1 frame, ready for the socket."""
    _check_payload(payload, max_frame)
    return FRAME_HEADER.pack(_FRAME_MAGIC, frame_type, len(payload)) + payload


def encode_mux_frame(
    frame_type: int,
    request_id: int,
    payload: bytes = b"",
    max_frame: int = MAX_FRAME_BYTES,
) -> bytes:
    """One complete v2 (request-id-tagged) frame, ready for the socket."""
    if not 0 <= request_id <= REQUEST_ID_MAX:
        raise ProtocolError(f"request id {request_id} outside u32 range")
    _check_payload(payload, max_frame)
    return (
        MUX_FRAME_HEADER.pack(_FRAME_MAGIC, frame_type, request_id, len(payload))
        + payload
    )


def encode_frame_v(
    version: int,
    frame_type: int,
    request_id: int,
    payload: bytes = b"",
    max_frame: int = MAX_FRAME_BYTES,
) -> bytes:
    """Frame ``payload`` in the negotiated ``version``'s framing.

    v1 framing has no request-id word, so ``request_id`` is dropped there
    (v1 connections are strictly serial — correlation is by order).
    """
    if version >= 2:
        return encode_mux_frame(frame_type, request_id, payload, max_frame)
    return encode_frame(frame_type, payload, max_frame)


def read_frame(
    recv_exact: Callable[[int], bytes], max_frame: int = MAX_FRAME_BYTES
) -> tuple[int, bytes]:
    """Read one v1 frame via ``recv_exact(n) -> exactly n bytes``.

    ``recv_exact`` raises :class:`ConnectionError` on EOF; this function
    raises :class:`ProtocolError` on a bad magic word or an oversized
    length *before* reading the payload, so a hostile length field never
    drives an allocation.
    """
    magic, frame_type, length = FRAME_HEADER.unpack(recv_exact(FRAME_HEADER.size))
    _check_header(magic, length, max_frame)
    return frame_type, recv_exact(length) if length else b""


def read_frame_mux(
    recv_exact: Callable[[int], bytes], max_frame: int = MAX_FRAME_BYTES
) -> tuple[int, int, bytes]:
    """Read one v2 frame; returns ``(type, request_id, payload)``."""
    magic, frame_type, request_id, length = MUX_FRAME_HEADER.unpack(
        recv_exact(MUX_FRAME_HEADER.size)
    )
    _check_header(magic, length, max_frame)
    return frame_type, request_id, recv_exact(length) if length else b""


def read_frame_v(
    recv_exact: Callable[[int], bytes],
    version: int,
    max_frame: int = MAX_FRAME_BYTES,
) -> tuple[int, int, bytes]:
    """Read one frame in the negotiated ``version``'s framing.

    Returns ``(type, request_id, payload)``; v1 frames carry no id and
    report ``request_id == 0``.
    """
    if version >= 2:
        return read_frame_mux(recv_exact, max_frame)
    frame_type, payload = read_frame(recv_exact, max_frame)
    return frame_type, 0, payload


def _check_header(magic: int, length: int, max_frame: int) -> None:
    if magic != _FRAME_MAGIC:
        raise ProtocolError(f"bad frame magic 0x{magic:04x} (desynchronised?)")
    if length > max_frame:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds the {max_frame}-byte cap"
        )


def decode_frames(blob: bytes, max_frame: int = MAX_FRAME_BYTES) -> list[tuple[int, bytes]]:
    """Split a byte string into ``(type, payload)`` frames (tests, buffers)."""
    frames = []
    pos = 0

    def recv_exact(n: int) -> bytes:
        nonlocal pos
        if pos + n > len(blob):
            raise ProtocolError("frame stream truncated")
        out = blob[pos : pos + n]
        pos += n
        return out

    while pos < len(blob):
        frames.append(read_frame(recv_exact, max_frame))
    return frames


# ---------------------------------------------------------------------------
# payload reader
# ---------------------------------------------------------------------------


class _Reader:
    """Bounds-checked cursor over one frame payload."""

    def __init__(self, blob: bytes) -> None:
        self._blob = blob
        self._pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self._pos + n > len(self._blob):
            raise ProtocolError("frame payload truncated")
        out = self._blob[self._pos : self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack(">Q", self.take(8))[0]

    def i64(self) -> int:
        return struct.unpack(">q", self.take(8))[0]

    def sized_bytes(self) -> bytes:
        return self.take(self.u32())

    def string(self) -> str:
        try:
            return self.sized_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"bad UTF-8 in frame: {exc}") from exc

    def fingerprint(self) -> bytes:
        return self.take(_FP_SIZE)

    def done(self) -> None:
        if self._pos != len(self._blob):
            raise ProtocolError(
                f"{len(self._blob) - self._pos} trailing bytes after frame payload"
            )


def _sized(blob: bytes) -> bytes:
    return struct.pack(">I", len(blob)) + blob


def _string(text: str) -> bytes:
    return _sized(text.encode("utf-8"))


def _check_fp(fp: bytes) -> bytes:
    if len(fp) != _FP_SIZE:
        raise ProtocolError(f"fingerprint must be {_FP_SIZE} bytes, got {len(fp)}")
    return fp


# ---------------------------------------------------------------------------
# request codecs
# ---------------------------------------------------------------------------


#: PING/PONG capability flag: the sender supports the per-request trace
#: extension (:data:`TRACE_CONTEXT_SIZE`-byte trailer on request frames).
#: Carried in the optional trailing flags byte of both handshake frames;
#: a peer that omits the byte — every v1 and older-v2 build — advertises
#: nothing, so negotiation degrades to "no trace" with no special case.
FLAG_TRACE = 0x01


def encode_ping(version: int = WIRE_VERSION, flags: int = 0) -> bytes:
    """T_PING carries the highest wire version the client speaks.

    ``flags`` (capability bits, :data:`FLAG_TRACE`) ride in an optional
    trailing byte appended only when nonzero, so a client with nothing
    to advertise emits the byte-identical legacy payload.
    """
    blob = struct.pack(">H", version)
    if flags:
        blob += struct.pack(">B", flags)
    return blob


def decode_ping(payload: bytes) -> tuple[int, int]:
    """Returns ``(version, flags)``; a legacy 2-byte PING has flags 0."""
    reader = _Reader(payload)
    version = struct.unpack(">H", reader.take(2))[0]
    flags = reader.u8() if len(payload) > 2 else 0
    reader.done()
    return version, flags


def encode_pong(server_id: int, version: int = WIRE_VERSION, flags: int = 0) -> bytes:
    """R_PONG answers with the *negotiated* version for this connection.

    ``flags`` echoes the capabilities the server *accepted* (a subset of
    the PING's), in the same optional-trailing-byte shape.
    """
    blob = struct.pack(">HI", version, server_id)
    if flags:
        blob += struct.pack(">B", flags)
    return blob


def decode_pong(payload: bytes) -> tuple[int, int, int]:
    """Returns ``(version, server_id, flags)``; legacy PONGs have flags 0."""
    reader = _Reader(payload)
    version, server_id = struct.unpack(">HI", reader.take(6))
    flags = reader.u8() if len(payload) > 6 else 0
    reader.done()
    return version, server_id, flags


# ---------------------------------------------------------------------------
# trace extension (wire v2, negotiated via FLAG_TRACE)
# ---------------------------------------------------------------------------

#: Bytes of the per-request trace trailer: 16-byte trace id + u64 parent
#: span id.  When both sides negotiated :data:`FLAG_TRACE`, **every**
#: non-control request frame carries the trailer (an untraced request
#: carries all zeroes) — fixed presence, so no in-band marker is needed
#: and the strict codecs never see the extra bytes.
TRACE_CONTEXT_SIZE = 16 + 8

_TRACE_SPAN = struct.Struct(">Q")


def encode_trace_context(trace_id: bytes, span_id: int) -> bytes:
    """The request-frame trailer carrying the caller's trace context."""
    if len(trace_id) != TRACE_CONTEXT_SIZE - _TRACE_SPAN.size:
        raise ProtocolError(
            f"trace id must be {TRACE_CONTEXT_SIZE - _TRACE_SPAN.size} bytes, "
            f"got {len(trace_id)}"
        )
    return trace_id + _TRACE_SPAN.pack(span_id)


def split_trace_context(payload: bytes) -> tuple[bytes, int, bytes]:
    """Strip the trailer: ``(trace_id, parent_span_id, inner_payload)``.

    Called by the dispatcher on trace-negotiated connections before any
    payload codec runs, so the codecs' exact-consumption contract
    (:meth:`_Reader.done`) holds unchanged.
    """
    if len(payload) < TRACE_CONTEXT_SIZE:
        raise ProtocolError(
            f"request frame of {len(payload)} bytes cannot carry the "
            f"{TRACE_CONTEXT_SIZE}-byte trace context"
        )
    trailer = payload[-TRACE_CONTEXT_SIZE:]
    trace_id = trailer[: -_TRACE_SPAN.size]
    (span_id,) = _TRACE_SPAN.unpack(trailer[-_TRACE_SPAN.size:])
    return trace_id, span_id, payload[:-TRACE_CONTEXT_SIZE]


#: Client/server nonces in the auth exchange are exactly this long.
AUTH_NONCE_SIZE = 16
#: HMAC-SHA256 digest length of the T_AUTH_PROOF payload.
AUTH_PROOF_SIZE = 32


def _check_nonce(nonce: bytes) -> bytes:
    if len(nonce) != AUTH_NONCE_SIZE:
        raise ProtocolError(
            f"auth nonce must be {AUTH_NONCE_SIZE} bytes, got {len(nonce)}"
        )
    return nonce


def encode_auth(tenant_id: str, client_nonce: bytes) -> bytes:
    """T_AUTH: open the challenge-response exchange for ``tenant_id``."""
    return _string(tenant_id) + _check_nonce(client_nonce)


def decode_auth(payload: bytes) -> tuple[str, bytes]:
    reader = _Reader(payload)
    tenant_id = reader.string()
    client_nonce = reader.take(AUTH_NONCE_SIZE)
    reader.done()
    return tenant_id, client_nonce


def encode_auth_challenge(server_nonce: bytes) -> bytes:
    """R_AUTH_CHALLENGE: fresh per-connection nonce the proof must cover."""
    return _check_nonce(server_nonce)


def decode_auth_challenge(payload: bytes) -> bytes:
    reader = _Reader(payload)
    server_nonce = reader.take(AUTH_NONCE_SIZE)
    reader.done()
    return server_nonce


def encode_auth_proof(proof: bytes) -> bytes:
    """T_AUTH_PROOF: HMAC over both nonces + tenant id (see repro.tenants)."""
    if len(proof) != AUTH_PROOF_SIZE:
        raise ProtocolError(
            f"auth proof must be {AUTH_PROOF_SIZE} bytes, got {len(proof)}"
        )
    return proof


def decode_auth_proof(payload: bytes) -> bytes:
    reader = _Reader(payload)
    proof = reader.take(AUTH_PROOF_SIZE)
    reader.done()
    return proof


def encode_auth_ok(role: str) -> bytes:
    """R_AUTH_OK: handshake accepted; tells the client its granted role."""
    return _string(role)


def decode_auth_ok(payload: bytes) -> str:
    reader = _Reader(payload)
    role = reader.string()
    reader.done()
    return role


def encode_query_duplicates(user_id: str, fingerprints: list[bytes]) -> bytes:
    parts = [_string(user_id), struct.pack(">I", len(fingerprints))]
    parts.extend(_check_fp(fp) for fp in fingerprints)
    return b"".join(parts)


def decode_query_duplicates(payload: bytes) -> tuple[str, list[bytes]]:
    reader = _Reader(payload)
    user_id = reader.string()
    fingerprints = [reader.fingerprint() for _ in range(reader.u32())]
    reader.done()
    return user_id, fingerprints


def encode_upload_shares(user_id: str, uploads: list[ShareUpload]) -> bytes:
    parts = [_string(user_id), struct.pack(">I", len(uploads))]
    for upload in uploads:
        parts.append(upload.meta.pack())
        parts.append(_sized(upload.data))
    return b"".join(parts)


def decode_upload_shares(payload: bytes) -> tuple[str, list[ShareUpload]]:
    reader = _Reader(payload)
    user_id = reader.string()
    uploads = []
    for _ in range(reader.u32()):
        meta = ShareMeta.unpack(reader.take(ShareMeta.packed_size()))
        uploads.append(ShareUpload(meta=meta, data=reader.sized_bytes()))
    reader.done()
    return user_id, uploads


def encode_finalize_file(
    user_id: str, manifest: FileManifest, share_metas: list[ShareMeta]
) -> bytes:
    parts = [
        _string(user_id),
        _sized(manifest.pack()),
        struct.pack(">I", len(share_metas)),
    ]
    parts.extend(meta.pack() for meta in share_metas)
    return b"".join(parts)


def decode_finalize_file(payload: bytes) -> tuple[str, FileManifest, list[ShareMeta]]:
    reader = _Reader(payload)
    user_id = reader.string()
    manifest = FileManifest.unpack(reader.sized_bytes())
    metas = [
        ShareMeta.unpack(reader.take(ShareMeta.packed_size()))
        for _ in range(reader.u32())
    ]
    reader.done()
    return user_id, manifest, metas


def encode_user_key(user_id: str, lookup_key: bytes) -> bytes:
    """Shared request shape: get_file_entry / delete_file."""
    return _string(user_id) + _sized(lookup_key)


def decode_user_key(payload: bytes) -> tuple[str, bytes]:
    reader = _Reader(payload)
    user_id = reader.string()
    lookup_key = reader.sized_bytes()
    reader.done()
    return user_id, lookup_key


def encode_get_recipe(user_id: str, lookup_key: bytes, bypass_cache: bool) -> bytes:
    return _string(user_id) + _sized(lookup_key) + struct.pack(">B", int(bypass_cache))


def decode_get_recipe(payload: bytes) -> tuple[str, bytes, bool]:
    reader = _Reader(payload)
    user_id = reader.string()
    lookup_key = reader.sized_bytes()
    bypass = reader.u8()
    reader.done()
    if bypass not in (0, 1):
        raise ProtocolError(f"bad bypass_cache flag {bypass}")
    return user_id, lookup_key, bool(bypass)


def encode_user(user_id: str) -> bytes:
    return _string(user_id)


def decode_user(payload: bytes) -> str:
    reader = _Reader(payload)
    user_id = reader.string()
    reader.done()
    return user_id


def encode_fp_list(fingerprints: list[bytes]) -> bytes:
    parts = [struct.pack(">I", len(fingerprints))]
    parts.extend(_check_fp(fp) for fp in fingerprints)
    return b"".join(parts)


def decode_fp_list(payload: bytes) -> list[bytes]:
    reader = _Reader(payload)
    fingerprints = [reader.fingerprint() for _ in range(reader.u32())]
    reader.done()
    return fingerprints


#: A fetch request body is exactly a fingerprint list (so is the scrub
#: reply, below) — one codec, two names at the call sites.
encode_fetch_shares = encode_fp_list
decode_fetch_shares = decode_fp_list


def encode_replace_share(server_fp: bytes, data: bytes) -> bytes:
    return _check_fp(server_fp) + _sized(data)


def decode_replace_share(payload: bytes) -> tuple[bytes, bytes]:
    reader = _Reader(payload)
    server_fp = reader.fingerprint()
    data = reader.sized_bytes()
    reader.done()
    return server_fp, data


def encode_rebuild_recipe(
    user_id: str, lookup_key: bytes, entries: list[RecipeEntry]
) -> bytes:
    parts = [_string(user_id), _sized(lookup_key), struct.pack(">I", len(entries))]
    parts.extend(entry.pack() for entry in entries)
    return b"".join(parts)


def decode_rebuild_recipe(payload: bytes) -> tuple[str, bytes, list[RecipeEntry]]:
    reader = _Reader(payload)
    user_id = reader.string()
    lookup_key = reader.sized_bytes()
    entries = [
        RecipeEntry.unpack(reader.take(RecipeEntry.packed_size()))
        for _ in range(reader.u32())
    ]
    reader.done()
    return user_id, lookup_key, entries


# ---------------------------------------------------------------------------
# response codecs
# ---------------------------------------------------------------------------


def encode_bools(values: list[bool]) -> bytes:
    return struct.pack(">I", len(values)) + bytes(int(bool(v)) for v in values)


def decode_bools(payload: bytes) -> list[bool]:
    reader = _Reader(payload)
    count = reader.u32()
    flags = reader.take(count)
    reader.done()
    if any(flag not in (0, 1) for flag in flags):
        raise ProtocolError("bool frame contains non-0/1 byte")
    return [bool(flag) for flag in flags]


def encode_file_entry(entry: FileEntry) -> bytes:
    return entry.pack()


def decode_file_entry(payload: bytes) -> FileEntry:
    return FileEntry.unpack(payload)


def encode_recipe(entries: list[RecipeEntry]) -> bytes:
    return struct.pack(">I", len(entries)) + b"".join(e.pack() for e in entries)


def decode_recipe(payload: bytes) -> list[RecipeEntry]:
    reader = _Reader(payload)
    entries = [
        RecipeEntry.unpack(reader.take(RecipeEntry.packed_size()))
        for _ in range(reader.u32())
    ]
    reader.done()
    return entries


def encode_file_list(listing: list[tuple[bytes, FileEntry]]) -> bytes:
    parts = [struct.pack(">I", len(listing))]
    for lookup_key, entry in listing:
        parts.append(_sized(lookup_key))
        parts.append(_sized(entry.pack()))
    return b"".join(parts)


def decode_file_list(payload: bytes) -> list[tuple[bytes, FileEntry]]:
    reader = _Reader(payload)
    out = []
    for _ in range(reader.u32()):
        lookup_key = reader.sized_bytes()
        out.append((lookup_key, FileEntry.unpack(reader.sized_bytes())))
    reader.done()
    return out


def encode_share_batch(batch: list[tuple[bytes, bytes]]) -> bytes:
    parts = [struct.pack(">I", len(batch))]
    for fp, payload in batch:
        parts.append(_check_fp(fp))
        parts.append(_sized(payload))
    return b"".join(parts)


def decode_share_batch(payload: bytes) -> list[tuple[bytes, bytes]]:
    reader = _Reader(payload)
    out = []
    for _ in range(reader.u32()):
        fp = reader.fingerprint()
        out.append((fp, reader.sized_bytes()))
    reader.done()
    return out


def encode_shares_end(total: int) -> bytes:
    return struct.pack(">I", total)


def decode_shares_end(payload: bytes) -> int:
    reader = _Reader(payload)
    total = reader.u32()
    reader.done()
    return total


def encode_int(value: int) -> bytes:
    return struct.pack(">q", value)


def decode_int(payload: bytes) -> int:
    reader = _Reader(payload)
    value = reader.i64()
    reader.done()
    return value


_STATS_FIELDS = (
    "logical_data",
    "logical_shares",
    "transferred_shares",
    "physical_shares",
    "secrets_total",
    "shares_total",
    "shares_transferred",
    "shares_stored",
)
_STATS_STRUCT = struct.Struct(f">{len(_STATS_FIELDS)}q")


def encode_stats(stats: DedupStats) -> bytes:
    return _STATS_STRUCT.pack(*(getattr(stats, field) for field in _STATS_FIELDS))


def decode_stats(payload: bytes) -> DedupStats:
    reader = _Reader(payload)
    values = _STATS_STRUCT.unpack(reader.take(_STATS_STRUCT.size))
    reader.done()
    return DedupStats(**dict(zip(_STATS_FIELDS, values)))


# T_OBS_STATS carries no request body; its reply is a JSON document, not
# packed structs: the snapshot schema evolves with the metric catalogue
# (every release adds metrics), and the frame is an admin/ops surface
# where flexibility beats the few KB a binary encoding would save.  The
# embedded ``version`` key (repro.obs.registry.SNAPSHOT_VERSION) is the
# compatibility contract.


def encode_obs_stats(snapshot: dict) -> bytes:
    """R_OBS_STATS: one versioned observability snapshot, JSON-encoded."""
    if "version" not in snapshot:
        raise ProtocolError("obs snapshot must carry a 'version' key")
    return json.dumps(snapshot, sort_keys=True).encode("utf-8")


def decode_obs_stats(payload: bytes) -> dict:
    try:
        snapshot = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad obs stats payload: {exc}") from exc
    if not isinstance(snapshot, dict) or "version" not in snapshot:
        raise ProtocolError("obs stats payload is not a versioned snapshot")
    return snapshot


def encode_backup_list(backups: list[tuple[str, bytes]]) -> bytes:
    parts = [struct.pack(">I", len(backups))]
    for user_id, lookup_key in backups:
        parts.append(_string(user_id))
        parts.append(_sized(lookup_key))
    return b"".join(parts)


def decode_backup_list(payload: bytes) -> list[tuple[str, bytes]]:
    reader = _Reader(payload)
    out = []
    for _ in range(reader.u32()):
        user_id = reader.string()
        out.append((user_id, reader.sized_bytes()))
    reader.done()
    return out


# ---------------------------------------------------------------------------
# Gateway codecs (repro gateway read tier; see repro.gateway)
# ---------------------------------------------------------------------------

#: A resolve request body is exactly the shared user/key shape.
encode_gw_resolve = encode_user_key
decode_gw_resolve = decode_user_key


def encode_gw_backup(
    file_size: int,
    secret_sizes: list[int],
    windows: list[tuple[int, int]],
) -> bytes:
    """R_GW_BACKUP: the gateway's resolved restore plan for one backup."""
    parts = [struct.pack(">QI", file_size, len(secret_sizes))]
    parts.extend(struct.pack(">I", size) for size in secret_sizes)
    parts.append(struct.pack(">I", len(windows)))
    parts.extend(struct.pack(">II", start, end) for start, end in windows)
    return b"".join(parts)


def decode_gw_backup(payload: bytes) -> tuple[int, list[int], list[tuple[int, int]]]:
    reader = _Reader(payload)
    file_size = reader.u64()
    secret_sizes = [reader.u32() for _ in range(reader.u32())]
    windows = [(reader.u32(), reader.u32()) for _ in range(reader.u32())]
    reader.done()
    return file_size, secret_sizes, windows


def encode_gw_window(user_id: str, lookup_key: bytes, window_index: int) -> bytes:
    """T_GW_WINDOW: fetch one resolved window's shards from the gateway."""
    return _string(user_id) + _sized(lookup_key) + struct.pack(">I", window_index)


def decode_gw_window(payload: bytes) -> tuple[str, bytes, int]:
    reader = _Reader(payload)
    user_id = reader.string()
    lookup_key = reader.sized_bytes()
    window_index = reader.u32()
    reader.done()
    return user_id, lookup_key, window_index


def encode_gw_shard(server_id: int, shares: list[bytes]) -> bytes:
    """R_GW_SHARD: one replica's shares for the window, in sequence order."""
    parts = [struct.pack(">II", server_id, len(shares))]
    parts.extend(_sized(share) for share in shares)
    return b"".join(parts)


def decode_gw_shard(payload: bytes) -> tuple[int, list[bytes]]:
    reader = _Reader(payload)
    server_id = reader.u32()
    shares = [reader.sized_bytes() for _ in range(reader.u32())]
    reader.done()
    return server_id, shares


def encode_gw_window_end(shard_count: int) -> bytes:
    """R_GW_WINDOW_END: terminates a shard stream; echoes the shard count."""
    return struct.pack(">I", shard_count)


def decode_gw_window_end(payload: bytes) -> int:
    reader = _Reader(payload)
    count = reader.u32()
    reader.done()
    return count


#: Frame byte -> short name ("PING", "OBS_STATS", …); built once all
#: constants above exist.
_FRAME_NAMES = _build_frame_names()
