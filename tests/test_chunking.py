"""Chunkers: fixed-size, Rabin and gear content-defined, plus the registry."""

import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking import (
    GEAR_WINDOW,
    ChunkerSpec,
    chunker_names,
    create_chunker,
)
from repro.chunking.fixed import FixedChunker
from repro.chunking.gear import GearChunker
from repro.chunking.rabin import RabinChunker
from repro.crypto.drbg import DRBG
from repro.errors import ParameterError


class TestFixedChunker:
    def test_reconstruction(self):
        data = DRBG("fixed").random_bytes(10000)
        chunks = list(FixedChunker(4096).chunk_bytes(data))
        assert b"".join(c.data for c in chunks) == data
        assert [c.size for c in chunks] == [4096, 4096, 1808]

    def test_offsets_and_seqs(self):
        chunks = list(FixedChunker(100).chunk_bytes(b"z" * 250))
        assert [(c.offset, c.seq) for c in chunks] == [(0, 0), (100, 1), (200, 2)]

    def test_empty_input(self):
        assert list(FixedChunker(100).chunk_bytes(b"")) == []

    def test_bad_size(self):
        with pytest.raises(ParameterError):
            FixedChunker(0)

    def test_stream_equivalence(self):
        data = DRBG("stream").random_bytes(5000)
        chunker = FixedChunker(512)
        direct = [c.data for c in chunker.chunk_bytes(data)]
        streamed = [c.data for c in chunker.chunk_stream([data[:1000], data[1000:]])]
        assert direct == streamed


class TestRabinParameters:
    def test_avg_must_be_power_of_two(self):
        with pytest.raises(ParameterError):
            RabinChunker(avg_size=1000)

    def test_ordering_constraints(self):
        with pytest.raises(ParameterError):
            RabinChunker(avg_size=1024, min_size=2048, max_size=4096)
        with pytest.raises(ParameterError):
            RabinChunker(avg_size=1024, min_size=256, max_size=512)

    def test_window_constraints(self):
        with pytest.raises(ParameterError):
            RabinChunker(window=1)
        with pytest.raises(ParameterError):
            RabinChunker(avg_size=64, min_size=16, max_size=128, window=48)


class TestRabinFingerprints:
    @pytest.mark.slow
    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=0, max_size=400))
    def test_vectorised_equals_rolling(self, data):
        chunker = RabinChunker(avg_size=256, min_size=64, max_size=1024, window=48)
        assert np.array_equal(
            chunker.window_fingerprints(data), chunker.rolling_fingerprints(data)
        )

    def test_short_input_has_no_fingerprints(self):
        chunker = RabinChunker()
        assert chunker.window_fingerprints(b"short").size == 0


class TestRabinChunking:
    @pytest.fixture
    def chunker(self):
        return RabinChunker(avg_size=1024, min_size=256, max_size=4096, window=48)

    def test_reconstruction(self, chunker):
        data = DRBG("rabin").random_bytes(50000)
        chunks = list(chunker.chunk_bytes(data))
        assert b"".join(c.data for c in chunks) == data

    def test_size_bounds(self, chunker):
        data = DRBG("bounds").random_bytes(100000)
        chunks = list(chunker.chunk_bytes(data))
        sizes = [c.size for c in chunks]
        assert max(sizes) <= chunker.max_size
        assert all(s >= chunker.min_size for s in sizes[:-1])

    def test_average_in_expected_range(self, chunker):
        data = DRBG("avg").random_bytes(300000)
        sizes = [c.size for c in chunker.chunk_bytes(data)]
        avg = sum(sizes) / len(sizes)
        # Content-defined chunking with min/max clamps lands near the target.
        assert chunker.avg_size * 0.5 < avg < chunker.avg_size * 2.5

    def test_determinism(self, chunker):
        data = DRBG("det").random_bytes(30000)
        a = [c.data for c in chunker.chunk_bytes(data)]
        b = [c.data for c in chunker.chunk_bytes(data)]
        assert a == b

    def test_shift_resilience(self, chunker):
        """Prepending bytes must leave most chunk boundaries unchanged —
        the property fixed-size chunking lacks (§3.3)."""
        data = DRBG("shift").random_bytes(60000)
        original = {c.data for c in chunker.chunk_bytes(data)}
        shifted = list(chunker.chunk_bytes(DRBG("prefix").random_bytes(137) + data))
        shared = sum(1 for c in shifted if c.data in original)
        assert shared / len(shifted) > 0.6

    def test_fixed_chunking_is_not_shift_resilient(self):
        """Contrast case motivating variable-size chunking."""
        data = DRBG("contrast").random_bytes(60000)
        fixed = FixedChunker(1024)
        original = {c.data for c in fixed.chunk_bytes(data)}
        shifted = list(fixed.chunk_bytes(b"x" * 137 + data))
        shared = sum(1 for c in shifted if c.data in original)
        assert shared / len(shifted) < 0.1

    def test_empty_input(self, chunker):
        assert list(chunker.chunk_bytes(b"")) == []

    def test_tiny_input_single_chunk(self, chunker):
        chunks = list(chunker.chunk_bytes(b"tiny"))
        assert len(chunks) == 1
        assert chunks[0].data == b"tiny"

    def test_paper_default_configuration(self):
        chunker = RabinChunker()
        assert (chunker.avg_size, chunker.min_size, chunker.max_size) == (
            8192,
            2048,
            16384,
        )


# ---------------------------------------------------------------------------
# gear (FastCDC-style)
# ---------------------------------------------------------------------------

#: Small configuration that exercises all three mask regions on test-sized
#: inputs (min covers the 16-byte gear window).
_SMALL_GEAR = dict(avg_size=256, min_size=64, max_size=1024)


class TestGearParameters:
    def test_avg_must_be_power_of_two(self):
        with pytest.raises(ParameterError):
            GearChunker(avg_size=1000)

    def test_ordering_constraints(self):
        with pytest.raises(ParameterError):
            GearChunker(avg_size=1024, min_size=2048, max_size=4096)
        with pytest.raises(ParameterError):
            GearChunker(avg_size=1024, min_size=256, max_size=512)

    def test_min_must_cover_window(self):
        with pytest.raises(ParameterError):
            GearChunker(avg_size=64, min_size=8, max_size=128)

    def test_mask_width_limits(self):
        with pytest.raises(ParameterError):
            GearChunker(avg_size=32768, min_size=2048, max_size=65536)  # 15+2 bits
        with pytest.raises(ParameterError):
            GearChunker(avg_size=32, min_size=16, max_size=64, norm=5)  # 5-5 bits
        with pytest.raises(ParameterError):
            GearChunker(norm=-1)

    def test_paper_size_defaults(self):
        chunker = GearChunker()
        assert (chunker.avg_size, chunker.min_size, chunker.max_size) == (
            8192,
            2048,
            16384,
        )


class TestGearHashes:
    @pytest.mark.slow
    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=600))
    def test_dense_kernel_equals_rolling_reference(self, data):
        chunker = GearChunker(**_SMALL_GEAR)
        dense = chunker.window_hashes(data)
        rolling = chunker.rolling_hashes(data)
        if len(data) < GEAR_WINDOW:
            assert dense.size == 0
            return
        low16 = (rolling[GEAR_WINDOW - 1 :] & np.uint64(0xFFFF)).astype(np.uint16)
        assert np.array_equal(dense, low16)

    @pytest.mark.slow
    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=2000))
    def test_two_level_scan_equals_dense_cuts(self, data):
        """The prescreen+confirm fast path must drop no candidate."""
        chunker = GearChunker(**_SMALL_GEAR)
        hard, easy = chunker._scan(data)
        dense = chunker.window_hashes(data)
        cuts = np.arange(dense.size, dtype=np.int64) + GEAR_WINDOW
        assert np.array_equal(hard, cuts[(dense & chunker.mask_hard) == 0])
        assert np.array_equal(easy, cuts[(dense & chunker.mask_easy) == 0])


class TestGearChunking:
    @pytest.fixture
    def chunker(self):
        return GearChunker(**_SMALL_GEAR)

    def test_reconstruction(self, chunker):
        data = DRBG("gear").random_bytes(50000)
        chunks = list(chunker.chunk_bytes(data))
        assert b"".join(c.data for c in chunks) == data
        assert [c.offset for c in chunks] == [
            sum(x.size for x in chunks[:i]) for i in range(len(chunks))
        ]
        assert [c.seq for c in chunks] == list(range(len(chunks)))

    def test_size_bounds(self, chunker):
        data = DRBG("gear-bounds").random_bytes(100000)
        sizes = [c.size for c in chunker.chunk_bytes(data)]
        assert max(sizes) <= chunker.max_size
        assert all(s >= chunker.min_size for s in sizes[:-1])

    def test_normalized_sizes_concentrate_near_average(self, chunker):
        data = DRBG("gear-avg").random_bytes(300000)
        sizes = [c.size for c in chunker.chunk_bytes(data)]
        avg = sum(sizes) / len(sizes)
        assert chunker.avg_size * 0.5 < avg < chunker.avg_size * 2.5

    def test_determinism(self, chunker):
        data = DRBG("gear-det").random_bytes(30000)
        a = [c.data for c in chunker.chunk_bytes(data)]
        b = [c.data for c in chunker.chunk_bytes(data)]
        assert a == b

    def test_shift_resilience(self, chunker):
        data = DRBG("gear-shift").random_bytes(60000)
        original = {c.data for c in chunker.chunk_bytes(data)}
        shifted = list(chunker.chunk_bytes(DRBG("prefix").random_bytes(137) + data))
        shared = sum(1 for c in shifted if c.data in original)
        assert shared / len(shifted) > 0.6

    def test_empty_input(self, chunker):
        assert list(chunker.chunk_bytes(b"")) == []

    def test_tiny_input_single_chunk(self, chunker):
        chunks = list(chunker.chunk_bytes(b"tiny"))
        assert len(chunks) == 1
        assert chunks[0].data == b"tiny"


class TestGearProperties:
    """Hypothesis suites for the FastCDC chunker's core contracts."""

    @pytest.mark.slow
    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=1, max_size=8000))
    def test_size_bounds_respected(self, data):
        chunker = GearChunker(**_SMALL_GEAR)
        chunks = list(chunker.chunk_bytes(data))
        assert b"".join(c.data for c in chunks) == data
        sizes = [c.size for c in chunks]
        assert all(s <= chunker.max_size for s in sizes)
        # Every chunk except the last respects the minimum.
        assert all(s >= chunker.min_size for s in sizes[:-1])

    @pytest.mark.slow
    @settings(max_examples=30, deadline=None)
    @given(
        st.binary(min_size=0, max_size=12000),
        st.lists(st.integers(min_value=0, max_value=12000), max_size=8),
    )
    def test_chunk_stream_equals_chunk_bytes(self, data, raw_splits):
        """Streaming must be split-invariant: any slicing of the input into
        blocks yields the byte-identical chunk sequence."""
        chunker = GearChunker(**_SMALL_GEAR)
        bounds = sorted({min(s, len(data)) for s in raw_splits})
        edges = [0, *bounds, len(data)]
        blocks = [data[a:b] for a, b in zip(edges, edges[1:])]
        direct = [(c.data, c.offset, c.seq) for c in chunker.chunk_bytes(data)]
        streamed = [(c.data, c.offset, c.seq) for c in chunker.chunk_stream(blocks)]
        assert streamed == direct

    @pytest.mark.slow
    @settings(max_examples=15, deadline=None)
    @given(st.binary(min_size=1, max_size=300))
    def test_boundary_stability_under_prefix_insertion(self, prefix):
        """Prepending arbitrary bytes must leave most boundaries of a fixed
        payload unchanged — the content-defined property itself."""
        chunker = GearChunker(**_SMALL_GEAR)
        payload = DRBG("gear-stability").random_bytes(40000)
        original = {c.data for c in chunker.chunk_bytes(payload)}
        shifted = list(chunker.chunk_bytes(prefix + payload))
        shared = sum(1 for c in shifted if c.data in original)
        assert shared / len(shifted) > 0.5


def _chunk_via_spec(spec: ChunkerSpec, data: bytes) -> list[tuple[bytes, int, int]]:
    """Worker-side half of the registry round-trip test (top level, so
    picklable by the process pool)."""
    chunker = create_chunker(spec)
    return [(c.data, c.offset, c.seq) for c in chunker.chunk_bytes(data)]


class TestChunkerRegistry:
    def test_names(self):
        assert {"fixed", "rabin", "gear"} <= set(chunker_names())

    def test_default_is_rabin(self):
        assert isinstance(create_chunker(None), RabinChunker)

    def test_parse_and_create(self):
        chunker = create_chunker("gear:avg=512,min=64,max=2048,norm=1")
        assert isinstance(chunker, GearChunker)
        assert (chunker.avg_size, chunker.min_size, chunker.max_size) == (512, 64, 2048)
        assert chunker.norm == 1
        assert str(chunker.spec()) == "gear:avg=512,min=64,max=2048,norm=1"

    def test_live_instance_passes_through(self):
        chunker = FixedChunker(1234)
        assert create_chunker(chunker) is chunker
        assert chunker.spec() is None  # hand-built: no spec attached

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError, match="unknown chunker"):
            create_chunker("bogus")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ParameterError, match="bad chunker parameter"):
            ChunkerSpec.parse("gear:windowsill=48")

    def test_non_integer_value_rejected(self):
        with pytest.raises(ParameterError, match="must be an integer"):
            ChunkerSpec.parse("gear:avg=big")

    def test_out_of_range_value_surfaces_at_create(self):
        spec = ChunkerSpec.parse("gear:avg=1000")
        with pytest.raises(ParameterError, match="power of two"):
            spec.create()

    def test_spec_pickles(self):
        spec = ChunkerSpec.parse("rabin:avg=4096")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.create().avg_size == 4096

    @pytest.mark.slow
    @settings(max_examples=5, deadline=None)
    @given(
        st.sampled_from(
            [
                "gear",
                "gear:avg=256,min=64,max=1024",
                "gear:avg=512,min=128,max=2048,norm=1",
                "rabin:avg=256,min=64,max=1024",
                "fixed:size=512",
            ]
        ),
        st.binary(min_size=0, max_size=4000),
    )
    def test_round_trip_through_process_worker(self, text, data):
        """A spec built here must produce the identical chunking when
        reconstructed inside a worker process — the contract the CLI and
        the encode pool rely on."""
        spec = ChunkerSpec.parse(text)
        local = _chunk_via_spec(spec, data)
        remote = _WORKER_POOL.submit(_chunk_via_spec, spec, data).result()
        assert remote == local


#: One worker, forked lazily at module import and shared by every example
#: (forking per hypothesis example would dominate the suite's runtime).
_WORKER_POOL = ProcessPoolExecutor(max_workers=1)
