"""Command-line interface: a persistent deployment across invocations."""

import os

import pytest

from repro.cli import main


@pytest.fixture
def deployment(tmp_path):
    root = tmp_path / "store"
    assert main(["init", "--root", str(root), "--n", "4", "--k", "3", "--salt", "org"]) == 0
    return root


def write_file(tmp_path, name: str, size: int = 30_000) -> str:
    path = tmp_path / name
    path.write_bytes(os.urandom(size))
    return str(path)


class TestInit:
    def test_creates_layout(self, tmp_path):
        root = tmp_path / "s"
        assert main(["init", "--root", str(root)]) == 0
        assert (root / "cdstore.json").exists()
        assert (root / "cloud-0").is_dir()

    def test_double_init_fails(self, deployment):
        assert main(["init", "--root", str(deployment)]) == 1

    def test_missing_deployment_errors(self, tmp_path, capsys):
        assert main(["stats", "--root", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err


class TestBackupRestore:
    def test_roundtrip_across_invocations(self, deployment, tmp_path):
        src = write_file(tmp_path, "data.bin")
        assert main(["backup", "--root", str(deployment), "--user", "alice", src]) == 0
        out = tmp_path / "restored.bin"
        assert main([
            "restore", "--root", str(deployment), "--user", "alice", src,
            "-o", str(out),
        ]) == 0
        assert out.read_bytes() == open(src, "rb").read()

    def test_custom_name(self, deployment, tmp_path):
        src = write_file(tmp_path, "x.bin", 5_000)
        assert main([
            "backup", "--root", str(deployment), "--user", "alice", src,
            "--name", "/backups/monday.tar",
        ]) == 0
        out = tmp_path / "y.bin"
        assert main([
            "restore", "--root", str(deployment), "--user", "alice",
            "/backups/monday.tar", "-o", str(out),
        ]) == 0
        assert out.read_bytes() == open(src, "rb").read()

    def test_dedup_persists_across_invocations(self, deployment, tmp_path, capsys):
        src = write_file(tmp_path, "dup.bin")
        main(["backup", "--root", str(deployment), "--user", "alice", src,
              "--name", "/v1"])
        capsys.readouterr()
        main(["backup", "--root", str(deployment), "--user", "alice", src,
              "--name", "/v2"])
        out = capsys.readouterr().out
        assert "0 share bytes transferred" in out
        assert "100.0%" in out


class TestLsDeleteStats:
    def test_ls_lists_secret_shared_names(self, deployment, tmp_path, capsys):
        src = write_file(tmp_path, "a.bin", 4_000)
        main(["backup", "--root", str(deployment), "--user", "alice", src,
              "--name", "/backups/a.tar"])
        capsys.readouterr()
        assert main(["ls", "--root", str(deployment), "--user", "alice"]) == 0
        assert "/backups/a.tar" in capsys.readouterr().out

    def test_ls_is_per_user(self, deployment, tmp_path, capsys):
        src = write_file(tmp_path, "a.bin", 4_000)
        main(["backup", "--root", str(deployment), "--user", "alice", src,
              "--name", "/private"])
        capsys.readouterr()
        main(["ls", "--root", str(deployment), "--user", "bob"])
        assert "/private" not in capsys.readouterr().out

    def test_delete_with_gc(self, deployment, tmp_path, capsys):
        src = write_file(tmp_path, "d.bin", 20_000)
        main(["backup", "--root", str(deployment), "--user", "alice", src,
              "--name", "/doomed"])
        capsys.readouterr()
        assert main([
            "delete", "--root", str(deployment), "--user", "alice", "/doomed",
            "--gc",
        ]) == 0
        out = capsys.readouterr().out
        assert "GC reclaimed" in out
        # Restore must now fail.
        assert main([
            "restore", "--root", str(deployment), "--user", "alice", "/doomed",
            "-o", str(tmp_path / "no.bin"),
        ]) == 1

    def test_stats(self, deployment, tmp_path, capsys):
        src = write_file(tmp_path, "s.bin", 10_000)
        main(["backup", "--root", str(deployment), "--user", "alice", src])
        capsys.readouterr()
        assert main(["stats", "--root", str(deployment)]) == 0
        out = capsys.readouterr().out
        assert "clouds: 4 (k = 3)" in out
        assert "cloud-0" in out


class TestCost:
    def test_cost_summary(self, capsys):
        assert main(["cost", "--weekly-tb", "16", "--dedup", "10"]) == 0
        out = capsys.readouterr().out
        assert "CDStore" in out
        assert "saving vs AONT-RS" in out


class TestChunkerFlag:
    def test_gear_backup_restore_roundtrip(self, deployment, tmp_path):
        src = write_file(tmp_path, "g.bin")
        assert main([
            "backup", "--root", str(deployment), "--user", "alice", src,
            "--chunker", "gear",
        ]) == 0
        out = tmp_path / "g-restored.bin"
        assert main([
            "restore", "--root", str(deployment), "--user", "alice", src,
            "-o", str(out),
        ]) == 0
        assert out.read_bytes() == open(src, "rb").read()

    def test_parameterised_spec_accepted(self, deployment, tmp_path):
        src = write_file(tmp_path, "p.bin", 60_000)
        assert main([
            "backup", "--root", str(deployment), "--user", "alice", src,
            "--chunker", "gear:avg=4096,min=1024,max=8192",
        ]) == 0

    def test_init_persists_deployment_chunker(self, tmp_path, capsys):
        root = tmp_path / "gearstore"
        assert main([
            "init", "--root", str(root), "--chunker", "gear", "--salt", "org",
        ]) == 0
        assert "chunker=gear" in capsys.readouterr().out
        src = write_file(tmp_path, "d.bin")
        # Backups inherit the deployment default (no --chunker needed) and
        # deduplicate against each other, proving both used gear.
        main(["backup", "--root", str(root), "--user", "alice", src,
              "--name", "/v1"])
        capsys.readouterr()
        main(["backup", "--root", str(root), "--user", "alice", src,
              "--name", "/v2"])
        assert "100.0%" in capsys.readouterr().out


class TestArgumentValidation:
    """Bad flags must die as argparse usage errors (exit code 2), not as
    ValueErrors surfacing from deep inside a half-done backup."""

    def _backup_args(self, deployment, tmp_path, *extra):
        src = write_file(tmp_path, "v.bin", 5_000)
        return ["backup", "--root", str(deployment), "--user", "alice", src,
                *extra]

    @pytest.mark.parametrize("value", ["0", "-3", "two"])
    def test_bad_pipeline_depth_rejected(self, deployment, tmp_path, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self._backup_args(deployment, tmp_path, "--pipeline-depth", value))
        assert excinfo.value.code == 2
        assert "--pipeline-depth" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-1"])
    def test_bad_threads_rejected(self, deployment, tmp_path, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self._backup_args(deployment, tmp_path, "--threads", value))
        assert excinfo.value.code == 2

    @pytest.mark.parametrize(
        "spec",
        [
            "bogus",                    # unknown chunker
            "gear:windowsill=48",       # unknown parameter
            "gear:avg=notanum",         # non-integer value
            "gear:avg=1000",            # not a power of two
            "gear:avg=256,min=512,max=128",  # inverted bounds
        ],
    )
    def test_malformed_chunker_spec_rejected(self, deployment, tmp_path, spec, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self._backup_args(deployment, tmp_path, "--chunker", spec))
        assert excinfo.value.code == 2
        assert "--chunker" in capsys.readouterr().err

    def test_restore_validates_too(self, deployment, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "restore", "--root", str(deployment), "--user", "alice", "/x",
                "-o", str(tmp_path / "o.bin"), "--pipeline-depth", "0",
            ])
        assert excinfo.value.code == 2


class TestNetworkModeValidation:
    """`repro serve` and tcp:// cloud specs die as argparse usage errors
    (exit code 2) on malformed arguments, matching the --chunker style."""

    @pytest.mark.parametrize("port", ["0", "-1", "65536", "http", "9300.5"])
    def test_serve_bad_port_rejected(self, deployment, port, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--root", str(deployment), "--cloud", "0",
                  "--port", port])
        assert excinfo.value.code == 2
        assert "--port" in capsys.readouterr().err

    @pytest.mark.parametrize("cloud", ["-1", "one", "1.5"])
    def test_serve_bad_cloud_rejected(self, deployment, cloud, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--root", str(deployment), "--cloud", cloud,
                  "--port", "9300"])
        assert excinfo.value.code == 2
        assert "--cloud" in capsys.readouterr().err

    def test_serve_cloud_outside_deployment_errors(self, deployment, capsys):
        assert main(["serve", "--root", str(deployment), "--cloud", "7",
                     "--port", "9300"]) == 1
        assert "outside this deployment" in capsys.readouterr().err

    def test_serve_bad_frame_budget_rejected(self, deployment, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--root", str(deployment), "--cloud", "0",
                  "--port", "9300", "--frame-budget", "0"])
        assert excinfo.value.code == 2

    @pytest.mark.parametrize("spec", [
        "tcp://", "tcp://host", "tcp://host:", "tcp://host:abc",
        "tcp://host:0", "tcp://host:70000", "udp://host:1", "nonsense",
    ])
    def test_init_malformed_cloud_spec_rejected(self, tmp_path, spec, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["init", "--root", str(tmp_path / "s"),
                  "--cloud-spec", spec])
        assert excinfo.value.code == 2
        assert "--cloud-spec" in capsys.readouterr().err

    def test_init_cloud_spec_count_must_match_n(self, tmp_path, capsys):
        assert main(["init", "--root", str(tmp_path / "s"), "--n", "4",
                     "--cloud-spec", "tcp://h:1", "--cloud-spec", "local"]) == 1
        assert "--cloud-spec" in capsys.readouterr().err

    def test_init_persists_cloud_specs(self, tmp_path):
        import json

        root = tmp_path / "s"
        assert main(["init", "--root", str(root), "--n", "2", "--k", "1",
                     "--cloud-spec", "local",
                     "--cloud-spec", "tcp://127.0.0.1:9411"]) == 0
        config = json.loads((root / "cdstore.json").read_text())
        assert config["cloud_specs"] == ["local", "tcp://127.0.0.1:9411"]
        # Only local clouds get a backing directory.
        assert (root / "cloud-0").is_dir()
        assert not (root / "cloud-1").exists()


class TestNetworkModeEndToEnd:
    def test_backup_restore_through_served_clouds(self, tmp_path, capsys):
        """A deployment whose clouds all live behind `repro serve`
        processes backs up and restores through real loopback sockets."""
        from pathlib import Path

        from repro.cli import build_cloud_server

        server_root = tmp_path / "srv"
        assert main(["init", "--root", str(server_root), "--n", "4",
                     "--k", "3", "--salt", "org"]) == 0
        tcps = [build_cloud_server(server_root, i).start() for i in range(4)]
        try:
            init_args = ["init", "--root", str(tmp_path / "cli"), "--n", "4",
                         "--k", "3", "--salt", "org"]
            for tcp in tcps:
                host, port = tcp.address
                init_args += ["--cloud-spec", f"tcp://{host}:{port}"]
            assert main(init_args) == 0

            src = write_file(tmp_path, "data.bin", 40_000)
            assert main(["backup", "--root", str(tmp_path / "cli"),
                         "--user", "alice", src, "--name", "/f"]) == 0
            out = capsys.readouterr().out
            assert "pipeline depth" in out and "(adaptive)" in out
            dest = tmp_path / "out.bin"
            assert main(["restore", "--root", str(tmp_path / "cli"),
                         "--user", "alice", "/f", "-o", str(dest)]) == 0
            assert dest.read_bytes() == Path(src).read_bytes()
            assert main(["stats", "--root", str(tmp_path / "cli")]) == 0
            assert "tcp://" in capsys.readouterr().out
        finally:
            for tcp in tcps:
                tcp.shutdown()
                tcp.server.close()

    def test_stats_degrades_when_remote_cloud_unreachable(self, tmp_path, capsys):
        """Stats is a diagnostic: a dead remote cloud is reported, not
        fatal, and the reachable clouds still show their numbers."""
        root = tmp_path / "s"
        assert main(["init", "--root", str(root), "--n", "2", "--k", "1",
                     "--cloud-spec", "local",
                     "--cloud-spec", "tcp://127.0.0.1:9"]) == 0
        assert main(["stats", "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "unreachable" in out
        assert "cloud-0" in out

    def test_serve_remote_slot_rejected(self, tmp_path, capsys):
        """Serving a slot whose persisted spec is tcp:// is a config
        error, not a healthy server over an empty directory."""
        root = tmp_path / "s"
        assert main(["init", "--root", str(root), "--n", "2", "--k", "1",
                     "--cloud-spec", "local",
                     "--cloud-spec", "tcp://127.0.0.1:9"]) == 0
        assert main(["serve", "--root", str(root), "--cloud", "1",
                     "--port", "9300"]) == 1
        assert "remote" in capsys.readouterr().err


class TestObsStatsSurface:
    """`repro stats <endpoint>` / `repro top` / `repro tenant-stats`:
    the live observability surface added alongside the metrics registry."""

    @pytest.fixture
    def served_cloud(self, tmp_path):
        from repro.cli import build_cloud_server

        root = tmp_path / "srv"
        assert main(["init", "--root", str(root), "--n", "4", "--k", "3",
                     "--salt", "org"]) == 0
        tcp = build_cloud_server(root, 0).start()
        host, port = tcp.address
        yield f"tcp://{host}:{port}"
        tcp.shutdown()
        tcp.server.close()

    def test_stats_endpoint_renders_snapshot_table(self, served_cloud, capsys):
        assert main(["stats", served_cloud]) == 0
        out = capsys.readouterr().out
        assert "component: server" in out
        assert "spans in ring:" in out

    def test_stats_endpoint_json_is_versioned(self, served_cloud, capsys):
        import json

        assert main(["stats", served_cloud, "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["version"] == 1
        assert snapshot["component"] == "server"
        # The connection's own handshake PING is already on the books.
        assert "net_dispatch_seconds" in snapshot["histograms"]

    def test_stats_endpoint_prometheus_exposition(self, served_cloud, capsys):
        assert main(["stats", served_cloud, "--prom"]) == 0
        out = capsys.readouterr().out
        assert 'net_dispatch_seconds_bucket{frame="PING",le="+Inf"}' in out
        assert "net_dispatch_seconds_sum" in out

    def test_top_bounded_rounds(self, served_cloud, capsys):
        assert main(["top", served_cloud, "--interval", "0.05",
                     "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "round 1" in out and "round 2" in out
        assert "frame rates" in out

    def test_stats_requires_root_or_endpoint(self, capsys):
        assert main(["stats"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_tenant_stats_open_mode(self, deployment, capsys):
        assert main(["tenant-stats", "--root", str(deployment)]) == 0
        assert "no tenant registry" in capsys.readouterr().out

    def test_tenant_stats_lists_registered_tenants(self, deployment, tmp_path,
                                                   capsys):
        secret = tmp_path / "alice.key"
        secret.write_bytes(b"s3cret")
        assert main(["tenant", "add", "--root", str(deployment),
                     "--id", "alice", "--secret-file", str(secret),
                     "--max-bytes", "1000000"]) == 0
        capsys.readouterr()
        assert main(["tenant-stats", "--root", str(deployment)]) == 0
        out = capsys.readouterr().out
        assert "rate_limited" in out
        assert "alice" in out
