"""SSTable files: write/read, tombstones, bloom and block index."""

import pytest

from repro.errors import StorageError
from repro.lsm.memtable import TOMBSTONE
from repro.lsm.sstable import SSTable


def write_table(tmp_path, items, **kwargs):
    return SSTable.write(tmp_path / "t.db", iter(items), **kwargs)


class TestSSTable:
    def test_point_lookups(self, tmp_path):
        items = [(f"key{i:03d}".encode(), f"val{i}".encode()) for i in range(200)]
        table = write_table(tmp_path, items)
        for key, value in items:
            assert table.get(key) == value

    def test_missing_key_returns_none(self, tmp_path):
        table = write_table(tmp_path, [(b"a", b"1")])
        assert table.get(b"zzz") is None
        assert table.get(b"0") is None  # below first key

    def test_tombstones_survive(self, tmp_path):
        table = write_table(tmp_path, [(b"alive", b"1"), (b"dead", TOMBSTONE)])
        assert table.get(b"alive") == b"1"
        assert table.get(b"dead") is TOMBSTONE

    def test_items_in_order(self, tmp_path):
        items = [(f"{i:04d}".encode(), b"v") for i in range(50)]
        table = write_table(tmp_path, items)
        assert [k for k, _ in table.items()] == [k for k, _ in items]

    def test_multiple_blocks(self, tmp_path):
        items = [(f"key{i:05d}".encode(), b"x" * 100) for i in range(100)]
        table = write_table(tmp_path, items, block_size=512)
        assert len(table._index) > 1
        for key, value in items:
            assert table.get(key) == value

    def test_block_cache_used(self, tmp_path):
        from repro.lsm.cache import LRUCache

        items = [(f"key{i:03d}".encode(), b"v") for i in range(100)]
        table = write_table(tmp_path, items, block_size=256)
        cache = LRUCache(1 << 20, size_of=len)
        table.get(b"key000", block_cache=cache)
        table.get(b"key000", block_cache=cache)
        assert cache.hits >= 1

    def test_bloom_short_circuits(self, tmp_path):
        table = write_table(tmp_path, [(b"present", b"1")])
        # A key not in the bloom must return None without block reads.
        assert table.get(b"definitely-absent-key") is None

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"\x00" * 100)
        with pytest.raises(StorageError):
            SSTable(path)

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "tiny.db"
        path.write_bytes(b"ab")
        with pytest.raises(StorageError):
            SSTable(path)

    def test_empty_table(self, tmp_path):
        table = write_table(tmp_path, [])
        assert table.get(b"anything") is None
        assert list(table.items()) == []

    def test_reopen_from_disk(self, tmp_path):
        items = [(b"k1", b"v1"), (b"k2", b"v2")]
        write_table(tmp_path, items)
        reopened = SSTable(tmp_path / "t.db")
        assert reopened.get(b"k1") == b"v1"
        assert reopened.get(b"k2") == b"v2"
