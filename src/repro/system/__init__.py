"""System façade: a whole CDStore deployment in one object.

:class:`CDStoreSystem` wires ``n`` simulated clouds, one CDStore server per
cloud, and any number of per-user clients (Figure 1), and adds the
operations that span the fleet: failure injection, share repair after a
cloud loss (§3.1), global deduplication accounting (Figure 6), and stored-
byte queries for the cost analysis.
"""

from repro.system.cdstore import CDStoreSystem

__all__ = ["CDStoreSystem"]
