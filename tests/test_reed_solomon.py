"""Systematic Reed-Solomon codec: MDS property, repair, error paths."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.reed_solomon import ReedSolomon
from repro.errors import CodingError, ParameterError

DATA = bytes(range(256)) * 3


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            ReedSolomon(3, 0)
        with pytest.raises(ParameterError):
            ReedSolomon(2, 3)
        with pytest.raises(ParameterError):
            ReedSolomon(300, 3)
        with pytest.raises(ParameterError):
            ReedSolomon(4, 3, matrix="nonsense")

    @pytest.mark.parametrize("matrix", ["vandermonde", "cauchy"])
    def test_matrix_choice(self, matrix):
        rs = ReedSolomon(4, 3, matrix=matrix)
        pieces = rs.encode(DATA)
        assert rs.decode(dict(enumerate(pieces)), data_size=len(DATA)) == DATA


class TestEncode:
    def test_systematic_prefix(self):
        rs = ReedSolomon(4, 3)
        pieces = rs.encode(DATA)
        size = rs.piece_size(len(DATA))
        padded = DATA + b"\0" * (3 * size - len(DATA))
        assert b"".join(pieces[:3]) == padded

    def test_piece_count_and_size(self):
        rs = ReedSolomon(7, 4)
        pieces = rs.encode(b"x" * 1001)
        assert len(pieces) == 7
        assert len({len(p) for p in pieces}) == 1
        assert len(pieces[0]) == rs.piece_size(1001)

    def test_empty_input(self):
        rs = ReedSolomon(4, 3)
        pieces = rs.encode(b"")
        assert all(p == b"" for p in pieces)
        assert rs.decode(dict(enumerate(pieces)), data_size=0) == b""

    @given(st.binary(min_size=0, max_size=400))
    def test_encode_is_deterministic(self, data):
        rs = ReedSolomon(5, 3)
        assert rs.encode(data) == rs.encode(data)


class TestDecode:
    @pytest.mark.parametrize("n,k", [(4, 3), (5, 2), (6, 6), (10, 4)])
    def test_any_k_subset_reconstructs(self, n, k):
        rs = ReedSolomon(n, k)
        pieces = rs.encode(DATA)
        for subset in combinations(range(n), k):
            got = rs.decode({i: pieces[i] for i in subset}, data_size=len(DATA))
            assert got == DATA

    @settings(max_examples=30)
    @given(st.binary(min_size=1, max_size=500), st.sets(st.integers(0, 5), min_size=4, max_size=6))
    def test_random_subsets(self, data, subset):
        rs = ReedSolomon(6, 4)
        pieces = rs.encode(data)
        got = rs.decode({i: pieces[i] for i in subset}, data_size=len(data))
        assert got == data

    def test_too_few_pieces_raises(self):
        rs = ReedSolomon(4, 3)
        pieces = rs.encode(DATA)
        with pytest.raises(CodingError):
            rs.decode({0: pieces[0], 1: pieces[1]})

    def test_inconsistent_sizes_raise(self):
        rs = ReedSolomon(4, 3)
        pieces = rs.encode(DATA)
        with pytest.raises(CodingError):
            rs.decode({0: pieces[0], 1: pieces[1], 2: pieces[2][:-1]})

    def test_bad_index_raises(self):
        rs = ReedSolomon(4, 3)
        pieces = rs.encode(DATA)
        with pytest.raises(ParameterError):
            rs.decode({0: pieces[0], 1: pieces[1], 9: pieces[2]})

    def test_data_size_too_large_raises(self):
        rs = ReedSolomon(4, 3)
        pieces = rs.encode(b"abc")
        with pytest.raises(CodingError):
            rs.decode(dict(enumerate(pieces)), data_size=10**6)

    def test_extra_pieces_ignored_deterministically(self):
        rs = ReedSolomon(6, 3)
        pieces = rs.encode(DATA)
        all_of_them = dict(enumerate(pieces))
        assert rs.decode(all_of_them, data_size=len(DATA)) == DATA


class TestRepair:
    def test_reconstruct_missing_pieces(self):
        rs = ReedSolomon(4, 3)
        pieces = rs.encode(DATA)
        rebuilt = rs.reconstruct_pieces({0: pieces[0], 2: pieces[2], 3: pieces[3]}, [1])
        assert rebuilt == {1: pieces[1]}

    def test_reconstruct_multiple(self):
        rs = ReedSolomon(6, 3)
        pieces = rs.encode(DATA)
        survivors = {0: pieces[0], 4: pieces[4], 5: pieces[5]}
        rebuilt = rs.reconstruct_pieces(survivors, [1, 2, 3])
        for i in (1, 2, 3):
            assert rebuilt[i] == pieces[i]

    def test_repair_bad_index(self):
        rs = ReedSolomon(4, 3)
        pieces = rs.encode(DATA)
        with pytest.raises(ParameterError):
            rs.reconstruct_pieces(dict(enumerate(pieces[:3])), [7])
