"""Figure 5(a) — encoding speed vs number of workers, (n, k) = (4, 3).

Paper: all three codecs speed up near-linearly to 4 threads; CAONT-RS
(OAEP-based AONT) is the fastest, beating CAONT-RS-Rivest by 40-61 % and
AONT-RS by 12-35 % on the authors' machines.

This harness drives the same process pool the client's comm engine uses
(``workers="process"``, §4.6): slabs of secrets encode in worker processes
with the batched codec kernels, so encoding escapes the GIL.  Two columns
are reported per configuration (see :mod:`repro.bench.encoding`):

* ``MB/s`` — the scheduled-makespan figure: slab CPU times list-scheduled
  onto the worker count.  On a host with enough free cores this equals
  wall clock; on starved CI/container hosts it is the hardware-independent
  rendering of the paper's scaling claim (the same makespan accounting the
  transfer experiments use via SimClock).
* ``wall MB/s`` — the measured wall clock of this very run, printed so
  core starvation is visible rather than hidden.

Asserted claims: CAONT-RS stays the fastest codec at every worker count,
and its 4-worker throughput is at least twice its 1-worker throughput —
the Figure 5(a) scaling trend.

One documented deviation remains: the per-word overhead of the Rivest
transforms is amplified in pure Python, so CAONT-RS's lead is *larger*
than the paper's and the two Rivest-based codecs are nearly tied (see
EXPERIMENTS.md).
"""

from conftest import BENCH_CHUNKER, emit, emit_metrics, scaled

from repro.bench.encoding import FIGURE5_SCHEMES, _make_secrets, encoding_speed
from repro.bench.reporting import format_table

DATA_BYTES = scaled(1 << 20, floor=256 << 10)  # from the paper's 2 GB
WORKERS = (1, 2, 3, 4)


def test_fig5a(benchmark):
    # Secrets come from this run's chunker matrix leg; the asserted codec
    # ordering and scaling claims are chunker-independent.
    secrets = _make_secrets(DATA_BYTES, chunker=BENCH_CHUNKER)

    def run():
        return [
            encoding_speed(
                scheme, threads=w, secrets=secrets, workers="process", repeats=3
            )
            for scheme in FIGURE5_SCHEMES
            for w in WORKERS
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ["scheme", "workers", "MB/s", "wall MB/s"],
        [[r.scheme, r.threads, r.mbps, r.wall_mbps] for r in results],
        title="Figure 5(a): encoding speed vs #workers (process pool), (n, k)=(4, 3)",
    )
    emit("fig5a", table)

    speed = {(r.scheme, r.threads): r.mbps for r in results}
    # CAONT-RS is the fastest codec at every worker count.
    for w in WORKERS:
        assert speed[("caont-rs", w)] > speed[("aont-rs", w)]
        assert speed[("caont-rs", w)] > speed[("caont-rs-rivest", w)]
    # The paper's scaling trend: 4 workers buy at least 2x one worker.
    assert speed[("caont-rs", 4)] >= 2.0 * speed[("caont-rs", 1)]

    # Machine-relative ratios for the CI perf gate: the codec ordering and
    # the worker-scaling trend (scheduled makespans, so core starvation on
    # small runners does not distort them).
    emit_metrics(
        {
            "fig5a.caont_rs_over_aont_rs.workers1": (
                speed[("caont-rs", 1)] / speed[("aont-rs", 1)]
            ),
            "fig5a.caont_rs_scaling_4_over_1": (
                speed[("caont-rs", 4)] / speed[("caont-rs", 1)]
            ),
        }
    )
