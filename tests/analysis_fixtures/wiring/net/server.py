"""Fixture dispatch: covers ping, shadow and debug frames — nothing else."""

import wire


def dispatch(frame_type):
    if frame_type == wire.T_PING:
        return wire.R_OK
    if frame_type == wire.T_SHADOW:
        return wire.R_OK
    if frame_type == wire.T_DEBUG_DUMP:
        return wire.R_OK
    raise ValueError(frame_type)
