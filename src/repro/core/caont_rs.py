"""CAONT-RS: the paper's new convergent-dispersal instantiation (§3.2).

Encoding (Figure 3, Eq. 1-4):

1. ``h = H(salt || X)`` — a deterministic hash key instead of a random key;
2. ``Y = X' XOR G(h)`` with ``G(h) = E(h, C)`` — a *single* bulk encryption
   of a constant block (OAEP-based AONT), where ``X'`` is ``X`` zero-padded
   so the package divides evenly into ``k`` pieces;
3. ``t = h XOR H(Y)``;
4. the package ``(Y, t)`` is divided into ``k`` pieces and encoded into
   ``n`` shares with a systematic Reed-Solomon code; share ``i`` goes to
   cloud ``i`` so identical secrets deduplicate per cloud.

Decoding retrieves any ``k`` shares, rebuilds ``(Y, t)``, deduces
``h = t XOR H(Y)`` and ``X' = Y XOR G(h)``, strips the padding, and
verifies integrity by re-deriving ``H(X)`` and comparing with ``h``.

Deterministic: identical secrets (same salt) yield identical shares —
the property that enables CDStore's two-stage deduplication.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

from repro.core.aont import oaep_aont_decode, oaep_aont_encode
from repro.core.package_codec import PackageRSCodec
from repro.crypto.ciphers import mask_stack
from repro.crypto.hashing import HASH_SIZE, hash_key
from repro.errors import IntegrityError

__all__ = ["CAONTRS"]


class CAONTRS(PackageRSCodec):
    """(n, k) CAONT-RS — CDStore's default codec.

    Parameters
    ----------
    n, k:
        Dispersal parameters: any ``k`` of ``n`` shares reconstruct, no
        ``k - 1`` reveal anything (computationally).
    salt:
        Optional organisation-wide salt mixed into the hash key (§3.2
        "optionally salted"); scopes deduplication and blunts offline
        dictionary attacks by outsiders.
    """

    name = "caont-rs"
    deterministic = True

    def __init__(
        self, n: int, k: int, salt: bytes = b"", rs_matrix: str = "vandermonde"
    ) -> None:
        super().__init__(n, k, rs_matrix=rs_matrix)
        self.salt = bytes(salt)

    # ------------------------------------------------------------------
    def _padded_secret_size(self, secret_size: int) -> int:
        """Pad X so that len(X') + HASH_SIZE divides evenly by k (§3.2)."""
        return secret_size + (-(secret_size + HASH_SIZE)) % self.k

    def _package_size(self, secret_size: int) -> int:
        return self._padded_secret_size(secret_size) + HASH_SIZE

    def _make_package(self, secret: bytes) -> bytes:
        key = hash_key(secret, self.salt)
        padded = secret + b"\0" * (self._padded_secret_size(len(secret)) - len(secret))
        return oaep_aont_encode(padded, key)

    def _make_packages(
        self, secrets: Sequence[bytes], keys: Sequence[bytes] | None = None
    ) -> np.ndarray:
        """Vectorised Eq. 1-4 over a stack of equal-length secrets.

        The hash keys and CTR masks are necessarily per-secret (each secret
        keys its own stream), but the masks come from the one-shot
        AES-ECB-of-counters kernel (:func:`repro.crypto.ciphers.mask_stack`
        — one cached counter buffer, one EVP setup per key and nothing
        else) and the AONT XOR ``Y = X' ^ G(h)`` runs once over the whole
        ``(B, padded)`` block, with the caller batching the Reed-Solomon
        stage behind it.  Byte-identical to looping :meth:`_make_package`.
        """
        if not secrets:
            return np.zeros((0, self._package_size(0)), dtype=np.uint8)
        size = len(secrets[0])
        padded_size = self._padded_secret_size(size)
        batch = len(secrets)
        out = np.zeros((batch, padded_size + HASH_SIZE), dtype=np.uint8)
        heads = out[:, :padded_size]
        keys = (
            [hash_key(secret, self.salt) for secret in secrets]
            if keys is None
            else list(keys)
        )
        for row, secret in enumerate(secrets):
            heads[row, :size] = np.frombuffer(secret, dtype=np.uint8)
        # Y = X' ^ G(h): one batched kernel for the masks, one XOR pass.
        np.bitwise_xor(heads, mask_stack(keys, padded_size), out=heads)
        for row, key in enumerate(keys):
            digest = hashlib.sha256(heads[row]).digest()  # H(Y), no copy
            tail = int.from_bytes(key, "big") ^ int.from_bytes(digest, "big")
            out[row, padded_size:] = np.frombuffer(
                tail.to_bytes(HASH_SIZE, "big"), dtype=np.uint8
            )
        return out

    def _open_package(self, package: bytes, secret_size: int) -> bytes:
        padded, key = oaep_aont_decode(package)
        secret = padded[:secret_size]
        if hash_key(secret, self.salt) != key:
            raise IntegrityError(
                "caont-rs: recovered hash key does not match H(secret); "
                "decoded secret is corrupt"
            )
        return secret

    # ------------------------------------------------------------------
    def hash_key_of(self, secret: bytes) -> bytes:
        """Expose ``h = H(salt || X)`` (Eq. 1) for diagnostics and tests."""
        return hash_key(secret, self.salt)
