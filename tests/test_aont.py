"""All-or-nothing transforms: OAEP and Rivest package transforms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aont import (
    CANARY_SIZE,
    oaep_aont_decode,
    oaep_aont_encode,
    rivest_aont_decode,
    rivest_aont_encode,
    rivest_package_size,
)
from repro.crypto.hashing import HASH_SIZE
from repro.errors import CryptoError, IntegrityError

KEY = bytes(range(32))


class TestOaepAont:
    @given(st.binary(min_size=0, max_size=1000), st.binary(min_size=32, max_size=32))
    def test_roundtrip(self, secret, key):
        package = oaep_aont_encode(secret, key)
        assert len(package) == len(secret) + HASH_SIZE
        got_secret, got_key = oaep_aont_decode(package)
        assert got_secret == secret
        assert got_key == key

    def test_deterministic(self):
        assert oaep_aont_encode(b"data", KEY) == oaep_aont_encode(b"data", KEY)

    def test_key_size_enforced(self):
        with pytest.raises(CryptoError):
            oaep_aont_encode(b"data", b"short")

    def test_package_too_short(self):
        with pytest.raises(CryptoError):
            oaep_aont_decode(b"tiny")

    def test_all_or_nothing_head_flip_changes_key(self):
        """Flipping any head byte scrambles the recovered key, hence the
        whole secret — the all-or-nothing property."""
        secret = bytes(range(100))
        package = bytearray(oaep_aont_encode(secret, KEY))
        package[10] ^= 0xFF
        got_secret, got_key = oaep_aont_decode(bytes(package))
        assert got_key != KEY
        # Everything (not just byte 10) is scrambled relative to the secret.
        differing = sum(a != b for a, b in zip(got_secret, secret))
        assert differing > len(secret) // 2

    def test_tail_flip_changes_key(self):
        package = bytearray(oaep_aont_encode(b"x" * 64, KEY))
        package[-1] ^= 0x01
        _, got_key = oaep_aont_decode(bytes(package))
        assert got_key != KEY


class TestRivestAont:
    @given(st.binary(min_size=0, max_size=600), st.binary(min_size=32, max_size=32))
    def test_roundtrip(self, secret, key):
        package = rivest_aont_encode(secret, key)
        assert len(package) == rivest_package_size(len(secret))
        got_secret, got_key = rivest_aont_decode(package, len(secret))
        assert got_secret == secret
        assert got_key == key

    @settings(max_examples=15)
    @given(st.binary(min_size=0, max_size=300))
    def test_per_word_equals_bulk(self, secret):
        assert rivest_aont_encode(secret, KEY, per_word=True) == rivest_aont_encode(
            secret, KEY, per_word=False
        )

    def test_canary_detects_corruption(self):
        secret = b"payload" * 20
        package = bytearray(rivest_aont_encode(secret, KEY))
        package[3] ^= 0xFF
        with pytest.raises(IntegrityError):
            rivest_aont_decode(bytes(package), len(secret))

    def test_tail_corruption_detected(self):
        secret = b"payload" * 20
        package = bytearray(rivest_aont_encode(secret, KEY))
        package[-1] ^= 0x80
        with pytest.raises(IntegrityError):
            rivest_aont_decode(bytes(package), len(secret))

    def test_key_size_enforced(self):
        with pytest.raises(CryptoError):
            rivest_aont_encode(b"data", b"short")

    def test_package_too_short(self):
        with pytest.raises(CryptoError):
            rivest_aont_decode(b"x" * 10, 2)

    def test_secret_size_bounds_checked(self):
        package = rivest_aont_encode(b"ab", KEY)
        with pytest.raises(CryptoError):
            rivest_aont_decode(package, 10**6)

    def test_package_size_accounts_for_canary(self):
        assert rivest_package_size(0) >= CANARY_SIZE + HASH_SIZE
        # Package body is always 16-byte aligned plus a 32-byte tail.
        for size in (0, 1, 15, 16, 17, 8192):
            assert (rivest_package_size(size) - HASH_SIZE) % 16 == 0
