"""Concurrent TCP server hosting one :class:`CDStoreServer` (§4 deployment).

One ``CDStoreTCPServer`` runs inside each cloud's co-locating VM and turns
the in-process server object into a network service: many clients (the
multi-client workload of Figure 8) connect concurrently, each served by a
dedicated handler thread.

Threading model — **thread per connection**, not asyncio, deliberately:

* the whole storage stack underneath (:class:`~repro.server.server.
  CDStoreServer`'s re-entrant lock, the LSM index, the container manager)
  is blocking and lock-disciplined; handler threads drive it exactly like
  the in-process callers do, so the per-server locking discipline is
  *preserved*, not re-implemented behind an event loop;
* connection counts are small (one per client per cloud, tens not tens of
  thousands), so the thread-per-connection memory cost is noise while the
  GIL releases around the hashlib/OpenSSL/file-I/O calls that dominate
  request service;
* an asyncio front would still need a thread pool for every server call
  (none of them are awaitable), adding a hop without removing a thread.

``fetch_shares`` replies are **streamed**: the handler walks
:meth:`~repro.server.server.CDStoreServer.iter_share_batches` and emits
one bounded :data:`~repro.net.wire.R_SHARE_BATCH` frame per batch, with
each share priced at payload + :data:`~repro.net.wire.SHARE_WIRE_OVERHEAD`
against ``frame_budget`` — neither a reply frame nor the server-side
working set ever exceeds the budget, no matter how many containers the
request spans (TCP backpressure on a slow client propagates straight into
the generator, which holds at most one batch).

Error discipline: a :class:`~repro.errors.ReproError` is a *protocol
answer* (typed :data:`~repro.net.wire.R_ERROR` frame, connection stays
usable); any other exception is a server bug and closes the connection
abruptly — clients see a dropped socket and run their failover path
rather than trusting a half-written reply.
"""

from __future__ import annotations

import logging
import socket
import threading

from repro.analysis.annotations import guarded_by
from repro.errors import ProtocolError, ReproError
from repro.net import wire
from repro.server.server import CDStoreServer, FETCH_BATCH_BYTES

__all__ = ["CDStoreTCPServer", "recv_exact"]

logger = logging.getLogger(__name__)


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ConnectionError` on EOF."""
    parts = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


class CDStoreTCPServer:
    """Serve one CDStore server over TCP to many concurrent clients.

    Parameters
    ----------
    server:
        The :class:`~repro.server.server.CDStoreServer` (or any object
        with its surface) answering the requests.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    frame_budget:
        Cap on one ``fetch_shares`` reply frame, covering share payloads
        plus their per-share wire overhead.  Also the bound on the
        server-side working set of a streamed fetch.
    max_frame:
        Hard cap on *incoming* frame payloads (request flood guard).
    """

    #: Lock discipline (``repro analyze``, LOCK-001): the live-connection
    #: set is shared between the accept loop, per-connection handler exits
    #: and shutdown, and must only be mutated under ``_conn_lock``.
    GUARDED_BY = guarded_by(_connections="_conn_lock")

    def __init__(
        self,
        server: CDStoreServer,
        host: str = "127.0.0.1",
        port: int = 0,
        frame_budget: int = FETCH_BATCH_BYTES,
        max_frame: int = wire.MAX_FRAME_BYTES,
    ) -> None:
        if frame_budget < 1:
            raise ValueError(f"frame_budget must be >= 1, got {frame_budget}")
        self.server = server
        self.frame_budget = frame_budget
        self.max_frame = max_frame
        self._host = host
        self._port = port
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopped = threading.Event()
        self._conn_lock = threading.Lock()
        self._connections: set[socket.socket] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` after start)."""
        if self._listener is None:
            return (self._host, self._port)
        return self._listener.getsockname()[:2]

    def start(self) -> "CDStoreTCPServer":
        """Bind, listen and spawn the accept loop (idempotent)."""
        if self._listener is not None:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
            listener.listen(64)
            # Poll rather than block forever in accept(): closing a socket
            # does not reliably wake a thread blocked in accept() on Linux,
            # so a pure-blocking loop would stall shutdown until the join
            # timeout.
            listener.settimeout(0.2)
        except OSError:
            # bind() on a taken port is the common case here; the socket
            # is not yet owned by self._listener, so close it before the
            # error propagates (checker rule LIFE-001).
            listener.close()
            raise
        self._listener = listener
        self._stopped.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"cdstore-tcp-{self.server.server_id}",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`shutdown`."""
        self.start()
        self._stopped.wait()

    def shutdown(self) -> None:
        """Stop accepting, sever every live connection, release the port."""
        self._stopped.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - platform-dependent
                pass
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def __enter__(self) -> "CDStoreTCPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopped.is_set() and listener is not None:
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue  # re-check the stop flag
            except OSError:
                return  # listener closed by shutdown
            try:
                conn.settimeout(None)  # handlers block on recv until stop
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - client raced us away
                # The peer can reset between accept() and configuration;
                # close rather than leak the half-set-up socket and keep
                # accepting (checker rule LIFE-001).
                conn.close()
                continue
            with self._conn_lock:
                if self._stopped.is_set():
                    conn.close()
                    return
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"cdstore-conn-{self.server.server_id}",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._stopped.is_set():
                try:
                    frame_type, payload = wire.read_frame(
                        lambda n: recv_exact(conn, n), self.max_frame
                    )
                except (ConnectionError, OSError):
                    return  # client went away between requests
                except ReproError as exc:
                    # Bad magic / oversized length: the stream cannot be
                    # resynchronised — answer typed, then hang up.
                    conn.sendall(
                        wire.encode_frame(wire.R_ERROR, wire.encode_error(exc))
                    )
                    return
                try:
                    for reply in self._dispatch(frame_type, payload):
                        conn.sendall(reply)
                except ReproError as exc:
                    # A typed, *answerable* failure: report it in-band and
                    # keep serving this connection.
                    conn.sendall(
                        wire.encode_frame(wire.R_ERROR, wire.encode_error(exc))
                    )
                except (ConnectionError, OSError):
                    return
        except Exception:  # noqa: BLE001 - server bug: drop the connection
            # Anything non-Repro is a bug, not a protocol answer.  Closing
            # without a reply makes the client treat it like an outage and
            # fail over, instead of trusting a corrupt half-reply — but the
            # bug itself must be attributable, not an unexplained network
            # flake: record the traceback (logging's last-resort handler
            # prints it to the serving process's stderr unconfigured).
            logger.exception(
                "connection handler crashed on server %s; closing connection",
                self.server.server_id,
            )
            return
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, frame_type: int, payload: bytes):
        """Yield encoded reply frame(s) for one request frame.

        A generator so the streaming ``fetch_shares`` reply materialises
        one bounded frame at a time; every other request yields exactly
        one frame.
        """
        server = self.server
        if frame_type == wire.T_PING:
            wire.decode_ping(payload)  # version checked client-side
            yield wire.encode_frame(wire.R_PONG, wire.encode_pong(server.server_id))
        elif frame_type == wire.T_QUERY_DUPLICATES:
            user_id, fingerprints = wire.decode_query_duplicates(payload)
            known = server.query_duplicates(user_id, fingerprints)
            yield wire.encode_frame(wire.R_BOOLS, wire.encode_bools(known))
        elif frame_type == wire.T_UPLOAD_SHARES:
            user_id, uploads = wire.decode_upload_shares(payload)
            server.upload_shares(user_id, uploads)
            yield wire.encode_frame(wire.R_OK)
        elif frame_type == wire.T_FINALIZE_FILE:
            user_id, manifest, metas = wire.decode_finalize_file(payload)
            server.finalize_file(user_id, manifest, metas)
            yield wire.encode_frame(wire.R_OK)
        elif frame_type == wire.T_GET_FILE_ENTRY:
            user_id, lookup_key = wire.decode_user_key(payload)
            entry = server.get_file_entry(user_id, lookup_key)
            yield wire.encode_frame(wire.R_FILE_ENTRY, wire.encode_file_entry(entry))
        elif frame_type == wire.T_GET_RECIPE:
            user_id, lookup_key, bypass = wire.decode_get_recipe(payload)
            recipe = server.get_recipe(user_id, lookup_key, bypass_cache=bypass)
            yield wire.encode_frame(wire.R_RECIPE, wire.encode_recipe(recipe))
        elif frame_type == wire.T_LIST_FILES:
            user_id = wire.decode_user(payload)
            listing = server.list_files(user_id)
            yield wire.encode_frame(wire.R_FILE_LIST, wire.encode_file_list(listing))
        elif frame_type == wire.T_FETCH_SHARES:
            fingerprints = wire.decode_fetch_shares(payload)
            total = 0
            # Price each share at its full wire cost and leave room for the
            # frame header + count word, so a maximally-packed batch still
            # serialises to a frame of at most frame_budget bytes.
            batch_budget = max(1, self.frame_budget - wire.FRAME_HEADER.size - 4)
            for batch in server.iter_share_batches(
                fingerprints,
                budget_bytes=batch_budget,
                cost=lambda fp, data: wire.SHARE_WIRE_OVERHEAD + len(data),
            ):
                total += len(batch)
                yield wire.encode_frame(
                    wire.R_SHARE_BATCH, wire.encode_share_batch(batch)
                )
            yield wire.encode_frame(wire.R_SHARES_END, wire.encode_shares_end(total))
        elif frame_type == wire.T_DELETE_FILE:
            user_id, lookup_key = wire.decode_user_key(payload)
            orphaned = server.delete_file(user_id, lookup_key)
            yield wire.encode_frame(wire.R_INT, wire.encode_int(orphaned))
        elif frame_type == wire.T_COLLECT_GARBAGE:
            _expect_empty(payload)
            freed = server.collect_garbage()
            yield wire.encode_frame(wire.R_INT, wire.encode_int(freed))
        elif frame_type == wire.T_SCRUB:
            _expect_empty(payload)
            corrupt = server.scrub()
            yield wire.encode_frame(wire.R_FP_LIST, wire.encode_fp_list(corrupt))
        elif frame_type == wire.T_FLUSH:
            _expect_empty(payload)
            server.flush()
            yield wire.encode_frame(wire.R_OK)
        elif frame_type == wire.T_STATS:
            _expect_empty(payload)
            yield wire.encode_frame(wire.R_STATS, wire.encode_stats(server.stats))
        elif frame_type == wire.T_STORED_BYTES:
            _expect_empty(payload)
            yield wire.encode_frame(
                wire.R_INT, wire.encode_int(server.stored_bytes)
            )
        elif frame_type == wire.T_REPLACE_SHARE:
            server_fp, data = wire.decode_replace_share(payload)
            server.replace_share(server_fp, data)
            yield wire.encode_frame(wire.R_OK)
        elif frame_type == wire.T_REBUILD_RECIPE:
            user_id, lookup_key, entries = wire.decode_rebuild_recipe(payload)
            server.rebuild_recipe(user_id, lookup_key, entries)
            yield wire.encode_frame(wire.R_OK)
        elif frame_type == wire.T_LIST_BACKUPS:
            _expect_empty(payload)
            backups = server.list_backups()
            yield wire.encode_frame(
                wire.R_BACKUP_LIST, wire.encode_backup_list(backups)
            )
        else:
            raise ProtocolError(f"unknown request frame type 0x{frame_type:02x}")


def _expect_empty(payload: bytes) -> None:
    if payload:
        raise ProtocolError(f"{len(payload)} unexpected payload bytes")
