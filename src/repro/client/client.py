"""CDStore client implementation.

Upload pipeline (Figure 4a):

1. **chunking module** — variable-size (Rabin) chunking into ~8 KB secrets;
2. **coding module** — CAONT-RS encoding of each secret into ``n`` shares,
   parallelisable across secrets with a thread pool (§4.6);
3. **intra-user deduplication** — fingerprint queries per cloud; only
   shares this user never uploaded travel further (§3.3 stage 1);
4. **comm module** — unique shares batched per cloud (4 MB units, §4.1)
   and pushed over all cloud connections *concurrently* by the
   :class:`~repro.client.comm.CommEngine`, with encoding overlapping
   transfer (§4.6);
5. **metadata offloading** — per-share metadata and the file manifest
   (with the pathname dispersed via Shamir sharing, §4.3) finalise the
   upload on every server.

Download reverses the pipeline from any ``k`` reachable clouds — fetched
concurrently, with automatic failover to spare reachable clouds on
mid-restore failures — plus the brute-force subset retry of §3.2 on
integrity failure.  With ``pipeline_depth > 1`` the restore is *windowed*:
per-window share maps stream through a bounded queue so decoding starts
before the last share arrives, and failover happens at window granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chunking.base import Chunker
from repro.chunking.registry import ChunkerSpec, create_chunker
from repro.client.comm import UPLOAD_BATCH_BYTES, CommEngine
from repro.client.read import (
    GATEWAY_FALLBACK_ERRORS,
    DirectReadSession,
    GatewayReadSession,
    ReadSession,
)
from repro.cloud.network import SimClock
from repro.core.convergent import ConvergentDispersal
from repro.crypto.hashing import sha256
from repro.dedup.stats import DedupStats
from repro.errors import (
    CloudUnavailableError,
    InsufficientCloudsError,
    ParameterError,
)
from repro.obs.trace import SpanRecorder, Tracer
from repro.server.messages import FileManifest
from repro.server.server import CDStoreServer
from repro.sharing.ssss import SSSS

__all__ = ["CDStoreClient", "UploadReceipt", "UPLOAD_BATCH_BYTES"]


@dataclass
class UploadReceipt:
    """Summary of one file upload."""

    path: str
    file_size: int
    secret_count: int
    logical_share_bytes: int
    transferred_share_bytes: int
    #: Wire bytes sent to each cloud (drives the simulated transfer times).
    wire_bytes_per_cloud: list[int] = field(default_factory=list)
    #: Simulated transfer time per cloud connection (seconds).
    seconds_per_cloud: list[float] = field(default_factory=list)
    #: Simulated wall-clock transfer span: makespan over the per-cloud
    #: times when the client is multi-threaded (§4.6), their sum when not.
    sim_seconds: float = 0.0
    #: Streaming pipeline depth the upload actually used — the configured
    #: constant, or the probed value when the engine runs adaptively
    #: (``pipeline_depth="auto"``).
    pipeline_depth: int | str = 1

    @property
    def intra_user_saving(self) -> float:
        if self.logical_share_bytes == 0:
            return 0.0
        return 1.0 - self.transferred_share_bytes / self.logical_share_bytes


class CDStoreClient:
    """A user's CDStore client bound to ``n`` servers.

    Parameters
    ----------
    user_id:
        Identifies the user for intra-user deduplication and file naming.
    servers:
        The ``n`` CDStore servers, ordered by cloud index.
    k:
        Reconstruction threshold (``n`` is implied by ``len(servers)``).
    salt:
        Organisation-wide convergent salt (shared by all clients of the
        organisation so their data deduplicates against each other).
    chunker:
        A live :class:`~repro.chunking.base.Chunker`, a picklable
        :class:`~repro.chunking.registry.ChunkerSpec`, or a spec string
        like ``"gear:avg=8192"`` (see :mod:`repro.chunking.registry`).
        Defaults to the paper's 8 KB-average Rabin chunker.  Clients only
        deduplicate against each other when they chunk identically.
    scheme:
        Convergent codec name (default ``"caont-rs"``).
    threads:
        Encoding/comm thread count (§4.6); 1 disables all pools and the
        client talks to the clouds sequentially.
    workers:
        Encode-pool flavour, ``"thread"`` (default) or ``"process"``; see
        :mod:`repro.client.comm` for the trade-off.
    clock:
        Optional :class:`~repro.cloud.network.SimClock` accumulating
        simulated transfer wall-clock time.
    pipeline_depth:
        Streaming transfer-stage depth (§4.6 pipelining): maximum encode
        slabs / restore windows in flight between stages.  ``1`` (default)
        keeps the serial-phase behaviour; ``"auto"`` derives the depth
        from the measured encode-rate/wire-rate ratio at the first upload
        (recorded in the :class:`UploadReceipt`).  See
        :mod:`repro.client.comm`.
    gateway:
        Optional read-gateway handle (see :mod:`repro.client.read` and
        :mod:`repro.gateway`): restores are served through it, with
        automatic fallback to the direct quorum path on any failure.
    trace, span_ring, slow_threshold:
        Client-side observability (see :mod:`repro.obs`): every entry
        point runs under a root span that mints the request's trace id,
        keeping the newest ``span_ring`` finished spans in
        :attr:`spans`; a span slower than ``slow_threshold`` seconds
        emits one structured ``slow_request`` event.  ``trace=False``
        turns the spans into no-ops (no ids are minted, so remote calls
        carry the zero trace id and cost the servers no ring space).
    """

    def __init__(
        self,
        user_id: str,
        servers: list[CDStoreServer],
        k: int,
        salt: bytes = b"",
        chunker: Chunker | ChunkerSpec | str | None = None,
        scheme: str = "caont-rs",
        threads: int = 1,
        workers: str = "thread",
        codec=None,
        clock: SimClock | None = None,
        pipeline_depth: int | str = 1,
        gateway=None,
        trace: bool = True,
        span_ring: int = 256,
        slow_threshold: float | None = 1.0,
    ) -> None:
        if not servers:
            raise ParameterError("need at least one server")
        if threads < 1:
            raise ParameterError(f"threads must be >= 1, got {threads}")
        self.user_id = user_id
        self.servers = list(servers)
        self.n = len(servers)
        self.k = k
        self.threads = threads
        self.workers = workers
        self.dispersal = ConvergentDispersal(
            self.n, k, scheme=scheme, salt=salt, codec=codec
        )
        self.chunker = create_chunker(chunker)
        self._path_sharer = SSSS(self.n, k)
        self.stats = DedupStats()
        #: Per-cloud share bytes per restore window (streaming restores
        #: fetch and decode one window at a time); tests shrink it to
        #: exercise multi-window restores on small payloads.
        self.restore_window_bytes = UPLOAD_BATCH_BYTES
        #: Optional read gateway: any object with the gateway read
        #: surface (``resolve_backup`` + ``iter_window_shards``), usually
        #: a :class:`~repro.net.client.RemoteServerProxy` to a
        #: ``repro gateway``.  The client does NOT own it (no close) —
        #: the system façade shares one proxy across its clients.
        self.gateway = gateway
        #: The parallel multi-cloud comm engine; shares ``self.servers`` so
        #: server replacements (cloud repair) are picked up live.
        self.comm = CommEngine(
            self.servers,
            threads=threads,
            workers=workers,
            clock=clock,
            pipeline_depth=pipeline_depth,
        )
        #: Client-side tracer: entry points open *root* spans here, so
        #: the trace id a whole upload/restore shares is minted exactly
        #: once, then rides thread-local context into the comm engine and
        #: the wire's v2 trace extension.
        self.tracer = Tracer(
            "client",
            recorder=SpanRecorder(span_ring),
            slow_threshold=slow_threshold,
            enabled=trace,
        )

    @property
    def spans(self) -> SpanRecorder:
        """This client's span ring (newest ``span_ring`` finished spans)."""
        return self.tracer.recorder

    def close(self) -> None:
        """Shut down the comm engine's worker pools (idempotent)."""
        self.comm.close()

    def __enter__(self) -> "CDStoreClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _lookup_key(self, path: str) -> bytes:
        """File-index key: hash of pathname + user identifier (§4.4)."""
        return sha256(self.user_id.encode("utf-8") + b"\x00" + path.encode("utf-8"))

    # ------------------------------------------------------------------
    # upload (backup)
    # ------------------------------------------------------------------
    def upload(self, path: str, data: bytes) -> UploadReceipt:
        """Back up ``data`` under ``path`` across all ``n`` clouds.

        Requires every cloud to be reachable (backups write to all ``n``;
        restores are what tolerate failures).
        """
        with self.tracer.span("upload", root=True, path=path, bytes=len(data)):
            return self._upload(path, data)

    def _upload(self, path: str, data: bytes) -> UploadReceipt:
        for server in self.servers:
            server.cloud.check_available()
        chunks = list(self.chunker.chunk_bytes(data))

        results, span = self.comm.upload_file(self.user_id, self.dispersal, chunks)

        self.stats.logical_data += len(data)
        self.stats.secrets_total += len(chunks)
        transferred_total = 0
        for result in results:
            self.stats.logical_shares += sum(m.share_size for m in result.metas)
            self.stats.shares_total += len(result.metas)
            self.stats.shares_transferred += result.transferred
            transferred_total += result.wire_bytes
        self.stats.transferred_shares += transferred_total

        # Metadata offloading: manifest + full share metadata (§4.3),
        # finalised on every server concurrently.
        lookup_key = self._lookup_key(path)
        path_shares = self._path_sharer.split(path.encode("utf-8")).shares
        manifests = {
            server.server_id: FileManifest(
                lookup_key=lookup_key,
                path_share=path_shares[cloud_idx],
                file_size=len(data),
                secret_count=len(chunks),
            )
            for cloud_idx, server in enumerate(self.servers)
        }
        metas_by_id = {
            server.server_id: results[cloud_idx].metas
            for cloud_idx, server in enumerate(self.servers)
        }
        self.comm.map_servers(
            lambda server: server.finalize_file(
                self.user_id, manifests[server.server_id], metas_by_id[server.server_id]
            ),
            self.servers,
        )

        return UploadReceipt(
            path=path,
            file_size=len(data),
            secret_count=len(chunks),
            logical_share_bytes=sum(
                meta.share_size for result in results for meta in result.metas
            ),
            transferred_share_bytes=transferred_total,
            wire_bytes_per_cloud=[result.wire_bytes for result in results],
            seconds_per_cloud=[result.seconds for result in results],
            sim_seconds=span,
            pipeline_depth=self.comm.effective_depth,
        )

    # ------------------------------------------------------------------
    # download (restore)
    # ------------------------------------------------------------------
    def _reachable_servers(self) -> list[CDStoreServer]:
        return [server for server in self.servers if server.cloud.available]

    def open_read(self, path: str, via: str = "auto") -> ReadSession:
        """Resolve ``path`` and return the :class:`ReadSession` to read it.

        ``via`` selects the read path: ``"direct"`` (quorum restore),
        ``"gateway"`` (requires a configured gateway), or ``"auto"``
        (gateway when configured, else direct).  Resolution — file-entry
        cross-check or gateway recipe resolution, plus window planning —
        happens here, once; the session's :attr:`~ReadSession.plan`
        exposes the result and ``read()`` executes it.
        """
        if via not in ("auto", "direct", "gateway"):
            raise ParameterError(
                f"via must be 'auto', 'direct' or 'gateway', got {via!r}"
            )
        if via == "gateway" and self.gateway is None:
            raise ParameterError("no gateway configured for this client")
        if via != "direct" and self.gateway is not None:
            return GatewayReadSession(self, path, self.gateway)
        return DirectReadSession(self, path)

    def download(self, path: str) -> bytes:
        """Restore the file stored under ``path``.

        A thin wrapper over :meth:`open_read`: with a gateway configured
        the restore is served from the gateway's hot-container cache;
        any gateway-path failure (dead replica behind a cache miss,
        transport loss, decode failure) falls back to the direct quorum
        restore, where the ``k`` per-server fetches run concurrently and
        a server failing mid-restore is replaced by a spare reachable
        cloud at window granularity (§3.1 availability, §3.2 widening).

        With ``pipeline_depth > 1`` the direct path streams shares in
        per-window maps (``restore_window_bytes`` of per-cloud shares
        each): decoding of window ``i`` overlaps the fetch of windows
        ``i+1 .. i+pipeline_depth-1``.  ``pipeline_depth == 1`` fetches
        the whole file as a single window — the pre-streaming behaviour,
        byte-for-byte.
        """
        with self.tracer.span("download", root=True, path=path):
            if self.gateway is not None:
                try:
                    with self.open_read(path, via="gateway") as session:
                        return session.read()
                except GATEWAY_FALLBACK_ERRORS:
                    # Degraded mode: restart from scratch on the quorum.
                    # The direct session re-resolves (its windows may
                    # differ from the gateway's) and runs the full
                    # failover machinery.
                    pass
            with self.open_read(path, via="direct") as session:
                return session.read()

    def list_files(self) -> list[str]:
        """List this user's stored pathnames.

        Pathnames are dispersed via Shamir sharing across the servers
        (§4.3 sensitive metadata), so listing needs any ``k`` reachable
        clouds — the same availability contract as restore.
        """
        with self.tracer.span("list_files", root=True):
            return self._list_files()

    def _list_files(self) -> list[str]:
        reachable = self._reachable_servers()
        if len(reachable) < self.k:
            raise InsufficientCloudsError(
                f"only {len(reachable)} of {self.n} clouds reachable; "
                f"need k={self.k}"
            )
        chosen = reachable[: self.k]
        listings = {
            server.server_id: dict(listing)
            for server, listing in zip(
                chosen,
                self.comm.map_servers(
                    lambda server: server.list_files(self.user_id), chosen
                ),
            )
        }
        keys = set.intersection(*(set(entries) for entries in listings.values()))
        paths = []
        for lookup_key in keys:
            shares = {
                sid: listing[lookup_key].path_share
                for sid, listing in listings.items()
            }
            size = len(next(iter(shares.values())))
            paths.append(
                self._path_sharer.recover(shares, size).decode("utf-8")
            )
        return sorted(paths)

    # ------------------------------------------------------------------
    # deletion (extension; the paper defers GC to future work, §4.7)
    # ------------------------------------------------------------------
    def delete(self, path: str) -> None:
        """Delete the file on every reachable cloud."""
        with self.tracer.span("delete", root=True, path=path):
            lookup_key = self._lookup_key(path)
            for server in self.servers:
                if not server.cloud.available:
                    raise CloudUnavailableError(
                        f"cloud {server.cloud.name!r} is down; deletion must "
                        "reach all clouds"
                    )
            self.comm.map_servers(
                lambda server: server.delete_file(self.user_id, lookup_key),
                self.servers,
            )

    def flush(self) -> None:
        """Seal open containers on every server (end of a session)."""
        self.comm.map_servers(lambda server: server.flush(), self.servers)
