"""Server-aided CAONT-RS (§3.2's "more sophisticated key" variant).

Identical to CAONT-RS except the AONT key is the key-server-derived value
rather than ``H(X)``.  Deduplication is preserved (the derived key is
deterministic per chunk, organisation-wide); offline brute force is not
possible without the key server.

Integrity: plain CAONT-RS verifies ``H(X) == h`` after decoding.  Here
the key is not a hash of the secret, so the codec appends a canary block
to the secret before the transform and checks it on decode — corruption
is still detected without contacting the key server (restores must work
while the key server is down, which is the whole availability argument).
"""

from __future__ import annotations

from repro.core.aont import CANARY, CANARY_SIZE, oaep_aont_decode, oaep_aont_encode
from repro.core.package_codec import PackageRSCodec
from repro.crypto.hashing import HASH_SIZE
from repro.errors import IntegrityError
from repro.keyserver.client import KeyClient

__all__ = ["ServerAidedCAONTRS"]


class ServerAidedCAONTRS(PackageRSCodec):
    """(n, k) CAONT-RS keyed by a DupLESS-style key server."""

    name = "caont-rs-server-aided"
    deterministic = True

    def __init__(
        self,
        n: int,
        k: int,
        key_client: KeyClient,
        rs_matrix: str = "vandermonde",
    ) -> None:
        super().__init__(n, k, rs_matrix=rs_matrix)
        self.key_client = key_client

    # ------------------------------------------------------------------
    def _padded_secret_size(self, secret_size: int) -> int:
        """Pad X + canary so the package divides evenly into k pieces."""
        body = secret_size + CANARY_SIZE
        return body + (-(body + HASH_SIZE)) % self.k

    def _package_size(self, secret_size: int) -> int:
        return self._padded_secret_size(secret_size) + HASH_SIZE

    def _make_package(self, secret: bytes) -> bytes:
        key = self.key_client.derive_key(secret)
        body = secret + CANARY
        body += b"\0" * (self._padded_secret_size(len(secret)) - len(body))
        return oaep_aont_encode(body, key)

    def _open_package(self, package: bytes, secret_size: int) -> bytes:
        body, _key = oaep_aont_decode(package)
        secret = body[:secret_size]
        canary = body[secret_size : secret_size + CANARY_SIZE]
        if canary != CANARY:
            raise IntegrityError(
                "server-aided caont-rs: canary mismatch, decoded secret corrupt"
            )
        return secret
