"""Runtime-visible invariant annotations consumed by ``repro analyze``.

The static checkers (:mod:`repro.analysis.checkers`) need the codebase to
*declare* its concurrency discipline somewhere machine-readable.  These
helpers are that vocabulary: they are deliberately near-no-ops at runtime
(a dict, an attribute tag) so annotating a class costs nothing on the hot
path, while the AST checkers read the same source text and enforce the
declared discipline on every CI run.

Usage::

    class CDStoreTCPServer:
        GUARDED_BY = guarded_by(_connections="_conn_lock")

        @requires_lock("_conn_lock")
        def _prune_locked(self):   # caller must hold self._conn_lock
            self._connections.clear()

``guarded_by(attr="_lock")`` declares that every mutation of
``self.attr`` must happen inside a ``with self._lock:`` block (checker
rule LOCK-001).  Methods that are *always called with the lock already
held* are exempted by the :func:`requires_lock` decorator or by the
``*_locked`` naming convention — both document the calling contract the
checker would otherwise flag.

``EXTERNAL`` declares state whose synchronisation lives one layer up
(e.g. index backends serialised by ``CDStoreServer._lock``): the checker
skips those attributes but the declaration keeps the contract visible.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["EXTERNAL", "guarded_by", "requires_lock"]

#: Sentinel lock name: the attribute is synchronised by the *caller's*
#: lock (one layer up), not one owned by this class.  LOCK-001 skips
#: attributes guarded by it; the declaration still documents the contract.
EXTERNAL = "<external>"

_F = TypeVar("_F", bound=Callable)


def guarded_by(**attr_to_lock: str) -> dict[str, str]:
    """Declare which lock guards each attribute: ``guarded_by(_sock="_lock")``.

    Assign the result to a class attribute named ``GUARDED_BY``.  Keys are
    instance-attribute names, values are the name of the lock attribute
    (``"_lock"`` → mutations must sit inside ``with self._lock:``) or
    :data:`EXTERNAL`.
    """
    return dict(attr_to_lock)


def requires_lock(*lock_names: str) -> Callable[[_F], _F]:
    """Mark a method as *called with these locks already held*.

    Purely declarative: the wrapped function is returned unchanged and the
    lock names are recorded on ``__requires_locks__`` for introspection.
    The LOCK-001 checker treats the method body as holding the named locks
    (the burden of actually holding them moves to the callers, which the
    checker does verify at their own mutation sites).
    """

    def decorate(fn: _F) -> _F:
        fn.__requires_locks__ = tuple(lock_names)
        return fn

    return decorate
