"""The unified read-path API: :class:`RestorePlan` + :class:`ReadSession`.

Before this module existed the restore surface was a grab-bag —
``CDStoreClient.download`` held the whole pipeline inline,
``restore_window_bytes`` and ``plan_windows`` configured it from the
side, and nothing else could reuse the window/decode machinery.  Now a
restore is two explicit steps shared by every read path:

1. **resolve** — construct a session; resolution (file entry + recipe
   cross-check, window planning) happens once, up front, and is exposed
   as an immutable :class:`RestorePlan`;
2. **read** — stream the planned windows, decode each as it lands, and
   return the joined, size-checked bytes.

Two sessions implement the surface:

* :class:`DirectReadSession` — the original quorum restore: ``k``
  concurrent per-cloud fetches through the
  :class:`~repro.client.comm.CommEngine`, window-granular spare
  failover, and the §3.2 share-pool widening as the last resort.
* :class:`GatewayReadSession` — the same plan/read steps against a
  ``repro gateway`` (:mod:`repro.gateway`): resolution is one
  round-trip, windows arrive as per-replica shard frames served from
  the gateway's hot-container cache.  The session performs **no**
  failover of its own — any fetch/decode failure propagates so
  :meth:`CDStoreClient.download` falls back to a fresh
  :class:`DirectReadSession`, where the existing window-granular spare
  failover (and widening) runs unchanged.

``CDStoreClient.download()`` stays as a thin wrapper over
``open_read(path).read()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.client.comm import FETCH_ERRORS
from repro.client.workers import plan_windows
from repro.errors import (
    CodingError,
    InsufficientCloudsError,
    IntegrityError,
)
from repro.server.messages import RecipeEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.client.client import CDStoreClient

__all__ = [
    "GATEWAY_FALLBACK_ERRORS",
    "DirectReadSession",
    "GatewayReadSession",
    "ReadSession",
    "RestorePlan",
]

#: Errors on the gateway read path that mean "this path failed, the
#: direct quorum may still succeed": transport/storage failures
#: (``FETCH_ERRORS`` — the same classes the comm engine fails over on)
#: plus decode failures (``IntegrityError``/``CodingError``), which the
#: direct path can survive via k-subset retry and §3.2 widening but the
#: gateway path cannot (it holds exactly k shards per window).
GATEWAY_FALLBACK_ERRORS = (*FETCH_ERRORS, IntegrityError, CodingError)


@dataclass(frozen=True)
class RestorePlan:
    """The resolved, immutable shape of one restore.

    Produced once per session at construction (resolution happens
    exactly once per restore); ``read()`` only executes it.
    """

    #: The user-facing pathname being restored.
    path: str
    #: File-index key (``sha256(user_id \0 path)``, §4.4).
    lookup_key: bytes
    #: Cross-checked plaintext byte size of the file.
    file_size: int
    #: Cross-checked number of secrets (chunks).
    secret_count: int
    #: Per-secret plaintext sizes, in sequence order.
    secret_sizes: tuple[int, ...]
    #: Contiguous ``(start, end)`` secret ranges fetched/decoded as units.
    windows: tuple[tuple[int, int], ...]
    #: Which path produced the plan: ``"direct"`` or ``"gateway"``.
    via: str


class ReadSession:
    """One in-flight restore: a :class:`RestorePlan` plus the machinery
    to execute it.

    Subclasses set :attr:`plan` during construction (resolution) and
    implement :meth:`read`.  Sessions are context managers; ``close()``
    is idempotent and releases any per-session resources.
    """

    plan: RestorePlan

    def read(self) -> bytes:
        raise NotImplementedError

    def close(self) -> None:
        """Release session resources (idempotent; default: nothing)."""

    def __enter__(self) -> "ReadSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _finish(self, parts: list[bytes]) -> bytes:
        """Join decoded windows and enforce the recorded file size."""
        result = b"".join(parts)
        if len(result) != self.plan.file_size:
            raise IntegrityError(
                f"restored size {len(result)} != recorded size "
                f"{self.plan.file_size}"
            )
        return result


class DirectReadSession(ReadSession):
    """Quorum restore from any ``k`` reachable clouds.

    Construction performs resolution: pick ``k`` reachable clouds (plus
    a spare pool), fetch and cross-check all ``k`` file entries and
    recipes — a lying minority cannot spoof the file size or secret
    count unnoticed — and plan the windows.  :meth:`read` then streams
    the windows through the comm engine: with ``pipeline_depth > 1``
    decoding of window ``i`` overlaps the fetch of windows ``i+1 ..
    i+depth-1``, and a cloud failing in window ``i`` is replaced by a
    spare for that window onward only.  A non-streaming engine fetches
    everything as a single window (the serial-phase degenerate case).
    """

    def __init__(self, client: "CDStoreClient", path: str) -> None:
        self.client = client
        reachable = client._reachable_servers()
        if len(reachable) < client.k:
            raise InsufficientCloudsError(
                f"only {len(reachable)} of {client.n} clouds reachable; "
                f"need k={client.k}"
            )
        lookup_key = client._lookup_key(path)
        chosen = reachable[: client.k]
        # Shared, mutable failover pool: the comm engine pops spares it
        # promotes to chosen sources, so the §3.2 widening below never
        # treats a promoted spare as extra decode material.
        self._spare_pool = list(reachable[client.k :])
        self._sources = client.comm.fetch_sources(
            client.user_id, lookup_key, chosen, self._spare_pool
        )

        # Cross-check the replicated (non-sensitive) metadata across all
        # k servers instead of trusting whichever answered last.
        sizes = {source.entry.file_size for source in self._sources}
        counts = {source.entry.secret_count for source in self._sources}
        if len(sizes) != 1 or len(counts) != 1:
            raise IntegrityError(
                "servers disagree on file entry (file size / secret count)"
            )
        file_size = sizes.pop()
        secret_count = counts.pop()
        lengths = {len(source.recipe) for source in self._sources}
        if len(lengths) != 1 or lengths.pop() != secret_count:
            raise IntegrityError("servers disagree on recipe length")

        reference = self._sources[0].recipe
        if client.comm.streaming:
            windows = plan_windows(
                [
                    client.dispersal.share_size(entry.secret_size)
                    for entry in reference
                ],
                client.restore_window_bytes,
            )
        else:
            windows = [(0, secret_count)] if secret_count else []
        self.plan = RestorePlan(
            path=path,
            lookup_key=lookup_key,
            file_size=file_size,
            secret_count=secret_count,
            secret_sizes=tuple(entry.secret_size for entry in reference),
            windows=tuple(windows),
            via="direct",
        )

    def read(self) -> bytes:
        client = self.client
        plan = self.plan
        reference = self._sources[0].recipe

        #: §3.2 widening state, shared across windows: each spare's
        #: recipe is fetched at most once per restore, and a spare that
        #: fails is skipped for all later secrets in any window.
        spare_recipes: dict[int, list[RecipeEntry]] = {}
        dead_spares: set[int] = set()

        parts: list[bytes] = []
        stream = client.comm.stream_share_windows(
            client.user_id,
            plan.lookup_key,
            self._sources,
            list(plan.windows),
            self._spare_pool,
            expect=(plan.file_size, plan.secret_count),
        )
        try:
            for window in stream:
                requests: list[tuple[dict[int, bytes], int]] = []
                for seq in range(window.start, window.end):
                    shares = {
                        slot.server.server_id: slot.shares[
                            slot.recipe[seq].fingerprint
                        ]
                        for slot in window.slots
                    }
                    requests.append((shares, reference[seq].secret_size))

                used_ids = {slot.server.server_id for slot in window.slots}

                def widen_with_spares(
                    index: int,
                    shares: dict[int, bytes],
                    secret_size: int,
                    _window=window,
                    _used=used_ids,
                ) -> bytes:
                    """Last resort for one secret: widen its share pool (§3.2).

                    The fetched shares could not decode even with the k-subset
                    brute force, so pull this secret's share from each
                    remaining reachable spare cloud and retry.  A spare that
                    fails is skipped (and not retried for later secrets) — one
                    bad spare must not abort a restore that the remaining
                    shares can still satisfy.
                    """
                    seq = _window.start + index
                    widened = dict(shares)
                    for server in list(self._spare_pool):
                        if (
                            server.server_id in _used
                            or server.server_id in dead_spares
                        ):
                            continue
                        if not server.cloud.available:
                            # Remember the failed probe: for a remote cloud
                            # `available` is a network PING, and repeating
                            # it per secret would stall the widening loop
                            # on an unresponsive host.
                            dead_spares.add(server.server_id)
                            continue
                        try:
                            recipe = spare_recipes.get(server.server_id)
                            if recipe is None:
                                recipe = server.get_recipe(
                                    client.user_id, plan.lookup_key
                                )
                                spare_recipes[server.server_id] = recipe
                            fetched = server.fetch_shares(
                                [recipe[seq].fingerprint]
                            )
                        except (*FETCH_ERRORS, IndexError):
                            # IndexError: the spare's recipe is shorter than
                            # the agreed secret count — as unusable as corrupt.
                            dead_spares.add(server.server_id)
                            continue
                        widened[server.server_id] = fetched[
                            recipe[seq].fingerprint
                        ]
                    return client.dispersal.decode(widened, secret_size)

                # Batched happy path: secrets decoded from the same k-subset
                # share one inverse-matrix multiply; on integrity failure the
                # dispersal retries per secret and widens only the ones that
                # still fail.
                parts.extend(
                    client.dispersal.decode_batch(
                        requests, fallback=widen_with_spares
                    )
                )
        finally:
            stream.close()
        return self._finish(parts)


class GatewayReadSession(ReadSession):
    """Restore through a ``repro gateway``.

    Construction resolves the backup in one round-trip
    (``resolve_backup``); the gateway plans the windows with *its*
    window size so every client shares the same hot-cache entries.
    :meth:`read` fetches each window's per-replica shards
    (``iter_window_shards``) and decodes from exactly the ``k`` shards
    the gateway's consistent-hash ring chose.  No failover runs here by
    design: a dead replica behind a cache miss (or a decode failure)
    raises, and the caller falls back to a :class:`DirectReadSession`
    where the quorum machinery — window-granular spare promotion plus
    §3.2 widening — handles it.
    """

    def __init__(self, client: "CDStoreClient", path: str, gateway) -> None:
        self.client = client
        self.gateway = gateway
        lookup_key = client._lookup_key(path)
        resolved = gateway.resolve_backup(client.user_id, lookup_key)
        file_size, secret_sizes, windows = resolved
        self.plan = RestorePlan(
            path=path,
            lookup_key=lookup_key,
            file_size=file_size,
            secret_count=len(secret_sizes),
            secret_sizes=tuple(secret_sizes),
            windows=tuple(windows),
            via="gateway",
        )

    def _window_requests(
        self, index: int, start: int, end: int
    ) -> Iterator[tuple[dict[int, bytes], int]]:
        """Decode requests for window ``index``, built from its shards."""
        count = end - start
        shards: dict[int, list[bytes]] = {}
        for server_id, shares in self.gateway.iter_window_shards(
            self.client.user_id, self.plan.lookup_key, index
        ):
            if len(shares) != count:
                raise IntegrityError(
                    f"gateway shard from replica {server_id} has "
                    f"{len(shares)} shares, window {index} spans {count}"
                )
            shards[server_id] = shares
        for offset in range(count):
            yield (
                {sid: shares[offset] for sid, shares in shards.items()},
                self.plan.secret_sizes[start + offset],
            )

    def read(self) -> bytes:
        parts: list[bytes] = []
        for index, (start, end) in enumerate(self.plan.windows):
            requests = list(self._window_requests(index, start, end))
            parts.extend(self.client.dispersal.decode_batch(requests))
        return self._finish(parts)
