"""LIFE-001 fixture: a leak-on-exception and a justified suppression.

Parsed (never imported) by tests/test_analysis_checkers.py.
"""

import socket


def bad_connect(address):
    sock = socket.create_connection(address)  # TRUE-POSITIVE: leak below
    sock.setsockopt(1, 2, 3)  # raising here abandons the socket
    return sock


def good_connect_guarded(address):
    sock = socket.create_connection(address)
    try:
        sock.setsockopt(1, 2, 3)
    except OSError:
        sock.close()
        raise
    return sock


def good_connect_with(address):
    with socket.create_connection(address) as sock:
        sock.sendall(b"ping")


def probe_and_exit(address):
    # Used only by the oneshot `repro probe` subcommand: the process
    # exits immediately after, and exit reclaims the fd.
    sock = socket.create_connection(address)  # analysis: ignore[LIFE-001] -- oneshot CLI path, process exit reclaims the fd
    sock.sendall(b"ping")
