"""CRSSS: convergent ramp secret sharing (the RSSS instantiation of [37]).

The authors' HotStorage'14 paper proposes convergent instantiations for
*both* RSSS and AONT-RS ("Our prior work [37] also proposes instantiations
for RSSS [16] and AONT-RS", §3.2).  CDStore adopts the AONT-RS line; this
module completes the family with the ramp-scheme line so the trade-off is
measurable:

* RSSS splits the secret into ``k - r`` pieces and pads with ``r`` pieces
  that are *random* in the classical scheme; CRSSS derives them
  deterministically as ``H(salt || X || i)`` keystreams, making the whole
  transform convergent (identical secrets → identical shares).
* Confidentiality degree stays ``r`` in the computational sense — an
  attacker holding ``r`` shares sees data masked by hash-derived pads it
  cannot compute without the whole secret.
* Storage blowup is ``n / (k - r)``: *worse* than CAONT-RS's ``~n/k`` for
  the same ``r = k - 1`` confidentiality, which is exactly why the paper
  picked the AONT-RS line; the Table 1 benchmark makes the gap visible.

Integrity: a truncated hash of the secret is embedded in an extra trailer
piece of the pad stream and verified on recovery.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.ciphers import ctr_keystream
from repro.crypto.hashing import hash_key
from repro.errors import CodingError, IntegrityError, ParameterError
from repro.gf.matrix import gf_mat_inv, gf_mat_vec, vandermonde_matrix
from repro.sharing.base import SecretSharingScheme, ShareSet

__all__ = ["CRSSS"]


class CRSSS(SecretSharingScheme):
    """(n, k, r) convergent ramp secret sharing.

    Parameters mirror :class:`~repro.sharing.rsss.RSSS`, plus the
    organisation ``salt`` of the convergent family.
    """

    name = "crsss"
    deterministic = True

    def __init__(self, n: int, k: int, r: int = None, salt: bytes = b"") -> None:  # type: ignore[assignment]
        if r is None:
            r = k - 1
        super().__init__(n, k, r)
        if r < 1:
            raise ParameterError("CRSSS requires r >= 1 (r = 0 is plain IDA)")
        if n + 1 > 255:
            raise ParameterError(f"n={n} too large for GF(256) Vandermonde")
        self.salt = bytes(salt)
        full = vandermonde_matrix(n + 1, k)
        self._matrix = full[1:]
        self._decode_cache: dict[tuple[int, ...], np.ndarray] = {}

    # ------------------------------------------------------------------
    def _piece_size(self, secret_size: int) -> int:
        data_pieces = self.k - self.r
        return -(-secret_size // data_pieces) if secret_size else 1

    def _pads(self, secret: bytes, size: int) -> np.ndarray:
        """The ``r`` deterministic pad pieces: AES-CTR keyed by H(X).

        Each pad piece ``i`` is an independent keystream slice, so pads are
        pseudorandom to anyone without the convergent hash — the same
        argument as CAONT-RS's mask ``G(h)`` — while being reproducible by
        any client holding the same secret.
        """
        key = hash_key(secret, self.salt)
        stream = ctr_keystream(key, self.r * size)
        return np.frombuffer(stream, dtype=np.uint8).reshape(self.r, size)

    def split(self, secret: bytes) -> ShareSet:
        data_pieces = self.k - self.r
        size = self._piece_size(len(secret))
        buf = np.zeros((self.k, size), dtype=np.uint8)
        padded = np.zeros(data_pieces * size, dtype=np.uint8)
        padded[: len(secret)] = np.frombuffer(secret, dtype=np.uint8)
        buf[:data_pieces] = padded.reshape(data_pieces, size)
        buf[data_pieces:] = self._pads(secret, size)
        coded = gf_mat_vec(self._matrix, buf)
        shares = tuple(row.tobytes() for row in coded)
        return ShareSet(shares=shares, secret_size=len(secret), scheme=self.name)

    def recover(self, shares: dict[int, bytes], secret_size: int) -> bytes:
        self._check_recover_args(shares, secret_size)
        chosen = tuple(sorted(shares)[: self.k])
        sizes = {len(shares[idx]) for idx in chosen}
        if len(sizes) != 1:
            raise CodingError(f"shares have inconsistent sizes: {sorted(sizes)}")
        matrix = self._decode_cache.get(chosen)
        if matrix is None:
            matrix = gf_mat_inv(self._matrix[list(chosen)])
            self._decode_cache[chosen] = matrix
        stacked = np.stack(
            [np.frombuffer(shares[idx], dtype=np.uint8) for idx in chosen]
        )
        pieces = gf_mat_vec(matrix, stacked)
        data_pieces = self.k - self.r
        secret = pieces[:data_pieces].reshape(-1).tobytes()[:secret_size]
        # Convergent integrity check: the recovered pad pieces must equal
        # the pads derived from the recovered secret.
        expected = self._pads(secret, pieces.shape[1])
        if not np.array_equal(pieces[data_pieces:], expected):
            raise IntegrityError(
                "crsss: pad pieces do not match H(secret); shares corrupt"
            )
        return secret

    def share_size(self, secret_size: int) -> int:
        """Per-share size for a ``secret_size``-byte secret."""
        return self._piece_size(secret_size)

    def expected_blowup(self, secret_size: int) -> float:
        """Blowup n / (k - r) (Table 1 row for RSSS), up to padding."""
        if secret_size == 0:
            return float("inf")
        return self.n * self._piece_size(secret_size) / secret_size
