"""All-or-nothing transforms: Rivest's package transform and OAEP-based AONT.

An AONT is an unkeyed, invertible transform with the property that *every*
output byte is needed to recover *any* input byte [53].  AONT-RS uses it so
that fewer than ``k`` Reed-Solomon shares reveal nothing (§2).

Two constructions are implemented:

``rivest_aont_encode`` / ``rivest_aont_decode``
    Rivest's package transform [53] as described in §2 of the paper: the
    input (plus a canary word for integrity) is split into 16-byte words;
    word ``i`` is masked with ``E(key, i)`` — one block-cipher invocation
    per word; the tail is ``key XOR H(masked words)``.  The per-word
    encryptions are the performance weakness CAONT-RS removes.

``oaep_aont_encode`` / ``oaep_aont_decode``
    The OAEP-based AONT [11, 20] of §3.2: the whole input is masked in one
    pass, ``Y = X XOR G(key)`` (Eq. 2) with ``G(key) = E(key, C)`` (Eq. 3),
    and the tail is ``t = key XOR H(Y)`` (Eq. 4).  Boyko [20] shows OAEP
    provides no worse security than any AONT.

Both take the key as an argument: a random key yields the classical
transforms; the convergent hash ``h = H(X)`` yields the deduplicable
variants.  Keys and tails are 32 bytes (AES-256 / SHA-256).  The masks of
the two constructions come from the same CTR stream, so the performance
comparison isolates exactly the call-granularity difference the paper
measures in Figure 5.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.crypto.ciphers import AesCtr, mask_block, mask_stack
from repro.crypto.hashing import HASH_SIZE, sha256
from repro.errors import CryptoError, IntegrityError

__all__ = [
    "CANARY",
    "CANARY_SIZE",
    "oaep_aont_encode",
    "oaep_aont_decode",
    "rivest_aont_encode",
    "rivest_aont_encode_batch",
    "rivest_aont_decode",
    "rivest_package_size",
]

#: Rivest's AONT appends a known canary word so decoders can detect
#: corruption (§2: "adds an extra canary word for integrity checking").
CANARY_SIZE = 16
CANARY = b"\xc4\x0a\x12\xee" * 4

_WORD = 16  # AES block size; Rivest's AONT masks word-by-word


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings (numpy for bulk sizes)."""
    if len(a) != len(b):
        raise CryptoError(f"xor length mismatch: {len(a)} vs {len(b)}")
    if len(a) <= 64:
        return bytes(x ^ y for x, y in zip(a, b))
    return (
        np.frombuffer(a, dtype=np.uint8) ^ np.frombuffer(b, dtype=np.uint8)
    ).tobytes()


# ---------------------------------------------------------------------------
# OAEP-based AONT (CAONT-RS's transform, §3.2)
# ---------------------------------------------------------------------------


def oaep_aont_encode(secret: bytes, key: bytes) -> bytes:
    """Transform ``(secret, key)`` into the package ``Y || t``.

    ``Y = secret XOR G(key)`` and ``t = key XOR H(Y)`` (Eq. 2-4).  The
    package is ``len(secret) + 32`` bytes.
    """
    if len(key) != HASH_SIZE:
        raise CryptoError(f"AONT key must be {HASH_SIZE} bytes, got {len(key)}")
    head = _xor_bytes(secret, mask_block(key, len(secret)))
    tail = _xor_bytes(key, sha256(head))
    return head + tail


def oaep_aont_decode(package: bytes) -> tuple[bytes, bytes]:
    """Invert :func:`oaep_aont_encode`; returns ``(secret, key)``.

    The caller is responsible for integrity verification against the key
    (CAONT-RS checks ``H(secret) == key``; AONT-RS cannot, its key being
    random, and relies on the canary of the Rivest variant or share-level
    fingerprints).
    """
    if len(package) < HASH_SIZE:
        raise CryptoError(
            f"package too short ({len(package)} bytes) to contain a tail"
        )
    head, tail = package[:-HASH_SIZE], package[-HASH_SIZE:]
    key = _xor_bytes(tail, sha256(head))
    secret = _xor_bytes(head, mask_block(key, len(head)))
    return secret, key


# ---------------------------------------------------------------------------
# Rivest's package transform (AONT-RS's transform, §2)
# ---------------------------------------------------------------------------


def rivest_package_size(secret_size: int) -> int:
    """Package size for a ``secret_size``-byte input (canary + padding + tail)."""
    body = secret_size + CANARY_SIZE
    body += (-body) % _WORD
    return body + HASH_SIZE


def rivest_aont_encode(secret: bytes, key: bytes, per_word: bool = True) -> bytes:
    """Rivest's package transform of ``secret`` under ``key``.

    The secret plus canary is padded to 16-byte words; word ``i`` is
    XOR-masked with ``E(key, i)``.  The tail is ``key XOR H(masked words)``.
    Package layout: ``masked_words || tail``, with the canary and padding
    inside the masked region (stripped by the decoder from the original
    length, which AONT-RS carries in share metadata).

    ``per_word=True`` (default) performs one cipher invocation per 16-byte
    word, faithfully reproducing the cost profile that makes Rivest's AONT
    slower than OAEP (Figure 5).  ``per_word=False`` batches the mask
    generation — identical output bytes, for callers that want the Rivest
    *format* without the per-word overhead.
    """
    if len(key) != HASH_SIZE:
        raise CryptoError(f"AONT key must be {HASH_SIZE} bytes, got {len(key)}")
    body = secret + CANARY
    body += b"\0" * ((-len(body)) % _WORD)
    ctr = AesCtr(key)
    if per_word:
        out = bytearray(len(body))
        view = memoryview(body)
        for i, mask in enumerate(ctr.word_stream(len(body) // _WORD)):
            start = i * _WORD
            word = int.from_bytes(view[start : start + _WORD], "little")
            word ^= int.from_bytes(mask, "little")
            out[start : start + _WORD] = word.to_bytes(_WORD, "little")
        masked = bytes(out)
    else:
        masked = _xor_bytes(body, ctr.keystream(len(body)))
    tail = _xor_bytes(key, sha256(masked))
    return masked + tail


def rivest_aont_encode_batch(secrets, keys) -> np.ndarray:
    """Bulk-mask Rivest transform of equal-length secrets; ``(B, pkg)`` stack.

    Row ``b`` equals ``rivest_aont_encode(secrets[b], keys[b])`` — the
    per-word and bulk paths produce identical bytes — but the canary/pad
    assembly and the masking XOR run once over the whole stack.  Masks stay
    per-secret (each key starts its own CTR stream).  This is the fast path
    for ``per_word=False`` codecs; ``per_word=True`` callers keep the
    per-word loop because the call granularity *is* the cost model that
    Figure 5 measures.
    """
    if len(secrets) != len(keys):
        raise CryptoError(
            f"got {len(secrets)} secrets but {len(keys)} keys"
        )
    if not secrets:
        return np.zeros((0, rivest_package_size(0)), dtype=np.uint8)
    size = len(secrets[0])
    body_size = rivest_package_size(size) - HASH_SIZE
    batch = len(secrets)
    canary = np.frombuffer(CANARY, dtype=np.uint8)
    out = np.zeros((batch, body_size + HASH_SIZE), dtype=np.uint8)
    bodies = out[:, :body_size]
    for key in keys:
        if len(key) != HASH_SIZE:
            raise CryptoError(
                f"AONT key must be {HASH_SIZE} bytes, got {len(key)}"
            )
    for row, secret in enumerate(secrets):
        bodies[row, :size] = np.frombuffer(secret, dtype=np.uint8)
        bodies[row, size : size + CANARY_SIZE] = canary
    # Per-secret masks via the batched ECB-of-counters kernel, one XOR pass.
    np.bitwise_xor(bodies, mask_stack(list(keys), body_size), out=bodies)
    for row, key in enumerate(keys):
        digest = hashlib.sha256(bodies[row]).digest()
        tail = int.from_bytes(key, "big") ^ int.from_bytes(digest, "big")
        out[row, body_size:] = np.frombuffer(
            tail.to_bytes(HASH_SIZE, "big"), dtype=np.uint8
        )
    return out


def rivest_aont_decode(package: bytes, secret_size: int) -> tuple[bytes, bytes]:
    """Invert :func:`rivest_aont_encode`; returns ``(secret, key)``.

    Verifies the embedded canary and raises :class:`IntegrityError` on
    mismatch (the "extra canary word for integrity checking" of §2).
    Decoding uses the bulk mask path; the paper reports decoding speeds
    mirror encoding, so only encode models the per-word cost.
    """
    if len(package) < HASH_SIZE + _WORD:
        raise CryptoError(f"package too short ({len(package)} bytes)")
    masked, tail = package[:-HASH_SIZE], package[-HASH_SIZE:]
    if len(masked) % _WORD:
        raise CryptoError("Rivest package body not word-aligned")
    if secret_size > len(masked) - CANARY_SIZE:
        raise CryptoError(
            f"secret_size {secret_size} too large for package body {len(masked)}"
        )
    key = _xor_bytes(tail, sha256(masked))
    body = _xor_bytes(masked, AesCtr(key).keystream(len(masked)))
    secret, trailer = body[:secret_size], body[secret_size:]
    if trailer[:CANARY_SIZE] != CANARY:
        raise IntegrityError("Rivest AONT canary mismatch: corrupt package")
    return secret, key
